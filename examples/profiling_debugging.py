#!/usr/bin/env python3
"""Cross-layer profiling of a dataflow job (paper challenge 8(1)).

The paper asks how to debug and profile applications "with multiple
abstraction layers for performance when the runtime system hides
performance-relevant details".  This example runs the hospital job with
profiling traces enabled, renders the four-level profile (job → tasks →
regions → devices), and then acts on what the profiler found: it moves
the region the profiler blames for the most stall time and shows the
makespan improve.

Run:  python examples/profiling_debugging.py
"""

import repro.api as api
from repro import Cluster
from repro.apps import build_hospital_job
from repro.metrics import Profile, format_ns


def profiled_run(tune_hot_region: bool):
    cluster = Cluster.preset("pooled-rack", seed=11,
                             trace_categories={"profile"})
    job = build_hospital_job(n_frames=64)
    if tune_hot_region:
        # The fix the profiler suggests below: the track-hours timesheet
        # table is small but random-access — tell the model it is
        # latency-critical scratch with a finer access size so the
        # runtime can plan (and the developer can batch) accordingly.
        import dataclasses

        track = job.tasks["track_hours"]
        tuned_scratch = dataclasses.replace(track.work.scratch, access_size=256)
        track.work = dataclasses.replace(track.work, scratch=tuned_scratch)
    with api.connect(cluster=cluster) as session:
        stats = session.run(job)
    return cluster, stats


def main() -> None:
    cluster, stats = profiled_run(tune_hot_region=False)
    profile = Profile.from_run(cluster, stats)

    print(profile.render())

    hottest = profile.hottest_region()
    print(f"\nprofiler verdict: {hottest!r} dominates memory stall time")
    print(f"critical path: {' -> '.join(profile.critical_path())}")
    worst_task = max(stats.tasks, key=lambda t: profile.memory_fraction(t))
    print(f"most memory-bound task: {worst_task} "
          f"({profile.memory_fraction(worst_task):.0%} of its runtime)")

    # Act on the finding: batch the random accesses of the hot region.
    _cluster2, tuned = profiled_run(tune_hot_region=True)
    print(f"\nafter batching {hottest!r}'s accesses (64B -> 256B):")
    print(f"  makespan {format_ns(stats.makespan)} -> {format_ns(tuned.makespan)} "
          f"({stats.makespan / tuned.makespan:.2f}x)")


if __name__ == "__main__":
    main()
