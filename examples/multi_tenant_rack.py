#!/usr/bin/env python3
"""One rack, many tenants: fair shares, priorities, and calibration.

The paper's runtime serves "thousands of jobs in parallel" (§2.1).
This example drives a Poisson mix of hospital-CCTV and analytics jobs
through the QoS admission layer at two concurrency settings — the CCTV
tenant is interactive and weighted 2x, analytics is best-effort — shows
the throughput/latency trade-off, the per-tenant accounting (shares,
preemptions), and then lets the calibrated cost model learn the
contention it just caused — closing the statistics loop of §3.

Run:  python examples/multi_tenant_rack.py
"""

import numpy as np

from repro import Cluster, connect
from repro.apps import build_hospital_job, build_query_job
from repro.metrics import Profile, Table, format_ns
from repro.runtime import CalibratedCostModel
from repro.workloads import poisson_arrivals


def make_trace(n_jobs=20, seed=5):
    rng = np.random.default_rng(seed)
    times = poisson_arrivals(rng, rate_per_ns=1 / 100_000.0,
                             horizon_ns=n_jobs * 100_000.0)[:n_jobs]
    while len(times) < n_jobs:
        times.append((times[-1] if times else 0.0) + 100_000.0)

    def named(job, name):
        job.name = name
        return job

    arrivals = []
    for i, t in enumerate(times):
        if i % 3 == 0:
            arrivals.append((t, f"cctv{i}",
                             lambda i=i: named(build_hospital_job(n_frames=8),
                                               f"cctv{i}"),
                             "cctv"))
        else:
            arrivals.append((t, f"query{i}",
                             lambda i=i: named(build_query_job(n_rows=100_000),
                                               f"query{i}"),
                             "analytics"))
    return arrivals


def connect_tenants(cluster, **rack_options):
    """A session with the example's two tenants registered."""
    session = connect(cluster=cluster, **rack_options)
    session.register_tenant("cctv", weight=2.0, priority="interactive",
                            slo_target_ns=5e6, slo_objective=0.9)
    session.register_tenant("analytics", weight=1.0, priority="best_effort")
    return session


def main() -> None:
    table = Table(["concurrency", "completed", "mean wait", "mean makespan",
                   "horizon", "peak mem util"],
                  title="One rack, 20 mixed tenant jobs (Poisson arrivals)")
    last_session = None
    for cap in (2, 8):
        cluster = Cluster.preset("pooled-rack", seed=5)
        session = connect_tenants(cluster, max_concurrent=cap,
                                  sample_interval_ns=25_000.0)
        stats = session.run_trace(make_trace())
        horizon = cluster.engine.now
        table.add_row(
            cap, stats.completed, format_ns(stats.mean_queue_wait),
            format_ns(stats.mean_makespan), format_ns(horizon),
            f"{stats.memory_utilization.maximum:.4%}",
        )
        last_session = session
    print(table)

    # Who actually got the rack?  Weighted-fair queueing should give the
    # 2x-weighted interactive tenant the larger share under contention.
    tenant_table = Table(["tenant", "priority", "weight", "admitted",
                          "completed", "share", "preempted", "won"],
                         title="Per-tenant accounting (cap=8 run)")
    for name, row in last_session.tenant_report().items():
        tenant_table.add_row(
            name, row["priority"], f"{row['weight']:g}", row["admitted"],
            row["completed"], f"{row['share']:.0%}", row["preempted"],
            row["preemptions_won"],
        )
    print()
    print(tenant_table)

    # Round 2: the statistics loop — observe contention, predict better.
    print("\nCalibrating the cost model on the contended rack:")
    cluster = Cluster.preset("pooled-rack", seed=6,
                             trace_categories={"profile"})
    session = connect(cluster=cluster, max_concurrent=8)
    model = CalibratedCostModel(cluster)
    for wave in range(2):
        jobs = [build_query_job(n_rows=150_000) for _ in range(4)]
        for i, job in enumerate(jobs):
            job.name = f"wave{wave}-{i}"
        samples0 = model.stats.samples
        raw0, corr0 = model.stats.raw_error_sum, model.stats.corrected_error_sum
        for stats in session.run(*jobs):
            model.observe(Profile.from_run(cluster, stats), stats)
        n = model.stats.samples - samples0
        print(f"  wave {wave}: raw prediction error "
              f"{(model.stats.raw_error_sum - raw0) / n:.1%}, "
              f"calibrated {(model.stats.corrected_error_sum - corr0) / n:.1%}")
    factors = [
        (key, factor) for key, factor in sorted(model.corrections().items())
    ]
    for key, factor in factors:
        print(f"  learned: {'/'.join(str(k) for k in key[1:])} -> {factor:.2f}x")


if __name__ == "__main__":
    main()
