#!/usr/bin/env python3
"""A far-memory key-value store that tunes itself (AIFM/TPP, §3 ch.1-3).

A RemoteHashMap lives in NIC-attached far memory — huge and cheap, but
every probe pays a network round trip.  A zipfian client hammers a hot
key set; the hotness tracker notices, and the tiering daemon promotes
the table into DRAM mid-run.  The same client code keeps running — the
pointers swizzle under it — and the per-op latency drops by an order of
magnitude.

Run:  python examples/far_memory_kv.py
"""

import numpy as np

from repro.hardware import Cluster
from repro.memory.manager import MemoryManager
from repro.memory.pointers import HotnessTracker
from repro.memory.properties import MemoryProperties
from repro.memory.structures import RemoteHashMap
from repro.memory.tiering import TieringDaemon, TieringPolicy
from repro.metrics import format_ns
from repro.workloads import ZipfSampler

KiB = 1024


def main() -> None:
    cluster = Cluster.preset("table1-host", seed=3)
    manager = MemoryManager(cluster)
    tracker = HotnessTracker(half_life_ns=5e6)

    region = manager.allocate_on(
        "far0", 256 * KiB, MemoryProperties(), owner="kv",
        name="kv-table",
    )
    table = RemoteHashMap(cluster, region, "cpu0", slot_size=64,
                          tracker=tracker)

    policy = TieringPolicy(
        cluster, manager, tracker, observer="cpu0",
        hot_bytes_threshold=2.0 * KiB,
        allowed_devices=["dram0", "cxl0", "far0"],  # caches are not a tier
    )
    daemon = TieringDaemon(policy, interval_ns=500_000.0)

    sampler = ZipfSampler(512, skew=1.1)
    rng = np.random.default_rng(0)
    window_latencies = []

    def client():
        # Load phase (tiering daemon not yet watching).
        for key in range(512):
            yield from table.put(f"user{key}", key)
        cluster.engine.process(daemon.run())
        # Query phase: 12 windows of 50 zipfian lookups each.
        for window in range(12):
            t0 = cluster.engine.now
            for rank in sampler.sample(rng, 50):
                yield from table.get(f"user{int(rank)}")
            window_latencies.append((cluster.engine.now - t0) / 50.0)
            yield cluster.engine.timeout(200_000.0)

    cluster.engine.run(until=cluster.engine.process(client()))
    daemon.stop()

    print("far-memory KV store under a zipfian client\n")
    print(f"{'window':>6}  {'mean get latency':>18}")
    for i, latency in enumerate(window_latencies):
        print(f"{i:>6}  {format_ns(latency):>18}")
    print(f"\ntable now lives on: {table.backing_device} "
          f"(promotions: {daemon.promotions})")
    first = window_latencies[0]
    last = window_latencies[-1]
    print(f"window 0 mean get: {format_ns(first)}  ->  "
          f"window {len(window_latencies) - 1}: {format_ns(last)} "
          f"({first / last:.1f}x faster, zero client changes)")


if __name__ == "__main__":
    main()
