#!/usr/bin/env python3
"""Fault-tolerant far memory: replication vs. erasure coding (paper §3).

Stores the same objects in a 3-way replicated store and a Carbink-style
RS(4+2) erasure-coded store on a rack of eight far-memory nodes, then
crashes a node and lets the recovery orchestrator repair both.  Shows
the trade-off the paper describes: erasure coding halves the memory
overhead, replication repairs with less traffic.

Run:  python examples/fault_tolerant_memory.py
"""

import numpy as np

from repro.ft import ErasureCodedStore, RecoveryOrchestrator, ReplicatedStore
from repro.hardware import Cluster
from repro.memory.manager import MemoryManager
from repro.metrics import Table, format_bytes, format_ns

KiB = 1024
FARS = [f"far{i}" for i in range(8)]


def run(cluster, gen):
    def driver():
        result = yield from gen
        return result

    return cluster.engine.run(until=cluster.engine.process(driver()))


def build(kind: str):
    cluster = Cluster.preset("far-memory-rack", n_nodes=8, seed=9)
    manager = MemoryManager(cluster)
    if kind == "replication":
        store = ReplicatedStore(cluster, manager, FARS, home="dram0", copies=3)
    else:
        store = ErasureCodedStore(
            cluster, manager, FARS, home="dram0", k=4, m=2, shard_size=16 * KiB,
        )
    orchestrator = RecoveryOrchestrator(cluster, [store],
                                        detection_delay_ns=10_000.0)
    return cluster, store, orchestrator


def main() -> None:
    rng = np.random.default_rng(0)
    objects = {f"obj{i}": rng.integers(0, 256, 48 * KiB).astype(np.uint8)
               for i in range(8)}

    results = Table([
        "scheme", "mem overhead", "write traffic", "repair traffic",
        "repair time", "data intact",
    ], title="Replication vs. erasure coding after one node crash")

    for kind in ("replication", "erasure RS(4+2)"):
        cluster, store, orchestrator = build(
            "replication" if kind == "replication" else "erasure"
        )
        for name, data in objects.items():
            run(cluster, store.put(name, data))
        overhead = store.memory_overhead()
        write_traffic = store.bytes_written

        # Crash the node holding the first object's first shard/replica.
        cluster.crash_node("memnode0")
        cluster.engine.run()  # let detection + repair finish

        intact = all(
            np.array_equal(run(cluster, store.get(name)), data)
            for name, data in objects.items()
        )
        results.add_row(
            kind,
            f"{overhead:.2f}x",
            format_bytes(write_traffic),
            format_bytes(store.repair_bytes),
            format_ns(orchestrator.stats.mean_repair_time_ns),
            "yes" if intact else "NO",
        )

    print(results)
    print("\nerasure coding stores the same data with ~half the memory of "
          "3-way replication;\nreplication repairs by copying only the lost "
          "bytes, erasure coding must read k shards per rebuild.")


if __name__ == "__main__":
    main()
