#!/usr/bin/env python3
"""Database analytics on the programming model (Table 3, DBMS row).

Two views of the same query:

1. **Logical**: MiniDB actually executes
   ``SELECT c0, COUNT(*) FROM orders WHERE c1 < K GROUP BY c0`` joined
   back against customers, on real numpy data.
2. **Physical**: the same pipeline as a dataflow job — the aggregation
   hash table in Private Scratch, latches in Global State, the reusable
   hash index flowing through Global Scratch to the join (the paper's
   own example of cross-operator reuse) — executed by the runtime on
   the pooled rack, with the region census printed against Table 3.

Run:  python examples/database_analytics.py
"""

import numpy as np

import repro.api as api
from repro import Cluster, RegionType
from repro.apps import MiniDB, region_census
from repro.metrics import Table, format_ns
from repro.workloads import synthetic_table


def logical_query() -> None:
    rng = np.random.default_rng(7)
    db = MiniDB()
    db.create_table("orders", synthetic_table(rng, 50_000, key_cardinality=100))
    db.create_table("customers", synthetic_table(rng, 1_000, key_cardinality=100))

    orders = db.scan("orders")
    cheap = db.filter(orders, "c1", "<", 20)
    by_customer = db.group_count(cheap, "c0")
    matches = db.hash_join(cheap, db.scan("customers"), on="c0")

    print("Logical result (MiniDB on real data):")
    print(f"  orders scanned:         {len(orders):>8}")
    print(f"  after filter c1 < 20:   {len(cheap):>8}")
    print(f"  distinct groups:        {len(by_customer):>8}")
    print(f"  join result pairs:      {len(matches):>8}")


def physical_run() -> None:
    cluster = Cluster.preset("pooled-rack", trace_categories={"memory"})
    with api.connect(cluster=cluster) as session:
        handle = session.submit_app("dbms", n_rows=500_000, selectivity=0.2)
        session.run()
        stats = session.result(handle)

    print("\nPhysical execution (runtime on the pooled rack):")
    schedule = Table(["operator", "device", "duration"])
    for name, ts in stats.tasks.items():
        schedule.add_row(name, ts.device, format_ns(ts.duration))
    print(schedule)

    census = region_census(cluster.trace)
    print("\nRegion census vs. Table 3 'DBMS' row:")
    expectations = {
        RegionType.PRIVATE_SCRATCH: "operator state (hash tables)",
        RegionType.GLOBAL_STATE: "synchronization (latches)",
        RegionType.GLOBAL_SCRATCH: "(temp) indexes, caches",
    }
    table = Table(["region type", "count", "Table 3 purpose"])
    for region_type, purpose in expectations.items():
        table.add_row(region_type.value, census.get(region_type, 0), purpose)
    print(table)
    print(f"\nquery makespan: {format_ns(stats.makespan)}; "
          f"zero-copy handovers: {stats.zero_copy_handover}")


def main() -> None:
    logical_query()
    physical_run()


if __name__ == "__main__":
    main()
