#!/usr/bin/env python3
"""The hospital CCTV dataflow of Figure 2, declarative vs. naive.

Runs the exact five-task job of the paper's running example — GPU face
recognition with confidential data, a public utilization feed, and a
persistent missing-patient log — once under the declarative runtime
(properties drive placement) and once under a topology-oblivious
baseline, then compares makespan and shows where every task's memory
landed.

Run:  python examples/hospital_pipeline.py
"""

from repro import Cluster
from repro.apps import build_hospital_job
from repro.metrics import Table, format_ns
from repro.runtime import baselines

KiB = 1024


def run_variant(name: str):
    cluster = Cluster.preset("pooled-rack", seed=42,
                             trace_categories={"memory", "placement"})
    rts = baselines.REGISTRY[name](cluster)
    job = build_hospital_job(n_frames=64, frame_bytes=128 * KiB)
    stats = rts.run_job(job)
    return cluster, stats


def main() -> None:
    print("Figure 2: hospital dataflow — property cards")
    job = build_hospital_job()
    cards = Table(["task", "properties"])
    for task in job.topological_order():
        cards.add_row(task.name, task.properties.describe())
    print(cards)

    results = {}
    placements = {}
    for variant in ("declarative", "naive"):
        cluster, stats = run_variant(variant)
        results[variant] = stats
        placements[variant] = [
            (e.fields["region"], e.fields["device"])
            for e in cluster.trace.by_name("allocate")
        ]

    print("\nDeclarative runtime placements:")
    table = Table(["region", "device"])
    for region, device in placements["declarative"]:
        table.add_row(region, device)
    print(table)

    print("\nMakespan comparison:")
    comparison = Table(["runtime", "makespan", "vs declarative"])
    base = results["declarative"].makespan
    for variant, stats in results.items():
        comparison.add_row(variant, format_ns(stats.makespan),
                           f"{stats.makespan / base:.2f}x")
    print(comparison)

    declarative = results["declarative"]
    print(f"\nzero-copy handovers: {declarative.zero_copy_handover}, "
          f"copies: {declarative.copy_handover}")


if __name__ == "__main__":
    main()
