#!/usr/bin/env python3
"""Quickstart: declare a dataflow, let the runtime place everything.

Builds the Figure 1b pooled rack, declares a three-stage pipeline with
nothing but *properties* (no device names anywhere), runs it, and shows
what the runtime decided: task placement, region placement, and how
data moved between tasks (ownership transfer vs. copy).

Run:  python examples/quickstart.py
"""

from repro import (
    ComputeKind,
    Job,
    LatencyClass,
    OpClass,
    RegionUsage,
    Task,
    TaskProperties,
    WorkSpec,
    connect,
)
from repro.metrics import Table, format_bytes, format_ns

MiB = 1024 * 1024


def main() -> None:
    # The memory-centric rack of Figure 1b: CPUs/GPUs/TPU/FPGA in front
    # of a CXL-switched pool of DRAM, CXL-DRAM and PMem, with far memory
    # and storage behind the datacenter network.  connect() stacks the
    # cluster, runtime system, and QoS admission behind one Session.
    session = connect("pooled-rack")

    # A declarative dataflow: what each task needs, never where it runs.
    job = Job("quickstart", global_state_size=64 * 1024)
    ingest = job.add_task(Task(
        "ingest",
        work=WorkSpec(op_class=OpClass.SCALAR, ops=2e5,
                      output=RegionUsage(32 * MiB)),
    ))
    train = job.add_task(Task(
        "train",
        work=WorkSpec(op_class=OpClass.MATMUL, ops=5e7,
                      input_usage=RegionUsage(0, touches=2.0),
                      scratch=RegionUsage(8 * MiB, touches=4.0),
                      output=RegionUsage(2 * MiB)),
        properties=TaskProperties(compute=ComputeKind.GPU,
                                  mem_latency=LatencyClass.LOW),
    ))
    report = job.add_task(Task(
        "report",
        work=WorkSpec(op_class=OpClass.SCALAR, ops=5e4,
                      input_usage=RegionUsage(0)),
        properties=TaskProperties(persistent=False),
    ))
    job.connect(ingest, train)
    job.connect(train, report)

    stats = session.run(job)

    print(f"job {stats.job_name!r} finished in {format_ns(stats.makespan)} "
          f"(simulated)\n")
    table = Table(["task", "device", "queued", "ran for"], title="Schedule")
    for name, ts in stats.tasks.items():
        table.add_row(name, ts.device, format_ns(ts.queue_delay),
                      format_ns(ts.duration))
    print(table)

    print(f"\nhandover: {stats.zero_copy_handover} zero-copy, "
          f"{stats.copy_handover} copies "
          f"({format_bytes(stats.bytes_copied)} moved)")
    print(f"regions allocated: {stats.regions_allocated}, "
          f"leaked: {len(session.rts.memory.live_regions())}")


if __name__ == "__main__":
    main()
