#!/usr/bin/env python3
"""Cachew-style ML training (Table 3, AI/ML row; paper §2.4).

The input pipeline transforms raw samples once and caches the result in
Global Scratch; every training epoch — placed on an accelerator chosen
by the runtime — re-reads the cache instead of re-running the
transformation, coordinates through Global State, and keeps model state
in low-latency Private Scratch.  The final checkpoint is declared
``persistent`` and the runtime proves it by landing it on durable
media.

Run:  python examples/ml_training_cachew.py
"""

import repro.api as api
from repro import Cluster, ComputeKind
from repro.metrics import Table, format_bytes, format_ns

MiB = 1024 * 1024


def main() -> None:
    cluster = Cluster.preset("pooled-rack", trace_categories={"memory"})
    with api.connect(cluster=cluster) as session:
        handle = session.submit_app(
            "ml",
            n_samples=50_000, sample_bytes=1024,
            model_bytes=16 * MiB, epochs=3,
            accelerator=ComputeKind.GPU,
        )
        session.run()
        stats = session.result(handle)

    print(f"training pipeline finished in {format_ns(stats.makespan)}\n")
    table = Table(["stage", "device", "duration"], title="Schedule")
    for name, ts in stats.tasks.items():
        table.add_row(name, ts.device, format_ns(ts.duration))
    print(table)

    # Show the Cachew pattern in the allocation trace.
    allocations = cluster.trace.by_name("allocate")
    cache = [e for e in allocations if "transformed-cache" in str(e.fields["region"])]
    checkpoint = [e for e in allocations if "checkpoint#out" in str(e.fields["region"])]
    print("\nCachew cache (Global Scratch), allocated once, read by all epochs:")
    for event in cache:
        print(f"  {event.fields['region']} -> {event.fields['device']} "
              f"({format_bytes(event.fields['size'])})")
    print("Durable checkpoint (persistent=true in the property card):")
    for event in checkpoint:
        device = cluster.memory[event.fields["device"]]
        print(f"  {event.fields['region']} -> {event.fields['device']} "
              f"(persistent={device.spec.persistent})")

    accelerators = {stats.assignment[f"train-epoch{i}"] for i in range(3)}
    print(f"\nepochs ran on: {sorted(accelerators)} "
          f"(runtime chose the accelerator; the job only said 'GPU-class')")


if __name__ == "__main__":
    main()
