#!/usr/bin/env python3
"""Dataflows as configuration: load, plan, run.

Because the programming model is declarative, a whole job — DAG, work
specifications, property cards — is plain data.  This example loads an
analytics query from `examples/configs/analytics_query.json`, asks the
runtime to *explain its plan* (dry run: assignment, placements,
predicted makespan — nothing allocated), then executes it and compares
prediction with reality.

Run:  python examples/job_from_config.py
"""

import pathlib

import repro.api as api
from repro import Cluster
from repro.dataflow import job_from_json
from repro.metrics import format_ns

CONFIG = pathlib.Path(__file__).parent / "configs" / "analytics_query.json"


def main() -> None:
    text = CONFIG.read_text()
    print(f"loaded {CONFIG.name} ({len(text)} bytes of declarative job)\n")

    cluster = Cluster.preset("pooled-rack", seed=11)
    with api.connect(cluster=cluster) as session:
        # Dry run: what would the runtime do, and why?
        plan = session.rts.plan(job_from_json(text))
        print(plan.render())
        print(f"\ncritical path: {' -> '.join(plan.critical_path())}")

        # Now for real (jobs are single-use; load a fresh copy).
        stats = session.run(job_from_json(text))
        print(f"\nexecuted: makespan {format_ns(stats.makespan)} "
              f"(predicted {format_ns(plan.predicted_makespan)}, "
              f"ratio {stats.makespan / plan.predicted_makespan:.2f}x)")
        print(f"assignment matched the plan: "
              f"{stats.assignment == plan.assignment}")
        print(f"zero-copy handovers: {stats.zero_copy_handover}, leaked "
              f"regions: {len(session.rts.memory.live_regions())}")


if __name__ == "__main__":
    main()
