"""Incremental region checkpointing to persistent media.

The fourth fault-tolerance mechanism the paper's Challenge 8 implies
(alongside replication, striping, and erasure coding): periodically
persist the state of selected *volatile* regions so a crash costs at
most one checkpoint interval of work.

:class:`CheckpointService` runs as a background simulation process:

* registered regions are snapshotted every ``interval_ns`` — but only
  when **dirty** (bytes were written since the last snapshot; the
  write-tracking signal comes from the access interfaces), and only the
  written delta is shipped (capped at the region size);
* snapshots stream through the fabric to a chosen persistent device,
  where the service keeps one recovery allocation per region;
* :meth:`restore` re-materializes a lost region from its snapshot onto
  a healthy device, returning the replacement region.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.hardware.cluster import Cluster
from repro.memory.manager import MemoryManager, PlacementError
from repro.memory.properties import MemoryProperties
from repro.memory.region import MemoryRegion, RegionState


class CheckpointError(Exception):
    """No snapshot exists, or the snapshot store is unusable."""


@dataclasses.dataclass
class Snapshot:
    region_id: int
    region_name: str
    size: int
    #: Allocation holding the snapshot on the checkpoint device.
    store_region: MemoryRegion
    taken_at: float = -1.0
    #: region.bytes_written at snapshot time (dirty watermark).
    watermark: float = 0.0
    snapshots_taken: int = 0


class CheckpointService:
    """Periodic, dirty-aware snapshots of registered regions."""

    def __init__(
        self,
        cluster: Cluster,
        manager: MemoryManager,
        store_device: str,
        interval_ns: float = 1_000_000.0,
        owner: str = "checkpoint-service",
    ):
        if interval_ns <= 0:
            raise ValueError("checkpoint interval must be positive")
        device = cluster.memory.get(store_device)
        if device is None:
            raise CheckpointError(f"unknown device {store_device!r}")
        if not device.spec.persistent:
            raise CheckpointError(
                f"{store_device} is volatile; checkpoints must be durable"
            )
        self.cluster = cluster
        self.manager = manager
        self.store_device = store_device
        self.interval_ns = interval_ns
        self.owner = owner
        self._snapshots: typing.Dict[int, Snapshot] = {}
        self.snapshots_taken = 0
        self.snapshots_skipped_clean = 0
        self.bytes_persisted = 0.0
        self._stop = False

    # -- registration ----------------------------------------------------

    def register(self, region: MemoryRegion) -> Snapshot:
        """Start protecting ``region``; reserves durable space for it."""
        region.check_alive()
        if region.id in self._snapshots:
            return self._snapshots[region.id]
        store_region = self.manager.allocate_on(
            self.store_device, region.size,
            MemoryProperties(persistent=True), owner=self.owner,
            name=f"ckpt:{region.name}",
        )
        snapshot = Snapshot(
            region_id=region.id, region_name=region.name,
            size=region.size, store_region=store_region,
        )
        self._snapshots[region.id] = snapshot
        return snapshot

    def unregister(self, region: MemoryRegion) -> None:
        """Stop protecting a region and free its durable reservation."""
        snapshot = self._snapshots.pop(region.id, None)
        if snapshot is not None and snapshot.store_region.alive:
            self.manager.free(snapshot.store_region)

    # -- snapshotting ---------------------------------------------------

    def snapshot_once(self, region: MemoryRegion):
        """Simulation generator: persist ``region`` now if dirty.

        Returns the bytes shipped (0 when the region was clean).
        """
        snapshot = self._snapshots.get(region.id)
        if snapshot is None:
            raise CheckpointError(f"{region.name} is not registered")
        if not region.alive:
            return 0.0
        dirty = region.bytes_written - snapshot.watermark
        if snapshot.taken_at >= 0 and dirty <= 0:
            self.snapshots_skipped_clean += 1
            return 0.0
        # First snapshot ships the whole region; later ones the delta.
        nbytes = region.size if snapshot.taken_at < 0 else min(
            float(region.size), dirty
        )
        yield self.cluster.transfer(
            region.device.name, self.store_device, nbytes
        )
        snapshot.taken_at = self.cluster.engine.now
        snapshot.watermark = region.bytes_written
        snapshot.snapshots_taken += 1
        self.snapshots_taken += 1
        self.bytes_persisted += nbytes
        return nbytes

    def run(self):
        """Background loop: snapshot every registered live region."""
        while not self._stop:
            yield self.cluster.engine.timeout(self.interval_ns)
            if self._stop:
                return
            for snapshot in list(self._snapshots.values()):
                region = self._live_region(snapshot.region_id)
                if region is None:
                    continue
                yield from self.snapshot_once(region)

    def stop(self) -> None:
        """Ask the background snapshot loop to exit at its next wakeup."""
        self._stop = True

    # -- recovery -----------------------------------------------------------

    def has_snapshot(self, region_id: int) -> bool:
        """Whether a completed snapshot exists for the region id."""
        snapshot = self._snapshots.get(region_id)
        return snapshot is not None and snapshot.taken_at >= 0

    def restore(
        self,
        region_id: int,
        target_device: str,
        new_owner: typing.Hashable,
    ):
        """Simulation generator: rebuild a (lost) region from its snapshot.

        Returns the replacement region; staleness is bounded by the
        checkpoint interval (data written after the last snapshot is
        gone — that is the mechanism's contract).
        """
        snapshot = self._snapshots.get(region_id)
        if snapshot is None or snapshot.taken_at < 0:
            raise CheckpointError(f"no snapshot for region id {region_id}")
        try:
            replacement = self.manager.allocate_on(
                target_device, snapshot.size, MemoryProperties(),
                owner=new_owner, name=f"{snapshot.region_name}#restored",
            )
        except PlacementError as exc:
            raise CheckpointError(str(exc)) from exc
        yield self.cluster.transfer(
            self.store_device, target_device, snapshot.size
        )
        # Track the replacement under the same snapshot slot.
        del self._snapshots[region_id]
        snapshot.region_id = replacement.id
        snapshot.watermark = replacement.bytes_written
        self._snapshots[replacement.id] = snapshot
        return replacement

    def _live_region(self, region_id: int) -> typing.Optional[MemoryRegion]:
        region = self.manager.regions.get(region_id)
        if region is None or region.state is not RegionState.ACTIVE:
            return None
        return region
