"""Carbink-style erasure-coded far memory.

Two layers:

* :class:`ReedSolomon` — a real, byte-exact systematic Reed–Solomon
  codec over GF(2^8) (k data shards, m parity shards, tolerates any m
  erasures).  Used directly by property tests and by the store.
* :class:`ErasureCodedStore` — packs objects into fixed-size **spans**
  (k·shard_size logical bytes each), placing the k+m shards of every
  span on devices in *distinct failure domains*.  Node crashes mark
  shards lost; :meth:`recover` reads k survivors per damaged span,
  decodes, and re-materializes replacements elsewhere — with all traffic
  going through the simulated fabric so recovery time and bandwidth are
  measured, not asserted.  Deleting objects leaves dead bytes in their
  spans; :meth:`compact` rewrites fragmented spans (Carbink's
  compaction), reclaiming the dead space.
"""

from __future__ import annotations

import typing
from itertools import count

import numpy as np

from repro.ft.gf256 import GF256
from repro.hardware.cluster import Cluster
from repro.memory.manager import MemoryManager, PlacementError
from repro.memory.properties import MemoryProperties
from repro.memory.region import MemoryRegion, RegionState


class DecodeError(Exception):
    """Not enough surviving shards to reconstruct."""


class DataLoss(Exception):
    """An object is unrecoverable (more than m shards of its span lost)."""


class ReedSolomon:
    """Systematic RS(k+m, k) erasure codec over GF(2^8)."""

    def __init__(self, k: int, m: int):
        if k < 1 or m < 0 or k + m > 255:
            raise ValueError(f"invalid RS parameters k={k}, m={m}")
        self.k = k
        self.m = m
        vandermonde = np.zeros((k + m, k), dtype=np.uint8)
        for i in range(k + m):
            for j in range(k):
                vandermonde[i, j] = GF256.power(i + 1, j)
        top_inv = GF256.mat_invert(vandermonde[:k, :])
        #: Systematic encoding matrix: top k rows are the identity.
        self.matrix = GF256.mat_mul(vandermonde, top_inv)

    def encode(self, data_shards: np.ndarray) -> np.ndarray:
        """Compute the m parity shards for ``data_shards`` (k, shard_len)."""
        data = np.asarray(data_shards, dtype=np.uint8)
        if data.shape[0] != self.k:
            raise ValueError(f"expected {self.k} data shards, got {data.shape[0]}")
        if self.m == 0:
            return np.zeros((0, data.shape[1]), dtype=np.uint8)
        return GF256.mat_mul(self.matrix[self.k:, :], data)

    def decode(
        self, shards: typing.Mapping[int, np.ndarray], shard_len: int
    ) -> np.ndarray:
        """Reconstruct the k data shards from any k available shards.

        ``shards`` maps shard index (0..k+m-1) to its bytes.
        """
        if len(shards) < self.k:
            raise DecodeError(
                f"need {self.k} shards to decode, have {len(shards)}"
            )
        indices = sorted(shards)[: self.k]
        if indices == list(range(self.k)):
            return np.stack([np.asarray(shards[i], dtype=np.uint8) for i in indices])
        submatrix = self.matrix[indices, :]
        inverse = GF256.mat_invert(submatrix)
        available = np.stack(
            [np.asarray(shards[i], dtype=np.uint8) for i in indices]
        )
        if available.shape[1] != shard_len:
            raise ValueError("shard length mismatch")
        return GF256.mat_mul(inverse, available)

    @property
    def storage_overhead(self) -> float:
        """Physical bytes per logical byte: (k+m)/k."""
        return (self.k + self.m) / self.k


class Span:
    """One erasure-coded span: k data + m parity shards on k+m devices."""

    _ids = count()

    def __init__(self, k: int, m: int, shard_size: int):
        self.id = next(Span._ids)
        self.k = k
        self.m = m
        self.shard_size = shard_size
        #: shard index -> device name (len k+m once placed)
        self.devices: typing.List[str] = []
        self.regions: typing.List[MemoryRegion] = []
        #: actual shard bytes; None when that shard is lost
        self.shards: typing.List[typing.Optional[np.ndarray]] = []
        #: object name -> (offset, length) in the logical data area
        self.objects: typing.Dict[str, typing.Tuple[int, int]] = {}
        self.cursor = 0
        self.dead_bytes = 0

    @property
    def logical_capacity(self) -> int:
        return self.k * self.shard_size

    @property
    def free(self) -> int:
        return self.logical_capacity - self.cursor

    @property
    def live_bytes(self) -> int:
        return sum(length for _off, length in self.objects.values())

    @property
    def dead_fraction(self) -> float:
        used = self.cursor
        return self.dead_bytes / used if used else 0.0

    @property
    def lost_shards(self) -> typing.List[int]:
        return [i for i, s in enumerate(self.shards) if s is None]

    def data_array(self) -> np.ndarray:
        """The k data shards as one (k, shard_size) array (must be intact)."""
        rows = []
        for i in range(self.k):
            if self.shards[i] is None:
                raise DecodeError(f"span {self.id}: data shard {i} is lost")
            rows.append(self.shards[i])
        return np.stack(rows)


class ErasureCodedStore:
    """An object store over erasure-coded spans of disaggregated memory."""

    def __init__(
        self,
        cluster: Cluster,
        manager: MemoryManager,
        devices: typing.Sequence[str],
        home: str,
        k: int = 4,
        m: int = 2,
        shard_size: int = 64 * 1024,
        owner: str = "ec-store",
    ):
        if len({cluster.node_of(d) or d for d in devices}) < k + m:
            raise ValueError(
                f"need devices in >= {k + m} distinct failure domains, "
                f"got {len(devices)}"
            )
        self.cluster = cluster
        self.manager = manager
        self.devices = list(devices)
        self.home = home
        self.codec = ReedSolomon(k, m)
        self.shard_size = shard_size
        self.owner = owner
        self.spans: typing.List[Span] = []
        self._index: typing.Dict[str, Span] = {}
        self._next_device = 0
        self.bytes_written = 0
        self.bytes_read = 0
        self.repair_bytes = 0
        self.compactions = 0

    # -- placement helpers --------------------------------------------------

    def _pick_devices(self, n: int, exclude: typing.Iterable[str] = ()) -> typing.List[str]:
        """n healthy devices in distinct failure domains (round robin)."""
        excluded_domains = {self.cluster.node_of(d) for d in exclude}
        picked: typing.List[str] = []
        domains: set = set(excluded_domains)
        attempts = 0
        while len(picked) < n and attempts < 2 * len(self.devices):
            name = self.devices[self._next_device % len(self.devices)]
            self._next_device += 1
            attempts += 1
            device = self.cluster.memory[name]
            domain = self.cluster.node_of(name) or name
            if device.failed or domain in domains:
                continue
            if self.manager.allocators[name].largest_free_extent < self.shard_size:
                continue
            picked.append(name)
            domains.add(domain)
        if len(picked) < n:
            raise PlacementError(
                f"cannot find {n} healthy devices in distinct failure domains"
            )
        return picked

    def _allocate_span(self) -> Span:
        span = Span(self.codec.k, self.codec.m, self.shard_size)
        names = self._pick_devices(self.codec.k + self.codec.m)
        for name in names:
            region = self.manager.allocate_on(
                name, self.shard_size, MemoryProperties(), owner=self.owner,
                name=f"span{span.id}@{name}",
            )
            span.devices.append(name)
            span.regions.append(region)
            span.shards.append(np.zeros(self.shard_size, dtype=np.uint8))
        self.spans.append(span)
        return span

    # -- object operations -----------------------------------------------------

    def put(self, name: str, data: np.ndarray):
        """Simulation generator: store ``data`` (uint8 array) under ``name``."""
        payload = np.asarray(data, dtype=np.uint8)
        if name in self._index:
            raise KeyError(f"object {name!r} already stored")
        if payload.nbytes > self.shard_size * self.codec.k:
            raise ValueError(
                f"object of {payload.nbytes} B exceeds span capacity "
                f"{self.shard_size * self.codec.k} B"
            )
        span = next((s for s in self.spans if s.free >= payload.nbytes and not s.lost_shards), None)
        if span is None:
            span = self._allocate_span()

        offset = span.cursor
        flat = np.concatenate([s for s in span.shards[: span.k]])
        flat[offset: offset + payload.nbytes] = payload
        for i in range(span.k):
            span.shards[i] = flat[i * self.shard_size: (i + 1) * self.shard_size].copy()
        parity = self.codec.encode(span.data_array())
        for j in range(span.m):
            span.shards[span.k + j] = parity[j].copy()
        span.cursor += payload.nbytes
        span.objects[name] = (offset, payload.nbytes)
        self._index[name] = span

        # Write the touched data shards + all parity shards over the fabric.
        first = offset // self.shard_size
        last = (offset + payload.nbytes - 1) // self.shard_size
        transfers = []
        for i in range(first, last + 1):
            transfers.append(self.cluster.transfer(self.home, span.devices[i], self.shard_size))
            self.bytes_written += self.shard_size
        for j in range(span.m):
            transfers.append(
                self.cluster.transfer(self.home, span.devices[span.k + j], self.shard_size)
            )
            self.bytes_written += self.shard_size
        yield self.cluster.engine.all_of(transfers)
        return span

    def get(self, name: str):
        """Simulation generator: fetch the object's bytes.

        Degraded reads (data shard lost but ≤ m erasures) decode on the
        fly from k survivors — paying the extra fabric traffic.
        """
        span = self._index.get(name)
        if span is None:
            raise KeyError(f"no object {name!r}")
        offset, length = span.objects[name]
        first = offset // self.shard_size
        last = (offset + length - 1) // self.shard_size
        needed = list(range(first, last + 1))
        lost_needed = [i for i in needed if span.shards[i] is None]

        if not lost_needed:
            transfers = [
                self.cluster.transfer(span.devices[i], self.home, self.shard_size)
                for i in needed
            ]
            self.bytes_read += self.shard_size * len(needed)
            yield self.cluster.engine.all_of(transfers)
        else:
            available = {
                i: s for i, s in enumerate(span.shards) if s is not None
            }
            if len(available) < span.k:
                raise DataLoss(f"object {name!r}: span {span.id} lost too many shards")
            read_from = sorted(available)[: span.k]
            transfers = [
                self.cluster.transfer(span.devices[i], self.home, self.shard_size)
                for i in read_from
            ]
            self.bytes_read += self.shard_size * len(read_from)
            yield self.cluster.engine.all_of(transfers)

        data = self._reconstruct_data(span)
        flat = data.reshape(-1)
        return flat[offset: offset + length].copy()

    def delete(self, name: str) -> None:
        """Mark the object dead (space reclaimed by compaction)."""
        span = self._index.pop(name, None)
        if span is None:
            raise KeyError(f"no object {name!r}")
        _offset, length = span.objects.pop(name)
        span.dead_bytes += length

    # -- failure handling ---------------------------------------------------

    def note_device_failures(self) -> int:
        """Mark shards on failed devices as lost; returns #shards lost."""
        lost = 0
        for span in self.spans:
            for i, device_name in enumerate(span.devices):
                if span.shards[i] is None:
                    continue
                device = self.cluster.memory[device_name]
                if device.failed or span.regions[i].state is RegionState.LOST:
                    span.shards[i] = None
                    lost += 1
        return lost

    def recover(self):
        """Simulation generator: repair every span with lost shards.

        For each damaged span: read k surviving shards, decode, place
        replacement shards on healthy devices in unused failure domains,
        and write them out.  Returns the number of shards rebuilt.
        """
        rebuilt = 0
        for span in self.spans:
            lost = span.lost_shards
            if not lost:
                continue
            available = {i: s for i, s in enumerate(span.shards) if s is not None}
            if len(available) < span.k:
                continue  # unrecoverable; surfaced on get() as DataLoss
            # Read k survivors to the home node.
            read_from = sorted(available)[: span.k]
            transfers = [
                self.cluster.transfer(span.devices[i], self.home, self.shard_size)
                for i in read_from
            ]
            self.repair_bytes += self.shard_size * len(read_from)
            yield self.cluster.engine.all_of(transfers)

            data = self.codec.decode(
                {i: available[i] for i in read_from}, self.shard_size
            )
            parity = self.codec.encode(data)
            healthy = [d for i, d in enumerate(span.devices) if i not in lost]
            replacements = self._pick_devices(len(lost), exclude=healthy)

            writes = []
            for shard_index, new_device in zip(lost, replacements):
                region = self.manager.allocate_on(
                    new_device, self.shard_size, MemoryProperties(),
                    owner=self.owner, name=f"span{span.id}@{new_device}",
                )
                old_region = span.regions[shard_index]
                if old_region.state is RegionState.ACTIVE:
                    self.manager.free(old_region)
                span.regions[shard_index] = region
                span.devices[shard_index] = new_device
                if shard_index < span.k:
                    span.shards[shard_index] = data[shard_index].copy()
                else:
                    span.shards[shard_index] = parity[shard_index - span.k].copy()
                writes.append(
                    self.cluster.transfer(self.home, new_device, self.shard_size)
                )
                self.repair_bytes += self.shard_size
                rebuilt += 1
            yield self.cluster.engine.all_of(writes)
        return rebuilt

    # -- compaction ----------------------------------------------------------

    def compact(self, dead_threshold: float = 0.5):
        """Simulation generator: rewrite spans whose dead fraction exceeds
        the threshold, packing live objects into fresh spans."""
        victims = [
            s for s in self.spans
            if s.dead_fraction > dead_threshold and not s.lost_shards
        ]
        moved = 0
        for span in victims:
            live = list(span.objects.items())
            # Read the live data home once.
            transfers = [
                self.cluster.transfer(span.devices[i], self.home, self.shard_size)
                for i in range(span.k)
            ]
            self.bytes_read += self.shard_size * span.k
            yield self.cluster.engine.all_of(transfers)
            flat = span.data_array().reshape(-1)

            # Re-insert live objects, then drop the old span entirely.
            self.spans.remove(span)
            for name, (offset, length) in live:
                del self._index[name]
                payload = flat[offset: offset + length].copy()
                yield from self.put(name, payload)
                moved += 1
            for region in span.regions:
                if region.state is RegionState.ACTIVE:
                    self.manager.free(region)
            self.compactions += 1
        return moved

    # -- metrics --------------------------------------------------------------

    def physical_bytes(self) -> int:
        """Bytes physically occupied by all spans (data + parity)."""
        return sum(
            len(span.shards) * self.shard_size
            for span in self.spans
        )

    def live_logical_bytes(self) -> int:
        """Bytes of live (non-deleted) stored objects."""
        return sum(span.live_bytes for span in self.spans)

    def memory_overhead(self) -> float:
        """Physical bytes per live logical byte."""
        live = self.live_logical_bytes()
        return self.physical_bytes() / live if live else float("inf")

    # -- internals ---------------------------------------------------------

    def _reconstruct_data(self, span: Span) -> np.ndarray:
        available = {i: s for i, s in enumerate(span.shards) if s is not None}
        if all(span.shards[i] is not None for i in range(span.k)):
            return span.data_array()
        if len(available) < span.k:
            raise DataLoss(f"span {span.id} lost more than {span.m} shards")
        return self.codec.decode(
            {i: available[i] for i in sorted(available)[: span.k]},
            self.shard_size,
        )
