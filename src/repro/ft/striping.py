"""Page striping across memory nodes (paper §3 cites [36]).

A :class:`StripedStore` splits each object into fixed-size pages laid
out round-robin across N devices, optionally with one XOR parity page
per stripe row (RAID-5 style, tolerates a single device loss per row).
Striping buys *aggregate bandwidth* — reads and writes fan out over all
devices in parallel — which is exactly the property the striping bench
measures against a single-device layout.
"""

from __future__ import annotations

import typing

import numpy as np

from repro.hardware.cluster import Cluster
from repro.memory.manager import MemoryManager, PlacementError
from repro.memory.properties import MemoryProperties
from repro.memory.region import MemoryRegion, RegionState


class DataLoss(Exception):
    """A stripe row lost more pages than parity can repair."""


class StripeSet:
    """One striped object: pages + optional parity across devices."""

    def __init__(self, name: str, size: int, page_size: int, parity: bool):
        self.name = name
        self.size = size
        self.page_size = page_size
        self.parity = parity
        #: page index -> (device name, region); parity pages appended after
        #: the data pages, one per full stripe row.
        self.pages: typing.List[typing.Tuple[str, MemoryRegion]] = []
        self.payload: typing.Optional[np.ndarray] = None
        #: indices of pages currently lost
        self.lost: set = set()

    @property
    def n_data_pages(self) -> int:
        return (self.size + self.page_size - 1) // self.page_size


class StripedStore:
    """Objects striped page-wise over a fixed device group."""

    def __init__(
        self,
        cluster: Cluster,
        manager: MemoryManager,
        devices: typing.Sequence[str],
        home: str,
        page_size: int = 64 * 1024,
        parity: bool = False,
        owner: str = "stripe-store",
    ):
        if len(devices) < 2:
            raise ValueError("striping needs at least 2 devices")
        if parity and len(devices) < 3:
            raise ValueError("parity striping needs at least 3 devices")
        self.cluster = cluster
        self.manager = manager
        self.devices = list(devices)
        self.home = home
        self.page_size = page_size
        self.parity = parity
        self.owner = owner
        self.objects: typing.Dict[str, StripeSet] = {}
        self.bytes_written = 0
        self.bytes_read = 0
        self.repair_bytes = 0

    @property
    def stripe_width(self) -> int:
        """Data pages per stripe row (one device reserved for parity)."""
        return len(self.devices) - 1 if self.parity else len(self.devices)

    def put(self, name: str, data: np.ndarray):
        """Simulation generator: stripe ``data`` across the device group."""
        if name in self.objects:
            raise KeyError(f"object {name!r} already stored")
        payload = np.asarray(data, dtype=np.uint8)
        stripe = StripeSet(name, payload.nbytes, self.page_size, self.parity)
        stripe.payload = payload.copy()

        n_pages = stripe.n_data_pages
        transfers = []
        for page in range(n_pages):
            # Rotate parity like RAID-5 so no device is a hot spot.
            row, col = divmod(page, self.stripe_width)
            device_name = self.devices[(col + row) % len(self.devices)]
            region = self._allocate(device_name, name, page)
            stripe.pages.append((device_name, region))
            transfers.append(
                self.cluster.transfer(self.home, device_name, self.page_size)
            )
            self.bytes_written += self.page_size
        if self.parity:
            n_rows = (n_pages + self.stripe_width - 1) // self.stripe_width
            for row in range(n_rows):
                device_name = self.devices[(self.stripe_width + row) % len(self.devices)]
                region = self._allocate(device_name, name, f"p{row}")
                stripe.pages.append((device_name, region))
                transfers.append(
                    self.cluster.transfer(self.home, device_name, self.page_size)
                )
                self.bytes_written += self.page_size
        self.objects[name] = stripe
        yield self.cluster.engine.all_of(transfers)
        return stripe

    def get(self, name: str):
        """Simulation generator: read all data pages in parallel."""
        stripe = self._lookup(name)
        lost_data = {i for i in stripe.lost if i < stripe.n_data_pages}
        if lost_data:
            if not self.parity:
                raise DataLoss(f"{name!r}: lost pages and no parity")
            yield from self._degraded_read(stripe, lost_data)
        else:
            transfers = [
                self.cluster.transfer(device, self.home, self.page_size)
                for i, (device, _r) in enumerate(stripe.pages[: stripe.n_data_pages])
            ]
            self.bytes_read += self.page_size * stripe.n_data_pages
            yield self.cluster.engine.all_of(transfers)
        return stripe.payload.copy()

    def delete(self, name: str) -> None:
        """Remove an object and free all of its pages."""
        stripe = self.objects.pop(name, None)
        if stripe is None:
            raise KeyError(f"no object {name!r}")
        for _device, region in stripe.pages:
            if region.state is RegionState.ACTIVE:
                self.manager.free(region)

    # -- failure handling ----------------------------------------------------

    def note_device_failures(self) -> int:
        """Mark pages on failed devices lost; returns how many."""
        lost = 0
        for stripe in self.objects.values():
            for i, (device_name, region) in enumerate(stripe.pages):
                if i in stripe.lost:
                    continue
                if self.cluster.memory[device_name].failed or region.state in (
                    RegionState.LOST, RegionState.FREED,
                ):
                    stripe.lost.add(i)
                    lost += 1
        return lost

    def recover(self):
        """Simulation generator: rebuild lost pages from row parity."""
        if not self.parity:
            return 0
        rebuilt = 0
        for stripe in self.objects.values():
            if not stripe.lost:
                continue
            rows: typing.Dict[int, list] = {}
            for i in sorted(stripe.lost):
                if i < stripe.n_data_pages:
                    rows.setdefault(i // self.stripe_width, []).append(i)
                else:
                    rows.setdefault(i - stripe.n_data_pages, []).append(i)
            for row, lost_pages in rows.items():
                if len(lost_pages) > 1:
                    raise DataLoss(
                        f"{stripe.name!r}: row {row} lost {len(lost_pages)} pages"
                    )
                # Read the surviving pages of the row, xor, write replacement.
                survivors = self._row_pages(stripe, row)
                survivors = [i for i in survivors if i not in stripe.lost]
                transfers = [
                    self.cluster.transfer(stripe.pages[i][0], self.home, self.page_size)
                    for i in survivors
                ]
                self.repair_bytes += self.page_size * len(survivors)
                yield self.cluster.engine.all_of(transfers)

                lost_index = lost_pages[0]
                used = {stripe.pages[i][0] for i in survivors}
                candidates = [
                    d for d in self.devices
                    if d not in used and not self.cluster.memory[d].failed
                    and self.manager.allocators[d].largest_free_extent >= self.page_size
                ]
                if not candidates:
                    # Degraded placement: double up on a row member rather
                    # than leaving the page unprotected.
                    candidates = [
                        d for d in self.devices
                        if not self.cluster.memory[d].failed
                        and self.manager.allocators[d].largest_free_extent
                        >= self.page_size
                    ]
                if not candidates:
                    raise PlacementError("no healthy device for rebuilt page")
                target = candidates[0]
                region = self._allocate(target, stripe.name, f"r{lost_index}")
                old = stripe.pages[lost_index][1]
                if old.state is RegionState.ACTIVE:
                    self.manager.free(old)
                stripe.pages[lost_index] = (target, region)
                stripe.lost.discard(lost_index)
                yield self.cluster.transfer(self.home, target, self.page_size)
                self.repair_bytes += self.page_size
                rebuilt += 1
        return rebuilt

    # -- metrics ---------------------------------------------------------

    def physical_bytes(self) -> int:
        """Bytes occupied by surviving pages (data + parity)."""
        return sum(
            (len(s.pages) - len(s.lost)) * self.page_size
            for s in self.objects.values()
        )

    def live_logical_bytes(self) -> int:
        """Bytes of stored objects (one logical copy each)."""
        return sum(s.size for s in self.objects.values())

    def memory_overhead(self) -> float:
        """Physical bytes per logical byte ((w+1)/w with parity)."""
        live = self.live_logical_bytes()
        return self.physical_bytes() / live if live else float("inf")

    # -- internals -------------------------------------------------------

    def _degraded_read(self, stripe: StripeSet, lost_data: set):
        for page in sorted(lost_data):
            row = page // self.stripe_width
            survivors = [
                i for i in self._row_pages(stripe, row) if i not in stripe.lost
            ]
            transfers = [
                self.cluster.transfer(stripe.pages[i][0], self.home, self.page_size)
                for i in survivors
            ]
            self.bytes_read += self.page_size * len(survivors)
            yield self.cluster.engine.all_of(transfers)
        intact = [
            i for i in range(stripe.n_data_pages)
            if i not in lost_data
        ]
        transfers = [
            self.cluster.transfer(stripe.pages[i][0], self.home, self.page_size)
            for i in intact
        ]
        self.bytes_read += self.page_size * len(intact)
        if transfers:
            yield self.cluster.engine.all_of(transfers)

    def _row_pages(self, stripe: StripeSet, row: int) -> typing.List[int]:
        """All page indices (data + parity) belonging to a stripe row."""
        start = row * self.stripe_width
        end = min(start + self.stripe_width, stripe.n_data_pages)
        pages = list(range(start, end))
        if self.parity:
            pages.append(stripe.n_data_pages + row)
        return pages

    def _allocate(self, device_name: str, obj: str, page) -> MemoryRegion:
        return self.manager.allocate_on(
            device_name, self.page_size, MemoryProperties(),
            owner=self.owner, name=f"{obj}/{page}@{device_name}",
        )

    def _lookup(self, name: str) -> StripeSet:
        stripe = self.objects.get(name)
        if stripe is None:
            raise KeyError(f"no object {name!r}")
        return stripe
