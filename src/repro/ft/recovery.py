"""Failure detection and recovery orchestration.

Wires the cluster's :class:`~repro.sim.faults.FaultInjector` to the
fault-tolerant stores: when a node crashes, the orchestrator (after a
configurable detection delay, modeling lease/heartbeat timeouts) tells
every registered store to note its losses and launches their
``recover()`` generators as simulation processes.  Recovery time and
repair traffic land in :class:`RecoveryStats` — the quantities bench C4
reports.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.hardware.cluster import Cluster
from repro.sim.faults import FaultEvent, FaultKind


@dataclasses.dataclass
class RecoveryStats:
    crashes_seen: int = 0
    repairs_started: int = 0
    repairs_completed: int = 0
    shards_rebuilt: int = 0
    total_repair_time_ns: float = 0.0
    unrecoverable: int = 0

    @property
    def mean_repair_time_ns(self) -> float:
        if not self.repairs_completed:
            return 0.0
        return self.total_repair_time_ns / self.repairs_completed


class RecoveryOrchestrator:
    """Watches for crashes and drives store recovery."""

    def __init__(
        self,
        cluster: Cluster,
        stores: typing.Sequence,
        detection_delay_ns: float = 10_000.0,
    ):
        if detection_delay_ns < 0:
            raise ValueError("detection delay must be >= 0")
        self.cluster = cluster
        self.stores = list(stores)
        self.detection_delay_ns = detection_delay_ns
        self.stats = RecoveryStats()
        cluster.faults.on(FaultKind.NODE_CRASH, self._on_crash)

    def register(self, store) -> None:
        """Add another store to the repair set."""
        self.stores.append(store)

    def _on_crash(self, fault: FaultEvent) -> None:
        self.stats.crashes_seen += 1
        self.cluster.engine.process(
            self._repair(fault), name=f"recovery:{fault.target}"
        )

    def _repair(self, fault: FaultEvent):
        yield self.cluster.engine.timeout(self.detection_delay_ns)
        started = self.cluster.engine.now
        self.stats.repairs_started += 1
        self.cluster.obs.causal.note_fault(
            "repair_started", fault.target, started
        )
        span = self.cluster.obs.begin_span(
            "recovery", "repair_done", target=fault.target,
        )
        shards = 0
        try:
            for store in self.stores:
                store.note_device_failures()
            for store in self.stores:
                try:
                    rebuilt = yield from store.recover()
                except Exception:
                    self.stats.unrecoverable += 1
                    continue
                shards += int(rebuilt or 0)
            self.stats.shards_rebuilt += shards
            self.stats.repairs_completed += 1
            self.stats.total_repair_time_ns += self.cluster.engine.now - started
            self.cluster.obs.causal.note_fault(
                "repair_done", fault.target, self.cluster.engine.now,
                shards=shards,
            )
            if span:
                span.set(duration=self.cluster.engine.now - started, shards=shards)
        finally:
            # close() is idempotent and a no-op on NOOP_SPAN, so the span
            # is accounted for even when the repair process is killed.
            span.close()
