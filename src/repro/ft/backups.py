"""Best-effort backups of task outputs for in-flight recovery.

When a producer's output is handed to downstream tasks, the runtime can
ask this store to keep one extra copy on a device in a *different
failure domain*.  If a fault later wipes the delivered input, the
retrying consumer re-materializes it from the backup (a *degraded
read*) instead of forcing a whole-job re-execution — the middle rung of
the recovery ladder (task retry → re-placement → degraded read →
checkpoint-pruned job retry → abandon).

Backups are deliberately best-effort: if no device in another failure
domain has room, or the backup copy itself fails mid-transfer, the job
simply proceeds unprotected (and a later loss escalates to the job
level).  That keeps the data plane's fast path unconditional.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.hardware.cluster import Cluster
from repro.memory.manager import MemoryManager, PlacementError
from repro.memory.region import MemoryRegion
from repro.runtime.placement import PlacementPolicy, PlacementRequest


@dataclasses.dataclass
class BackupStats:
    backups: int = 0
    backup_bytes: float = 0.0
    skipped: int = 0
    restores: int = 0
    restore_bytes: float = 0.0
    failed_restores: int = 0


class _BackupEntry:
    """One protected payload: the backup copy plus its job owner."""

    __slots__ = ("copy", "job_owner", "size")

    def __init__(self, copy: MemoryRegion, job_owner: typing.Hashable, size: int):
        self.copy = copy
        self.job_owner = job_owner
        self.size = size


class OutputBackupStore:
    """Keeps one off-domain copy of delivered task outputs.

    Wire into a :class:`~repro.runtime.rts.RuntimeSystem` via its
    ``backups`` parameter; the runtime calls :meth:`backup_delivery`
    after each handover, :meth:`restore` from a retrying task, and
    :meth:`release_job` when the job completes or aborts.
    """

    def __init__(
        self,
        cluster: Cluster,
        manager: MemoryManager,
        owner: str = "backup-store",
    ):
        self.cluster = cluster
        self.manager = manager
        self.owner = owner
        self.stats = BackupStats()
        #: region id -> entry (several delivered regions may map to the
        #: same entry after a share_out; restores re-register, too)
        self._entries: typing.Dict[int, _BackupEntry] = {}

    # -- write path --------------------------------------------------------

    def backup_delivery(
        self,
        regions: typing.Sequence[MemoryRegion],
        job_owner: typing.Hashable,
    ):
        """Simulation generator: back up one physical copy of a
        delivered output and register every delivered region against
        it.  Never raises — a failed backup only loses protection."""
        from repro.hardware.interconnect import NoRouteError
        from repro.sim.flows import LinkDown, TransferTimeout

        live = [r for r in regions if r.alive]
        if not live:
            return None
        source = live[0]
        device = self._pick_device(source)
        if device is None:
            self.stats.skipped += 1
            return None
        try:
            copy = self.manager.allocate_on(
                device, source.size, source.properties,
                owner=self.owner, name=f"{source.name}~backup",
            )
        except PlacementError:
            self.stats.skipped += 1
            return None
        try:
            yield from self.cluster.reliable_transfer(
                source.device.name, device, source.size
            )
        except (LinkDown, TransferTimeout, NoRouteError, PlacementError):
            if copy.alive:
                self.manager.drop_owner(copy, self.owner)
            self.stats.skipped += 1
            return None
        if not source.alive:
            # The copy streams concurrently with delivery; a source
            # released before the stream finished leaves a torn copy
            # that protects nothing.
            if copy.alive:
                self.manager.drop_owner(copy, self.owner)
            self.stats.skipped += 1
            return None
        entry = _BackupEntry(copy, job_owner, source.size)
        for region in live:
            self._entries[region.id] = entry
        self.stats.backups += 1
        self.stats.backup_bytes += source.size
        self.cluster.trace.emit(
            self.cluster.engine.now, "recovery", "backup",
            region=source.name, device=device, nbytes=source.size,
        )
        return entry

    def register_delivered(
        self,
        entry: typing.Optional[_BackupEntry],
        regions: typing.Sequence[MemoryRegion],
    ) -> None:
        """Register delivered regions against an existing backup entry.

        Hedged handover backs the producer's *output* up before any
        delivery copy starts (so the copies can race a hedge from the
        replica); this re-keys the same protection onto the regions the
        consumers actually received.
        """
        if entry is None or not entry.copy.alive:
            return
        for region in regions:
            if region.alive:
                self._entries[region.id] = entry

    # -- hedging support ---------------------------------------------------

    def replica_device(self, region: MemoryRegion) -> typing.Optional[str]:
        """Device holding a live backup of ``region`` (hedge source).

        ``None`` when the region is unprotected — the hedged transfer
        then simply runs unhedged.
        """
        entry = self._entries.get(region.id)
        if entry is None or not entry.copy.alive:
            return None
        return entry.copy.device.name

    def _pick_device(self, region: MemoryRegion) -> typing.Optional[str]:
        """A healthy device with room in a different failure domain
        than the region's current home (the whole point of the copy).

        Prefers the fastest qualifying device: a slow backup target
        (e.g. an HDD with terabytes free) would stretch the unprotected
        window between delivery and backup completion, and make every
        later degraded read crawl."""
        monitor = getattr(self.cluster, "health_monitor", None)
        home_domain = self.cluster.node_of(region.device.name)
        # Domains hosting compute also host the consumers most likely to
        # use the primary copy — a crash there takes both.  Prefer
        # memory-only domains (the disaggregated pool) when one has room.
        compute_domains = {
            self.cluster.node_of(name) for name in self.cluster.compute
        }
        best: typing.Optional[str] = None
        best_key: typing.Optional[typing.Tuple[bool, float, float]] = None
        for device in self.cluster.memory_devices():
            if device.name == region.device.name:
                continue
            if region.properties.persistent and not device.spec.persistent:
                continue
            domain = self.cluster.node_of(device.name)
            if home_domain is not None and domain == home_domain:
                continue
            if monitor is not None and not monitor.can_use(device.name):
                continue
            free = self.manager.allocators[device.name].largest_free_extent
            if free < region.size:
                continue
            key = (domain not in compute_domains, device.spec.bandwidth, free)
            if best_key is None or key > best_key:
                best, best_key = device.name, key
        return best

    # -- read path ---------------------------------------------------------

    def has_backup(self, region: MemoryRegion) -> bool:
        """Whether a live backup copy exists for ``region``."""
        entry = self._entries.get(region.id)
        return entry is not None and entry.copy.alive

    def restore(
        self,
        region: MemoryRegion,
        owner: typing.Hashable,
        observers: typing.Tuple[str, ...],
        placement: PlacementPolicy,
    ):
        """Simulation generator: re-materialize a lost region near its
        consumer from the backup copy.

        Returns the fresh region, or ``None`` when no live backup copy
        exists (a *permanent* miss).  Transient infrastructure failures
        — no placement, or the restore transfer hit a fault — propagate
        so the caller's retry machinery can re-attempt the restore after
        re-placing the consumer."""
        from repro.hardware.interconnect import NoRouteError
        from repro.sim.flows import LinkDown, TransferTimeout

        entry = self._entries.get(region.id)
        if entry is None or not entry.copy.alive:
            self.stats.failed_restores += 1
            return None
        try:
            fresh = placement.place(PlacementRequest(
                size=entry.size,
                properties=region.properties,
                owner=owner,
                observers=observers,
                name=f"{region.name}~restored",
                region_type=region.region_type,
            ))
        except PlacementError:
            self.stats.failed_restores += 1
            raise
        try:
            yield from self.cluster.reliable_transfer(
                entry.copy.device.name, fresh.device.name, entry.size
            )
        except (LinkDown, TransferTimeout, NoRouteError):
            if fresh.alive:
                self.manager.drop_owner(fresh, owner)
            self.stats.failed_restores += 1
            raise
        # The restored region is itself protected by the same entry.
        self._entries[fresh.id] = entry
        self.stats.restores += 1
        self.stats.restore_bytes += entry.size
        self.cluster.trace.emit(
            self.cluster.engine.now, "recovery", "restore",
            region=region.name, src=entry.copy.device.name,
            dst=fresh.device.name, nbytes=entry.size,
        )
        return fresh

    # -- lifecycle ---------------------------------------------------------

    def release_job(self, job_owner: typing.Hashable) -> int:
        """Free every backup held for ``job_owner``; returns how many."""
        released = 0
        dead = [
            rid for rid, entry in self._entries.items()
            if entry.job_owner == job_owner
        ]
        seen: typing.Set[int] = set()
        for rid in dead:
            entry = self._entries.pop(rid)
            if id(entry) in seen:
                continue
            seen.add(id(entry))
            if entry.copy.alive and entry.copy.ownership.is_owner(self.owner):
                self.manager.drop_owner(entry.copy, self.owner)
            released += 1
        return released

    def note_device_failures(self) -> int:
        """Forget entries whose backup copy is gone; returns how many."""
        lost = [
            rid for rid, entry in self._entries.items()
            if not entry.copy.alive
        ]
        for rid in lost:
            del self._entries[rid]
        return len(lost)
