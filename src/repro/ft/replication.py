"""Replication-based fault tolerance for memory regions.

The straightforward alternative the paper cites ([12, 27, 53]): keep
``copies`` full replicas of every object on devices in distinct failure
domains.  Reads go to the replica nearest to the reader; writes fan out
to all replicas; a node crash triggers re-replication from a survivor.
Memory overhead is ``copies``×, repair reads only the object size —
the exact trade-off bench C4 compares against erasure coding.
"""

from __future__ import annotations

import typing

import numpy as np

from repro.hardware.cluster import Cluster
from repro.memory.manager import MemoryManager, PlacementError
from repro.memory.properties import MemoryProperties
from repro.memory.region import MemoryRegion, RegionState


class DataLoss(Exception):
    """All replicas of an object were lost."""


class ReplicaSet:
    """One object's replicas."""

    def __init__(self, name: str, size: int):
        self.name = name
        self.size = size
        #: device name -> region (replicas currently believed healthy)
        self.replicas: typing.Dict[str, MemoryRegion] = {}
        self.payload: typing.Optional[np.ndarray] = None

    @property
    def healthy_devices(self) -> typing.List[str]:
        return [
            d for d, r in self.replicas.items() if r.state is RegionState.ACTIVE
        ]


class ReplicatedStore:
    """An object store that keeps ``copies`` replicas per object."""

    def __init__(
        self,
        cluster: Cluster,
        manager: MemoryManager,
        devices: typing.Sequence[str],
        home: str,
        copies: int = 2,
        owner: str = "repl-store",
    ):
        if copies < 1:
            raise ValueError(f"copies must be >= 1, got {copies}")
        domains = {cluster.node_of(d) or d for d in devices}
        if len(domains) < copies:
            raise ValueError(
                f"need devices in >= {copies} failure domains, have {len(domains)}"
            )
        self.cluster = cluster
        self.manager = manager
        self.devices = list(devices)
        self.home = home
        self.copies = copies
        self.owner = owner
        self.objects: typing.Dict[str, ReplicaSet] = {}
        self._next_device = 0
        self.bytes_written = 0
        self.bytes_read = 0
        self.repair_bytes = 0

    def _pick_devices(
        self, n: int, size: int, exclude: typing.Iterable[str] = ()
    ) -> typing.List[str]:
        excluded_domains = {self.cluster.node_of(d) for d in exclude}
        picked: typing.List[str] = []
        domains: set = set(excluded_domains)
        attempts = 0
        while len(picked) < n and attempts < 2 * len(self.devices):
            name = self.devices[self._next_device % len(self.devices)]
            self._next_device += 1
            attempts += 1
            device = self.cluster.memory[name]
            domain = self.cluster.node_of(name) or name
            if device.failed or domain in domains:
                continue
            if self.manager.allocators[name].largest_free_extent < size:
                continue
            picked.append(name)
            domains.add(domain)
        if len(picked) < n:
            raise PlacementError(
                f"cannot find {n} healthy devices in distinct failure domains"
            )
        return picked

    # -- operations -----------------------------------------------------------

    def put(self, name: str, data: np.ndarray):
        """Simulation generator: store ``data`` with full replication."""
        if name in self.objects:
            raise KeyError(f"object {name!r} already stored")
        payload = np.asarray(data, dtype=np.uint8)
        replica_set = ReplicaSet(name, payload.nbytes)
        replica_set.payload = payload.copy()
        devices = self._pick_devices(self.copies, payload.nbytes)
        transfers = []
        for device_name in devices:
            region = self.manager.allocate_on(
                device_name, payload.nbytes, MemoryProperties(),
                owner=self.owner, name=f"{name}@{device_name}",
            )
            replica_set.replicas[device_name] = region
            transfers.append(
                self.cluster.transfer(self.home, device_name, payload.nbytes)
            )
            self.bytes_written += payload.nbytes
        self.objects[name] = replica_set
        yield self.cluster.engine.all_of(transfers)
        return replica_set

    def get(self, name: str):
        """Simulation generator: read the object from the nearest replica."""
        replica_set = self._lookup(name)
        healthy = replica_set.healthy_devices
        if not healthy:
            raise DataLoss(f"all replicas of {name!r} lost")
        nearest = min(
            healthy,
            key=lambda d: self.cluster.topology.path_latency(self.home, d),
        )
        self.bytes_read += replica_set.size
        yield self.cluster.transfer(nearest, self.home, replica_set.size)
        return replica_set.payload.copy()

    def delete(self, name: str) -> None:
        """Remove an object and free every replica."""
        replica_set = self.objects.pop(name, None)
        if replica_set is None:
            raise KeyError(f"no object {name!r}")
        for region in replica_set.replicas.values():
            if region.state is RegionState.ACTIVE:
                self.manager.free(region)

    # -- failure handling -----------------------------------------------------

    def note_device_failures(self) -> int:
        """Drop replicas whose backing is gone; returns #replicas lost."""
        lost = 0
        for replica_set in self.objects.values():
            for device_name in list(replica_set.replicas):
                region = replica_set.replicas[device_name]
                if self.cluster.memory[device_name].failed or region.state in (
                    RegionState.LOST, RegionState.FREED,
                ):
                    del replica_set.replicas[device_name]
                    lost += 1
        return lost

    def recover(self):
        """Simulation generator: restore full replication everywhere.

        Copies from a surviving replica (survivor → home → new device),
        so repair cost is proportional to the under-replicated bytes.
        Returns the number of replicas re-created.
        """
        rebuilt = 0
        for replica_set in self.objects.values():
            healthy = replica_set.healthy_devices
            if not healthy:
                continue  # unrecoverable; surfaced on get() as DataLoss
            missing = self.copies - len(healthy)
            if missing <= 0:
                continue
            source = healthy[0]
            yield self.cluster.transfer(source, self.home, replica_set.size)
            self.repair_bytes += replica_set.size
            targets = self._pick_devices(
                missing, replica_set.size, exclude=healthy
            )
            writes = []
            for device_name in targets:
                region = self.manager.allocate_on(
                    device_name, replica_set.size, MemoryProperties(),
                    owner=self.owner, name=f"{replica_set.name}@{device_name}",
                )
                replica_set.replicas[device_name] = region
                writes.append(
                    self.cluster.transfer(self.home, device_name, replica_set.size)
                )
                self.repair_bytes += replica_set.size
                rebuilt += 1
            yield self.cluster.engine.all_of(writes)
        return rebuilt

    # -- metrics --------------------------------------------------------

    def physical_bytes(self) -> int:
        """Bytes occupied across all healthy replicas."""
        return sum(
            len(rs.healthy_devices) * rs.size for rs in self.objects.values()
        )

    def live_logical_bytes(self) -> int:
        """Bytes of stored objects (one logical copy each)."""
        return sum(rs.size for rs in self.objects.values())

    def memory_overhead(self) -> float:
        """Physical bytes per logical byte (= replica count when healthy)."""
        live = self.live_logical_bytes()
        return self.physical_bytes() / live if live else float("inf")

    def _lookup(self, name: str) -> ReplicaSet:
        replica_set = self.objects.get(name)
        if replica_set is None:
            raise KeyError(f"no object {name!r}")
        return replica_set
