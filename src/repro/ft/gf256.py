"""Arithmetic in GF(2^8), vectorized with numpy.

The field is built over the AES/Reed–Solomon-standard primitive
polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11d).  Multiplication uses
exp/log tables; all element-wise operations accept numpy arrays so the
erasure codec streams at array speed.
"""

from __future__ import annotations

import numpy as np

_PRIMITIVE_POLY = 0x11D


def _build_tables():
    exp = np.zeros(512, dtype=np.int32)
    log = np.zeros(256, dtype=np.int32)
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        x <<= 1
        if x & 0x100:
            x ^= _PRIMITIVE_POLY
    exp[255:510] = exp[0:255]  # wraparound so exp[a+b] works without mod
    return exp, log


class GF256:
    """Element-wise GF(2^8) arithmetic on ints or uint8 numpy arrays."""

    EXP, LOG = _build_tables()

    @classmethod
    def add(cls, a, b):
        """Addition = XOR in characteristic 2."""
        return np.bitwise_xor(a, b)

    subtract = add  # identical in GF(2^8)

    @classmethod
    def multiply(cls, a, b):
        """Element-wise product (broadcasting like numpy)."""
        a_arr = np.asarray(a, dtype=np.int32)
        b_arr = np.asarray(b, dtype=np.int32)
        result = cls.EXP[(cls.LOG[a_arr] + cls.LOG[b_arr])]
        result = np.where((a_arr == 0) | (b_arr == 0), 0, result)
        if np.isscalar(a) and np.isscalar(b):
            return int(result)
        return result.astype(np.uint8)

    @classmethod
    def inverse(cls, a):
        """Multiplicative inverse; raises on zero."""
        a_arr = np.asarray(a, dtype=np.int32)
        if np.any(a_arr == 0):
            raise ZeroDivisionError("zero has no inverse in GF(256)")
        result = cls.EXP[255 - cls.LOG[a_arr]]
        if np.isscalar(a):
            return int(result)
        return result.astype(np.uint8)

    @classmethod
    def divide(cls, a, b):
        """Element-wise a / b in GF(256) (raises on division by zero)."""
        return cls.multiply(a, cls.inverse(b))

    @classmethod
    def power(cls, a: int, n: int) -> int:
        """a**n for scalar a."""
        if a == 0:
            return 0 if n != 0 else 1
        return int(cls.EXP[(cls.LOG[a] * n) % 255])

    # -- matrix operations (small k x k systems for decode) ---------------

    @classmethod
    def mat_mul(cls, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Matrix product over GF(256)."""
        a = np.asarray(a, dtype=np.uint8)
        b = np.asarray(b, dtype=np.uint8)
        if a.shape[1] != b.shape[0]:
            raise ValueError(f"shape mismatch {a.shape} x {b.shape}")
        out = np.zeros((a.shape[0], b.shape[1]), dtype=np.uint8)
        for i in range(a.shape[0]):
            acc = np.zeros(b.shape[1], dtype=np.uint8)
            for j in range(a.shape[1]):
                acc ^= cls.multiply(int(a[i, j]), b[j, :])
            out[i, :] = acc
        return out

    @classmethod
    def mat_invert(cls, matrix: np.ndarray) -> np.ndarray:
        """Gauss–Jordan inversion over GF(256); raises on singularity."""
        m = np.asarray(matrix, dtype=np.uint8).copy()
        n = m.shape[0]
        if m.shape != (n, n):
            raise ValueError(f"matrix must be square, got {m.shape}")
        aug = np.concatenate([m, np.eye(n, dtype=np.uint8)], axis=1)
        for col in range(n):
            pivot = None
            for row in range(col, n):
                if aug[row, col] != 0:
                    pivot = row
                    break
            if pivot is None:
                raise np.linalg.LinAlgError("singular matrix over GF(256)")
            if pivot != col:
                aug[[col, pivot]] = aug[[pivot, col]]
            aug[col, :] = cls.divide(aug[col, :], int(aug[col, col]))
            for row in range(n):
                if row != col and aug[row, col] != 0:
                    factor = int(aug[row, col])
                    aug[row, :] ^= cls.multiply(factor, aug[col, :])
        return aug[:, n:]
