"""Fault tolerance for disaggregated memory (paper §3, Challenge 8).

The paper lists the mechanisms a disaggregated runtime can use to
survive the failures that are routine at datacenter scale:

* **replication** (:mod:`repro.ft.replication`) — k copies of a region
  on distinct failure domains; fast recovery, 2–3× memory overhead;
* **striping** (:mod:`repro.ft.striping`) — pages of a region spread
  over several memory nodes, optionally with XOR parity;
* **erasure coding** (:mod:`repro.ft.erasure`) — Carbink-style spans of
  k data shards + m Reed–Solomon parity shards on distinct nodes, with
  compaction of dead space; ~(k+m)/k memory overhead at the price of
  reconstruction bandwidth.  The Reed–Solomon codec
  (:mod:`repro.ft.gf256`, :class:`repro.ft.erasure.ReedSolomon`) is a
  real, byte-exact implementation validated by property tests.
* **recovery orchestration** (:mod:`repro.ft.recovery`) — failure
  detection wired to the cluster's fault injector, driving repair as
  simulation processes and accounting repair traffic.
"""

from repro.ft.backups import BackupStats, OutputBackupStore
from repro.ft.gf256 import GF256
from repro.ft.erasure import (
    DecodeError,
    ErasureCodedStore,
    ReedSolomon,
    Span,
)
from repro.ft.replication import ReplicatedStore, ReplicaSet
from repro.ft.striping import StripedStore, StripeSet
from repro.ft.recovery import RecoveryOrchestrator, RecoveryStats
from repro.ft.checkpoint import CheckpointError, CheckpointService, Snapshot

__all__ = [
    "BackupStats",
    "CheckpointError",
    "CheckpointService",
    "DecodeError",
    "ErasureCodedStore",
    "GF256",
    "OutputBackupStore",
    "RecoveryOrchestrator",
    "RecoveryStats",
    "ReedSolomon",
    "ReplicaSet",
    "ReplicatedStore",
    "Snapshot",
    "Span",
    "StripeSet",
    "StripedStore",
]
