"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``presets`` — list the canonical cluster configurations;
* ``info <preset>`` — describe a cluster: devices, capacities, and the
  end-to-end access characteristics every CPU observes (a live Table 1);
* ``demo [preset]`` — run the quickstart pipeline and print the
  schedule, placements, and handover summary;
* ``llm [preset]`` — serve an LLM request stream colocated vs
  disaggregated-with-prefix-reuse and print the comparison.
"""

from __future__ import annotations

import argparse
import sys

from repro.hardware import Cluster, presets
from repro.metrics import Table, format_bytes, format_ns


def cmd_presets(_args) -> int:
    table = Table(["preset", "builds"], title="Cluster presets")
    descriptions = {
        "table1-host": "one CPU + every Table 1 device",
        "compute-centric": "Figure 1a: conventional servers",
        "pooled-rack": "Figure 1b: CXL-switched memory pool",
        "two-socket-numa": "two NUMA sockets (C1 bench)",
        "far-memory-rack": "host + N far-memory nodes (FT benches)",
    }
    for name in presets.available():
        table.add_row(name, descriptions.get(name, ""))
    print(table)
    return 0


def cmd_info(args) -> int:
    cluster = Cluster.preset(args.preset)
    print(f"preset {args.preset!r}: {len(cluster.compute)} compute devices, "
          f"{len(cluster.memory)} memory devices, "
          f"{len(cluster.nodes)} failure domains\n")

    compute = Table(["compute", "kind", "slots", "op classes"],
                    title="Compute pool")
    for device in cluster.compute.values():
        ops = ", ".join(sorted(op.value for op in device.spec.throughput))
        compute.add_row(device.name, device.kind.value, device.slots, ops)
    print(compute)
    print()

    observer = next(iter(cluster.compute))
    from repro.runtime import CostModel

    costmodel = CostModel(cluster)
    memory = Table(
        ["memory", "kind", "capacity", f"RTT from {observer}",
         "bandwidth", "sync", "persistent"],
        title="Memory pool (live Table 1)",
    )
    for device in cluster.memory.values():
        offer = costmodel.offered(observer, device)
        memory.add_row(
            device.name, device.kind.value, format_bytes(device.capacity),
            format_ns(offer.rtt_ns),
            f"{offer.bytes_per_ns:.1f} GB/s",
            "yes" if offer.sync else "no",
            "yes" if device.spec.persistent else "no",
        )
    print(memory)
    return 0


def cmd_topo(args) -> int:
    """Render a preset's fabric as an adjacency table."""
    cluster = Cluster.preset(args.preset)
    table = Table(["endpoint A", "endpoint B", "technology", "bandwidth",
                   "latency"],
                  title=f"Fabric of {args.preset!r}")
    for u, v, data in sorted(cluster.topology.graph.edges(data=True)):
        link = data["link"]
        table.add_row(u, v, data["kind"].value,
                      f"{link.bandwidth:.1f} GB/s", format_ns(link.latency))
    print(table)
    roles = {}
    for node, data in cluster.topology.graph.nodes(data=True):
        roles.setdefault(data["role"], []).append(node)
    for role in ("compute", "memory", "switch"):
        print(f"{role:>8}: {', '.join(sorted(roles.get(role, [])))}")
    return 0


def cmd_demo(args) -> int:
    from repro import (
        ComputeKind, Job, LatencyClass, OpClass, RegionUsage,
        Task, TaskProperties, WorkSpec, connect,
    )

    MiB = 1 << 20
    cluster = Cluster.preset(args.preset, trace_categories={"memory"})
    # No Global State: the demo must run even on Figure 1a architectures,
    # where CPU and GPU share no coherence domain (see Scheduler.state_domain).
    job = Job("demo")
    ingest = job.add_task(Task("ingest", work=WorkSpec(
        ops=2e5, output=RegionUsage(32 * MiB))))
    train = job.add_task(Task(
        "train",
        work=WorkSpec(op_class=OpClass.MATMUL, ops=5e7,
                      input_usage=RegionUsage(0, touches=2.0),
                      scratch=RegionUsage(8 * MiB, touches=4.0),
                      output=RegionUsage(2 * MiB)),
        properties=TaskProperties(compute=ComputeKind.GPU,
                                  mem_latency=LatencyClass.LOW),
    ))
    report = job.add_task(Task("report", work=WorkSpec(
        ops=5e4, input_usage=RegionUsage(0))))
    job.connect(ingest, train)
    job.connect(train, report)

    with connect(cluster=cluster) as session:
        stats = session.run(job)
        leaked = len(session.rts.memory.live_regions())
    print(f"demo job finished in {format_ns(stats.makespan)} (simulated)\n")
    schedule = Table(["task", "device", "duration"], title="Schedule")
    for name, task_stats in stats.tasks.items():
        schedule.add_row(name, task_stats.device, format_ns(task_stats.duration))
    print(schedule)
    print()
    placement = Table(["region", "device"], title="Placements")
    for event in cluster.trace.by_name("allocate"):
        placement.add_row(event.fields["region"], event.fields["device"])
    print(placement)
    print(f"\nhandover: {stats.zero_copy_handover} zero-copy, "
          f"{stats.copy_handover} copies; leaked regions: {leaked}")
    return 0


def cmd_llm(args) -> int:
    from repro import connect
    from repro.apps import LLMEngine, define_pd_pools
    from repro.workloads import llm_request_stream

    # The regime that motivates P/D splits: long mixed prompts (heavy
    # prefill), short interactive outputs, enough admitted concurrency
    # that prefills and decodes actually contend for device slots.
    requests = llm_request_stream(
        64, seed=7,
        prompt_tail_tokens=(64, 512), output_tokens=(4, 16),
        template_blocks=(4, 12), mean_interarrival_ns=400_000.0,
    )

    def serve(disaggregate: bool, prefix_caching: bool):
        with connect(args.preset, seed=7, max_concurrent=32) as session:
            session.register_tenant("chat", weight=2.0,
                                    priority="interactive")
            if disaggregate:
                define_pd_pools(session.cluster)
            engine = LLMEngine(session, disaggregate=disaggregate,
                               prefix_caching=prefix_caching,
                               kv_bytes_per_token=512,
                               ops_per_token=1e8)
            result = engine.serve(requests)
            engine.shutdown()
            return result

    table = Table(
        ["configuration", "completed", "prefix hit rate", "KV moved",
         "decode p95", "e2e p95"],
        title="LLM serving: colocated vs disaggregated + prefix reuse",
    )
    for label, disagg, reuse in (
        ("colocated", False, False),
        ("disaggregated P/D", True, False),
        ("disaggregated + prefix reuse", True, True),
    ):
        result = serve(disagg, reuse)
        table.add_row(
            label, result.completed, f"{result.hit_rate:.0%}",
            format_bytes(result.kv_bytes_moved),
            format_ns(result.percentile(result.decode_ns(), 95)),
            format_ns(result.percentile(result.e2e_ns(), 95)),
        )
        assert not result.leaked, "shared KV regions must drain to 0"
    print(table)
    print("\nall shared prefix regions drained to refcount 0 (no leaks)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Programming model + runtime for fully disaggregated "
                    "systems (HotOS '23 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("presets", help="list cluster presets")
    info = subparsers.add_parser("info", help="describe a cluster preset")
    info.add_argument("preset", choices=presets.available())
    topo = subparsers.add_parser("topo", help="print a preset's fabric")
    topo.add_argument("preset", choices=presets.available())
    demo = subparsers.add_parser("demo", help="run the quickstart pipeline")
    demo.add_argument("preset", nargs="?", default="pooled-rack",
                      choices=presets.available())
    llm = subparsers.add_parser(
        "llm", help="compare colocated vs disaggregated LLM serving")
    llm.add_argument("preset", nargs="?", default="pooled-rack",
                     choices=presets.available())
    args = parser.parse_args(argv)
    handlers = {"presets": cmd_presets, "info": cmd_info,
                "topo": cmd_topo, "demo": cmd_demo, "llm": cmd_llm}
    try:
        return handlers[args.command](args)
    except BrokenPipeError:  # e.g. `python -m repro info ... | head`
        return 0


if __name__ == "__main__":
    sys.exit(main())
