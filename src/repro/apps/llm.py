"""LLM serving on the programming model: disaggregated prefill/decode.

The app class that made memory disaggregation mainstream, mapped onto
the paper's abstractions:

* **prefill** runs the whole prompt through the model once —
  compute-bound MATMUL work — and materializes the request's KV cache
  as its *output region*;
* the KV region's **ownership transfers** to the decode task through
  the runtime's ordinary handover (Figure 4 move semantics): zero-copy
  when both devices address the pool, an explicit fabric copy
  otherwise;
* **decode** generates tokens autoregressively on a *different* compute
  device — memory-bandwidth-bound work that re-reads the KV cache and
  streams the model weights once per generated token;
* common prompt *prefixes* are shareable: their KV blocks become
  refcounted read-only shared regions in a :class:`PrefixTrie`-indexed
  cache (:mod:`repro.apps.llm_exec`), so a hit skips prefill for the
  shared span.

The prefill/decode split is declared with
:data:`~repro.dataflow.properties.TaskProperties` ``device_pool`` roles
(:data:`PREFILL_POOL` / :data:`DECODE_POOL`) — the job never names a
device; :func:`define_pd_pools` teaches a cluster which accelerators
play which role.
"""

from __future__ import annotations

import typing

from repro.dataflow.graph import Job, Task
from repro.dataflow.properties import TaskProperties
from repro.dataflow.workspec import RegionUsage, WorkSpec
from repro.hardware.spec import ComputeKind, OpClass
from repro.memory.interfaces import AccessPattern
from repro.memory.properties import LatencyClass

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hardware.cluster import Cluster

KiB = 1024
MiB = 1024 * KiB

#: Compute-pool roles for the P/D split (see ``Cluster.define_pool``).
PREFILL_POOL = "llm-prefill"
DECODE_POOL = "llm-decode"


def define_pd_pools(
    cluster: "Cluster",
    kind: ComputeKind = ComputeKind.GPU,
) -> typing.Tuple[typing.Tuple[str, ...], typing.Tuple[str, ...]]:
    """Split a cluster's accelerators into prefill and decode pools.

    Devices of ``kind`` are split in name order: the first half serves
    prefill, the second half decode — the minimal faithful rendering of
    production P/D disaggregation (dedicated prefill and decode
    replicas).  Returns ``(prefill_devices, decode_devices)``.  Needs
    at least two devices of ``kind``; with fewer, skip the split and
    run colocated (pool-annotated jobs still schedule: an undefined
    pool does not constrain).
    """
    names = sorted(d.name for d in cluster.compute.values() if d.kind == kind)
    if len(names) < 2:
        raise ValueError(
            f"P/D disaggregation needs >= 2 {kind.value} devices, "
            f"found {names}"
        )
    half = len(names) // 2
    prefill, decode = tuple(names[:half]), tuple(names[half:])
    cluster.define_pool(PREFILL_POOL, prefill)
    cluster.define_pool(DECODE_POOL, decode)
    return prefill, decode


def build_request_job(
    prompt_tokens: int = 256,
    output_tokens: int = 64,
    *,
    cached_prefix_tokens: int = 0,
    kv_bytes_per_token: int = 2 * KiB,
    weight_bytes: int = 4 * MiB,
    ops_per_token: float = 4_000.0,
    disaggregate: bool = True,
    name: str = "llm-request",
) -> Job:
    """One serving request as a two-phase dataflow job.

    ``cached_prefix_tokens`` is the span a prefix-cache hit covers:
    prefill only computes (and only emits KV for) the remaining
    ``prompt_tokens - cached_prefix_tokens`` suffix, while decode still
    reads the *full* KV working set per generated token — the cached
    span's bytes come from the shared prefix regions instead of this
    job's transfer.  With ``disaggregate`` the two phases carry the
    :data:`PREFILL_POOL` / :data:`DECODE_POOL` roles so a cluster with
    defined pools runs them on different accelerators.
    """
    if prompt_tokens < 1 or output_tokens < 1:
        raise ValueError(
            f"need >= 1 prompt and output token, got "
            f"{prompt_tokens}/{output_tokens}"
        )
    if not 0 <= cached_prefix_tokens <= prompt_tokens:
        raise ValueError(
            f"cached prefix ({cached_prefix_tokens}) must be within the "
            f"prompt ({prompt_tokens})"
        )
    # A full hit still recomputes the final token (it seeds decode).
    new_tokens = max(1, prompt_tokens - cached_prefix_tokens)
    suffix_kv = new_tokens * kv_bytes_per_token
    prompt_kv = prompt_tokens * kv_bytes_per_token

    job = Job(name)

    prefill = job.add_task(Task(
        "prefill",
        work=WorkSpec(
            # Compute-bound: every new prompt token runs the full model.
            op_class=OpClass.MATMUL,
            ops=ops_per_token * new_tokens,
            scratch=RegionUsage(weight_bytes, touches=2.0),
            # The KV cache for the uncached suffix: this output region's
            # ownership transfers to decode (the P->D handover).
            output=RegionUsage(suffix_kv),
        ),
        properties=TaskProperties(
            compute=ComputeKind.GPU, mem_latency=LatencyClass.LOW,
            device_pool=PREFILL_POOL if disaggregate else None,
        ),
    ))

    # Decode re-reads the whole KV working set once per generated token;
    # scaling the input touches by prompt/suffix keeps the *total* KV
    # bytes read independent of where the cached span's bytes live.
    kv_touches = float(output_tokens) * prompt_kv / suffix_kv
    decode = job.add_task(Task(
        "decode",
        work=WorkSpec(
            # Bandwidth-bound: light math, heavy streaming.
            op_class=OpClass.VECTOR,
            ops=0.25 * ops_per_token * output_tokens,
            input_usage=RegionUsage(
                0, touches=kv_touches,
                pattern=AccessPattern.RANDOM, access_size=256,
            ),
            # The model weights stream through once per generated token.
            scratch=RegionUsage(
                weight_bytes, touches=float(min(output_tokens, 48)),
            ),
            output=RegionUsage(max(256, 4 * output_tokens)),
        ),
        properties=TaskProperties(
            compute=ComputeKind.GPU, mem_latency=LatencyClass.LOW,
            streaming=True,
            device_pool=DECODE_POOL if disaggregate else None,
        ),
    ))

    job.connect(prefill, decode)
    job.validate()
    return job


class _TrieNode:
    __slots__ = ("children", "cached")

    def __init__(self):
        self.children: typing.Dict[str, "_TrieNode"] = {}
        self.cached = False


class PrefixTrie:
    """Longest-cached-prefix index over block-id paths.

    Each cached node corresponds to one KV block region in the shared
    cache, keyed by its full path (``request.blocks[:depth]``).  Lookup
    walks from the root and stops at the first uncached edge, so a hit
    always covers a *contiguous* leading span — the only span decode
    can skip prefill for.
    """

    def __init__(self):
        self._root = _TrieNode()
        self._cached = 0

    def __len__(self) -> int:
        return self._cached

    def insert(self, path: typing.Sequence[str]) -> None:
        """Mark the block at ``path`` cached (creating intermediates)."""
        if not path:
            raise ValueError("cannot cache the empty path")
        node = self._root
        for part in path:
            node = node.children.setdefault(part, _TrieNode())
        if not node.cached:
            node.cached = True
            self._cached += 1

    def remove(self, path: typing.Sequence[str]) -> None:
        """Un-cache the block at ``path`` (eviction); idempotent."""
        node = self._root
        for part in path:
            node = node.children.get(part)
            if node is None:
                return
        if node.cached:
            node.cached = False
            self._cached -= 1

    def longest_cached(self, blocks: typing.Sequence[str]) -> int:
        """Length of the longest fully-cached leading run of ``blocks``."""
        node, depth = self._root, 0
        for part in blocks:
            node = node.children.get(part)
            if node is None or not node.cached:
                break
            depth += 1
        return depth


__all__ = [
    "DECODE_POOL",
    "PREFILL_POOL",
    "PrefixTrie",
    "build_request_job",
    "define_pd_pools",
]
