"""Continuous stream execution over the runtime.

The paper's motivating application (Figure 2) is a *stream*: CCTV
windows arrive forever, and "jobs and tasks could be either streamed or
processed in batches" (§2.1).  :class:`StreamExecutor` runs a job
template once per arriving window with **pipelining** (window *n+1*
starts while *n* is still in flight, up to ``max_in_flight``) and
**backpressure** (when the pipeline is full, windows either queue —
bounded latency growth — or are dropped — bounded staleness), and
reports the latency distribution a streaming operator cares about.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.dataflow.graph import Job
from repro.runtime.rts import RuntimeSystem
from repro.apps import _session


@dataclasses.dataclass
class WindowRecord:
    index: int
    arrived_at: float
    started_at: float = -1.0
    finished_at: float = -1.0
    dropped: bool = False

    @property
    def latency(self) -> float:
        """End-to-end: arrival to completion."""
        return self.finished_at - self.arrived_at

    @property
    def completed(self) -> bool:
        return self.finished_at >= 0 and not self.dropped


@dataclasses.dataclass
class StreamStats:
    windows: typing.List[WindowRecord] = dataclasses.field(default_factory=list)

    @property
    def completed(self) -> int:
        return sum(1 for w in self.windows if w.completed)

    @property
    def dropped(self) -> int:
        return sum(1 for w in self.windows if w.dropped)

    def latencies(self) -> typing.List[float]:
        """Sorted end-to-end latencies of completed windows."""
        return sorted(w.latency for w in self.windows if w.completed)

    def percentile(self, p: float) -> float:
        """p in [0, 100]; linear interpolation between order statistics."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        values = self.latencies()
        if not values:
            return 0.0
        if len(values) == 1:
            return values[0]
        rank = (p / 100.0) * (len(values) - 1)
        low = int(rank)
        high = min(low + 1, len(values) - 1)
        fraction = rank - low
        return values[low] * (1 - fraction) + values[high] * fraction

    def throughput_per_s(self, horizon_ns: float) -> float:
        """Completed windows per second of simulated horizon."""
        if horizon_ns <= 0:
            return 0.0
        return self.completed / (horizon_ns / 1e9)


class StreamExecutor:
    """Pipelined window-at-a-time execution of a job template."""

    #: How often a queued-behind-admission window checks for its slot.
    ADMISSION_POLL_NS = 2_000.0

    def __init__(
        self,
        session=None,
        template: typing.Optional[typing.Callable[[int], Job]] = None,
        max_in_flight: int = 2,
        backpressure: str = "queue",
        rts: typing.Optional[RuntimeSystem] = None,
    ):
        if template is None:
            raise TypeError("StreamExecutor needs a template callable")
        if max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        if backpressure not in ("queue", "drop"):
            raise ValueError(f"unknown backpressure policy {backpressure!r}")
        self.session, self.rts = _session.resolve(
            "StreamExecutor", session, rts,
        )
        self.template = template
        self.max_in_flight = max_in_flight
        self.backpressure = backpressure
        self.stats = StreamStats()
        self._in_flight = 0
        self._queue: typing.List[WindowRecord] = []

    # -- dispatch ---------------------------------------------------------

    def _launch(self, record: WindowRecord) -> None:
        engine = self.rts.cluster.engine
        record.started_at = engine.now
        self._in_flight += 1
        if self.session is not None:
            admitted = self.session.submit(self.template(record.index))
            self._track(record, admitted)
            return
        execution = self.rts._submit(self.template(record.index))
        execution.done.add_callback(
            lambda event, rec=record: self._on_done(rec, event)
        )

    def _track(self, record: WindowRecord, admitted) -> None:
        """Finish the window's bookkeeping once admission runs its job.

        Admission pumps synchronously, so the common case attaches the
        done-callback immediately; a window queued behind a quota or the
        concurrency gate is watched by a cheap polling process instead.
        """
        engine = self.rts.cluster.engine
        if admitted.shed:
            self._settle(record, ok=False)
            return
        if admitted.execution is not None:
            admitted.execution.done.add_callback(
                lambda event, rec=record: self._on_done(rec, event)
            )
            return

        def watcher():
            while admitted.execution is None and not admitted.shed:
                yield engine.timeout(self.ADMISSION_POLL_NS)
            if admitted.shed:
                self._settle(record, ok=False)
            else:
                admitted.execution.done.add_callback(
                    lambda event, rec=record: self._on_done(rec, event)
                )

        engine.process(watcher(), name=f"stream-admit-{record.index}")

    def _settle(self, record: WindowRecord, ok: bool) -> None:
        self._in_flight -= 1
        if ok:
            record.finished_at = self.rts.cluster.engine.now
        else:
            record.dropped = True
        while self._queue and self._in_flight < self.max_in_flight:
            self._launch(self._queue.pop(0))

    def _on_done(self, record: WindowRecord, event) -> None:
        if not event._ok:
            event.defuse()
        self._settle(record, ok=event._ok)

    def _on_arrival(self, record: WindowRecord) -> None:
        self.stats.windows.append(record)
        if self._in_flight < self.max_in_flight:
            self._launch(record)
        elif self.backpressure == "queue":
            self._queue.append(record)
        else:
            record.dropped = True

    # -- run ------------------------------------------------------------

    def run(self, n_windows: int, interval_ns: float) -> StreamStats:
        """Process ``n_windows`` arriving every ``interval_ns``."""
        if n_windows < 1 or interval_ns <= 0:
            raise ValueError("need n_windows >= 1 and a positive interval")
        engine = self.rts.cluster.engine

        def source():
            for index in range(n_windows):
                self._on_arrival(WindowRecord(index, arrived_at=engine.now))
                if index + 1 < n_windows:
                    yield engine.timeout(interval_ns)

        engine.process(source(), name="stream-source")
        engine.run()
        return self.stats
