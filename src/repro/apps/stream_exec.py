"""Continuous stream execution over the runtime.

The paper's motivating application (Figure 2) is a *stream*: CCTV
windows arrive forever, and "jobs and tasks could be either streamed or
processed in batches" (§2.1).  :class:`StreamExecutor` runs a job
template once per arriving window with **pipelining** (window *n+1*
starts while *n* is still in flight, up to ``max_in_flight``) and
**backpressure** (when the pipeline is full, windows either queue —
bounded latency growth — or are dropped — bounded staleness), and
reports the latency distribution a streaming operator cares about.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.dataflow.graph import Job
from repro.runtime.rts import RuntimeSystem


@dataclasses.dataclass
class WindowRecord:
    index: int
    arrived_at: float
    started_at: float = -1.0
    finished_at: float = -1.0
    dropped: bool = False

    @property
    def latency(self) -> float:
        """End-to-end: arrival to completion."""
        return self.finished_at - self.arrived_at

    @property
    def completed(self) -> bool:
        return self.finished_at >= 0 and not self.dropped


@dataclasses.dataclass
class StreamStats:
    windows: typing.List[WindowRecord] = dataclasses.field(default_factory=list)

    @property
    def completed(self) -> int:
        return sum(1 for w in self.windows if w.completed)

    @property
    def dropped(self) -> int:
        return sum(1 for w in self.windows if w.dropped)

    def latencies(self) -> typing.List[float]:
        """Sorted end-to-end latencies of completed windows."""
        return sorted(w.latency for w in self.windows if w.completed)

    def percentile(self, p: float) -> float:
        """p in [0, 100]; linear interpolation between order statistics."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        values = self.latencies()
        if not values:
            return 0.0
        if len(values) == 1:
            return values[0]
        rank = (p / 100.0) * (len(values) - 1)
        low = int(rank)
        high = min(low + 1, len(values) - 1)
        fraction = rank - low
        return values[low] * (1 - fraction) + values[high] * fraction

    def throughput_per_s(self, horizon_ns: float) -> float:
        """Completed windows per second of simulated horizon."""
        if horizon_ns <= 0:
            return 0.0
        return self.completed / (horizon_ns / 1e9)


class StreamExecutor:
    """Pipelined window-at-a-time execution of a job template."""

    def __init__(
        self,
        rts: RuntimeSystem,
        template: typing.Callable[[int], Job],
        max_in_flight: int = 2,
        backpressure: str = "queue",
    ):
        if max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        if backpressure not in ("queue", "drop"):
            raise ValueError(f"unknown backpressure policy {backpressure!r}")
        self.rts = rts
        self.template = template
        self.max_in_flight = max_in_flight
        self.backpressure = backpressure
        self.stats = StreamStats()
        self._in_flight = 0
        self._queue: typing.List[WindowRecord] = []

    # -- dispatch ---------------------------------------------------------

    def _launch(self, record: WindowRecord) -> None:
        engine = self.rts.cluster.engine
        record.started_at = engine.now
        self._in_flight += 1
        execution = self.rts._submit(self.template(record.index))
        execution.done.add_callback(
            lambda event, rec=record: self._on_done(rec, event)
        )

    def _on_done(self, record: WindowRecord, event) -> None:
        self._in_flight -= 1
        if event._ok:
            record.finished_at = self.rts.cluster.engine.now
        else:
            event.defuse()
            record.dropped = True
        while self._queue and self._in_flight < self.max_in_flight:
            self._launch(self._queue.pop(0))

    def _on_arrival(self, record: WindowRecord) -> None:
        self.stats.windows.append(record)
        if self._in_flight < self.max_in_flight:
            self._launch(record)
        elif self.backpressure == "queue":
            self._queue.append(record)
        else:
            record.dropped = True

    # -- run ------------------------------------------------------------

    def run(self, n_windows: int, interval_ns: float) -> StreamStats:
        """Process ``n_windows`` arriving every ``interval_ns``."""
        if n_windows < 1 or interval_ns <= 0:
            raise ValueError("need n_windows >= 1 and a positive interval")
        engine = self.rts.cluster.engine

        def source():
            for index in range(n_windows):
                self._on_arrival(WindowRecord(index, arrived_at=engine.now))
                if index + 1 < n_windows:
                    yield engine.timeout(interval_ns)

        engine.process(source(), name="stream-source")
        engine.run()
        return self.stats
