"""Session plumbing shared by the physical app executors.

The ``*_exec`` drivers (``LinearTrainer``, ``JacobiSolver``,
``PhysicalQueryEngine``, ``StreamExecutor``, ``LLMEngine``) historically
took a bare :class:`~repro.runtime.rts.RuntimeSystem` and called its
private submission path directly — bypassing admission, tenancy, and
QoS.  They now take a :class:`repro.api.Session` (the facade's front
door) and submit through it; the bare-``RuntimeSystem`` spelling keeps
working behind the once-per-process :class:`DeprecationWarning` shim
pattern of :mod:`repro._compat`.
"""

from __future__ import annotations

import typing

from repro import _compat

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dataflow.graph import Job
    from repro.runtime.rts import JobStats


def resolve(driver_name: str, session, rts=None):
    """Normalize an executor's first argument to ``(session, rts)``.

    Accepts a :class:`repro.api.Session` (preferred), or a
    :class:`~repro.runtime.rts.RuntimeSystem` — positionally or via the
    legacy ``rts=`` keyword — which warns once per process and leaves
    the session slot ``None`` (jobs then bypass admission, the
    deprecated behaviour).
    """
    from repro.api import Session
    from repro.runtime.rts import RuntimeSystem

    if session is not None and rts is not None:
        raise TypeError(
            f"{driver_name}: pass either a Session or rts=, not both"
        )
    candidate = session if session is not None else rts
    if isinstance(candidate, Session):
        return candidate, candidate.rts
    if isinstance(candidate, RuntimeSystem):
        _compat.warn_once(
            f"apps.{driver_name}.rts",
            f"repro.apps.{driver_name}(RuntimeSystem) is deprecated; "
            f"construct it with a repro.api.connect(...) Session so its "
            f"jobs enter through admission/tenancy",
            stacklevel=4,
        )
        return None, candidate
    raise TypeError(
        f"{driver_name} needs a repro.api Session (from connect(...)); "
        f"got {type(candidate).__name__}"
    )


def run_job(
    session, rts, job: "Job",
    *,
    tenant: typing.Optional[str] = None,
    priority=None,
) -> "JobStats":
    """Submit one job and drive the clock to its completion.

    Session-bound executors go through QoS admission (weighted-fair
    queueing, quotas, preemption all apply); legacy ``rts``-bound ones
    keep the old direct path.  Raises the job's error on failure.
    """
    if session is not None:
        handle = session.submit(job, tenant=tenant, priority=priority)
        rts.cluster.engine.run()
        if handle.shed:
            raise RuntimeError(f"job {job.name!r} was shed by admission")
        execution = handle.execution
        if execution is None:
            raise RuntimeError(
                f"job {job.name!r} was never admitted (queued behind a "
                f"quota?); check session.stats"
            )
        if execution.stats.error is not None:
            raise execution.stats.error
        return execution.stats
    execution = rts._submit(job)
    return rts.cluster.engine.run(until=execution.done)
