"""Region-usage census: which region types did a run actually allocate?

Parses the trace emitted by the memory manager, so the Table 2/3
benches can verify that each application class exercises the region mix
the paper's tables describe.
"""

from __future__ import annotations

import typing

from repro.memory.regions import RegionType, lookup_region_type
from repro.sim.trace import TraceLog


def region_census(trace: TraceLog) -> typing.Dict[object, int]:
    """Count allocations per region type in a trace.

    Keys are :class:`RegionType` members for the predefined regions and
    :class:`~repro.memory.regions.CustomRegionType` objects for
    user-named ones.
    """
    census: typing.Dict[object, int] = {}
    for event in trace.by_name("allocate"):
        rtype = event.fields.get("rtype")
        if not rtype:
            continue
        try:
            region_type: object = lookup_region_type(str(rtype))
        except KeyError:
            region_type = str(rtype)
        census[region_type] = census.get(region_type, 0) + 1
    return census
