"""Region-usage census: which region types did a run actually allocate?

Parses the trace emitted by the memory manager, so the Table 2/3
benches can verify that each application class exercises the region mix
the paper's tables describe.
"""

from __future__ import annotations

import typing

from repro.dataflow.graph import Job, Task
from repro.dataflow.properties import TaskProperties
from repro.dataflow.workspec import RegionUsage, WorkSpec
from repro.hardware.spec import ComputeKind, OpClass
from repro.memory.interfaces import AccessPattern
from repro.memory.regions import RegionType, lookup_region_type
from repro.sim.trace import TraceLog

KiB = 1024


def region_census(trace: TraceLog) -> typing.Dict[object, int]:
    """Count allocations per region type in a trace.

    Keys are :class:`RegionType` members for the predefined regions and
    :class:`~repro.memory.regions.CustomRegionType` objects for
    user-named ones.
    """
    census: typing.Dict[object, int] = {}
    for event in trace.by_name("allocate"):
        rtype = event.fields.get("rtype")
        if not rtype:
            continue
        try:
            region_type: object = lookup_region_type(str(rtype))
        except KeyError:
            region_type = str(rtype)
        census[region_type] = census.get(region_type, 0) + 1
    return census


def build_probe_job(
    payload_bytes: int = 256 * KiB,
    *,
    name: str = "region-probe",
) -> Job:
    """A three-task job that touches every Table 2 region type.

    ``source -> worker -> sink``: the source emits an Output/Input edge,
    the worker keeps Private Scratch, checkpoints into Global State,
    and publishes a Global Scratch slot the sink consumes.  Running it
    and taking a :func:`region_census` of the trace is the smoke test
    that a stack allocates the full region vocabulary.
    """
    if payload_bytes < 64:
        raise ValueError(f"payload must be >= 64 bytes, got {payload_bytes}")
    job = Job(name, global_state_size=64 * KiB)

    source = job.add_task(Task(
        "source",
        work=WorkSpec(
            op_class=OpClass.SCALAR, ops=float(payload_bytes) / 64,
            output=RegionUsage(payload_bytes),
        ),
        properties=TaskProperties(compute=ComputeKind.CPU),
    ))
    worker = job.add_task(Task(
        "worker",
        work=WorkSpec(
            op_class=OpClass.VECTOR, ops=float(payload_bytes) / 16,
            input_usage=RegionUsage(0),
            scratch=RegionUsage(payload_bytes, touches=2.0),
            state_usage=RegionUsage(4 * KiB, pattern=AccessPattern.RANDOM),
            scratch_puts={"probe-cache": RegionUsage(payload_bytes)},
            output=RegionUsage(4 * KiB),
        ),
        properties=TaskProperties(compute=ComputeKind.CPU),
    ))
    sink = job.add_task(Task(
        "sink",
        work=WorkSpec(
            op_class=OpClass.SCALAR, ops=float(payload_bytes) / 64,
            input_usage=RegionUsage(0),
            scratch_gets=("probe-cache",),
            output=RegionUsage(4 * KiB),
        ),
        properties=TaskProperties(compute=ComputeKind.CPU),
    ))
    job.connect(source, worker)
    job.connect(worker, sink)
    job.validate()
    return job
