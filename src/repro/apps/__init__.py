"""Application-class mappings onto the programming model (paper §2.4).

Table 3 maps four application classes onto the predefined Memory
Regions; this package implements a miniature but runnable instance of
each:

* :mod:`repro.apps.dbms` — a relational query pipeline (operator state
  in Private Scratch, latches in Global State, a reusable hash index in
  Global Scratch) plus a small numpy-backed executor used by examples;
* :mod:`repro.apps.ml` — a Cachew-style input pipeline + training loop
  (transformed-data cache in Global Scratch, worker state in Global
  State, training state in Private Scratch);
* :mod:`repro.apps.hpc` — an iterative stencil job (node-local working
  memory, job metadata in Global State, results to Global Scratch);
* :mod:`repro.apps.streaming` — the hospital CCTV job of Figure 2 with
  the exact property cards of Figure 2c.
"""

from repro.apps.streaming import build_hospital_job
from repro.apps.dbms import MiniDB, build_query_job
from repro.apps.dbms_exec import (
    Filter,
    GroupCount,
    HashJoin,
    PhysicalQueryEngine,
    Scan,
)
from repro.apps.ml import build_training_job
from repro.apps.hpc import build_stencil_job
from repro.apps.census import region_census
from repro.apps.stream_exec import StreamExecutor, StreamStats, WindowRecord
from repro.apps.ml_exec import LinearTrainer, TrainingResult, make_regression_data
from repro.apps.hpc_exec import JacobiSolver, SolveResult, make_heat_problem

__all__ = [
    "Filter",
    "GroupCount",
    "HashJoin",
    "JacobiSolver",
    "LinearTrainer",
    "MiniDB",
    "PhysicalQueryEngine",
    "Scan",
    "SolveResult",
    "StreamExecutor",
    "StreamStats",
    "TrainingResult",
    "WindowRecord",
    "build_hospital_job",
    "build_query_job",
    "build_stencil_job",
    "build_training_job",
    "make_heat_problem",
    "make_regression_data",
    "region_census",
]
