"""Application-class mappings onto the programming model (paper §2.4).

Table 3 maps four application classes onto the predefined Memory
Regions; this package implements a miniature but runnable instance of
each:

* :mod:`repro.apps.dbms` — a relational query pipeline (operator state
  in Private Scratch, latches in Global State, a reusable hash index in
  Global Scratch) plus a small numpy-backed executor used by examples;
* :mod:`repro.apps.ml` — a Cachew-style input pipeline + training loop
  (transformed-data cache in Global Scratch, worker state in Global
  State, training state in Private Scratch);
* :mod:`repro.apps.hpc` — an iterative stencil job (node-local working
  memory, job metadata in Global State, results to Global Scratch);
* :mod:`repro.apps.streaming` — the hospital CCTV job of Figure 2 with
  the exact property cards of Figure 2c;
* :mod:`repro.apps.llm` — LLM serving with disaggregated
  prefill/decode, KV-cache ownership transfer, and refcounted shared
  prefix regions (the executor lives in :mod:`repro.apps.llm_exec`);
* :mod:`repro.apps.census` — the region-usage census plus a probe job
  touching every Table 2 region type.

Every class is also launchable by name through the facade:
``Session.submit_app("llm", spec)`` resolves the builder via
:data:`APP_BUILDERS` / :func:`build_app_job`, so all six enter through
admission/tenancy uniformly.
"""

import typing

from repro.apps.streaming import build_hospital_job
from repro.apps.dbms import MiniDB, build_query_job
from repro.apps.dbms_exec import (
    Filter,
    GroupCount,
    HashJoin,
    PhysicalQueryEngine,
    Scan,
)
from repro.apps.ml import build_training_job
from repro.apps.hpc import build_stencil_job
from repro.apps.census import build_probe_job, region_census
from repro.apps.stream_exec import StreamExecutor, StreamStats, WindowRecord
from repro.apps.ml_exec import LinearTrainer, TrainingResult, make_regression_data
from repro.apps.hpc_exec import JacobiSolver, SolveResult, make_heat_problem
from repro.apps.llm import (
    DECODE_POOL,
    PREFILL_POOL,
    PrefixTrie,
    build_request_job,
    define_pd_pools,
)
from repro.apps.llm_exec import LLMEngine, RequestRecord, ServeResult

#: The typed app-submission registry: app-class name -> job builder.
#: Every builder takes only keyword-friendly scalars (the "spec") and
#: returns a validated :class:`~repro.dataflow.graph.Job`.
APP_BUILDERS: typing.Dict[str, typing.Callable] = {
    "census": build_probe_job,
    "dbms": build_query_job,
    "hpc": build_stencil_job,
    "llm": build_request_job,
    "ml": build_training_job,
    "streaming": build_hospital_job,
}


def build_app_job(app: str, **spec):
    """Build one app-class job by name (``Session.submit_app``'s core).

    ``spec`` forwards to the class's builder (see :data:`APP_BUILDERS`);
    an unknown app name raises ``ValueError`` listing the valid ones.
    """
    builder = APP_BUILDERS.get(app)
    if builder is None:
        raise ValueError(
            f"unknown app class {app!r}; valid classes: "
            f"{', '.join(sorted(APP_BUILDERS))}"
        )
    return builder(**spec)


__all__ = [
    "APP_BUILDERS",
    "DECODE_POOL",
    "Filter",
    "GroupCount",
    "HashJoin",
    "JacobiSolver",
    "LLMEngine",
    "LinearTrainer",
    "MiniDB",
    "PREFILL_POOL",
    "PhysicalQueryEngine",
    "PrefixTrie",
    "RequestRecord",
    "Scan",
    "ServeResult",
    "SolveResult",
    "StreamExecutor",
    "StreamStats",
    "TrainingResult",
    "WindowRecord",
    "build_app_job",
    "build_hospital_job",
    "build_probe_job",
    "build_query_job",
    "build_request_job",
    "build_stencil_job",
    "build_training_job",
    "define_pd_pools",
    "make_heat_problem",
    "make_regression_data",
    "region_census",
]
