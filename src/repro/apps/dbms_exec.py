"""A physical query engine on top of the runtime.

This is the 'database systems map nicely onto dataflow systems' claim
(§2.4) made executable end to end: a small relational algebra
(:class:`Scan`/:class:`Filter`/:class:`HashJoin`/:class:`GroupCount`)
is compiled into a dataflow job whose tasks

* **really execute** the operators on numpy tables (results are
  byte-exact against :class:`~repro.apps.dbms.MiniDB`), and
* **charge the simulator** for what they touch: inputs are read through
  the region interfaces at their true sizes, hash tables live in
  Private Scratch and are probed randomly, outputs are written at their
  true result sizes.

So the same query yields both an answer and a performance profile that
responds to placement, contention, and data volume.
"""

from __future__ import annotations

import dataclasses
import typing

import numpy as np

from repro.apps.dbms import MiniDB
from repro.dataflow.graph import Job, Task
from repro.dataflow.properties import TaskProperties
from repro.dataflow.workspec import RegionUsage, WorkSpec
from repro.hardware.spec import ComputeKind, OpClass
from repro.memory.interfaces import AccessPattern
from repro.memory.properties import LatencyClass
from repro.runtime.rts import JobStats, RuntimeSystem
from repro.apps import _session

KiB = 1024


# -- plan algebra -------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class Scan:
    table: str


@dataclasses.dataclass(frozen=True)
class Filter:
    child: "PlanNode"
    column: str
    op: str
    value: int


@dataclasses.dataclass(frozen=True)
class HashJoin:
    left: "PlanNode"
    right: "PlanNode"
    on: str


@dataclasses.dataclass(frozen=True)
class GroupCount:
    child: "PlanNode"
    column: str


PlanNode = typing.Union[Scan, Filter, HashJoin, GroupCount]


def _children(node: PlanNode) -> typing.Tuple[PlanNode, ...]:
    if isinstance(node, Scan):
        return ()
    if isinstance(node, Filter):
        return (node.child,)
    if isinstance(node, HashJoin):
        return (node.left, node.right)
    if isinstance(node, GroupCount):
        return (node.child,)
    raise TypeError(f"unknown plan node {node!r}")


def _label(node: PlanNode) -> str:
    if isinstance(node, Scan):
        return f"scan[{node.table}]"
    if isinstance(node, Filter):
        return f"filter[{node.column}{node.op}{node.value}]"
    if isinstance(node, HashJoin):
        return f"join[{node.on}]"
    if isinstance(node, GroupCount):
        return f"group[{node.column}]"
    raise TypeError(f"unknown plan node {node!r}")


def _nbytes(value) -> int:
    if isinstance(value, np.ndarray):
        return max(64, value.nbytes)
    if isinstance(value, list):
        return max(64, 16 * len(value))
    if isinstance(value, dict):
        return max(64, 16 * len(value))
    return 64


# -- the engine --------------------------------------------------------------


class PhysicalQueryEngine:
    """Compiles plans to jobs and runs them on a RuntimeSystem."""

    def __init__(self, session=None, rts: typing.Optional[RuntimeSystem] = None):
        self.session, self.rts = _session.resolve(
            "PhysicalQueryEngine", session, rts,
        )
        self.db = MiniDB()
        self._query_counter = 0

    def register_table(self, name: str, table: np.ndarray) -> None:
        """Make a table scannable by compiled plans."""
        self.db.create_table(name, table)

    # -- compilation ---------------------------------------------------------

    def compile(self, plan: PlanNode) -> typing.Tuple[Job, dict]:
        """Build the dataflow job for ``plan``.

        Returns ``(job, results)`` where ``results`` will hold each
        operator's real output after the run (keyed by task name; the
        root is also under ``"__root__"``).
        """
        self._query_counter += 1
        job = Job(f"query-{self._query_counter}")
        results: typing.Dict[str, object] = {}
        counter = {"n": 0}

        def build(node: PlanNode) -> Task:
            counter["n"] += 1
            name = f"op{counter['n']}:{_label(node)}"
            child_tasks = [build(child) for child in _children(node)]
            task = job.add_task(self._make_task(node, name, results))
            for child in child_tasks:
                job.connect(child, task)
            return task

        root = build(plan)
        results["__root_task__"] = root.name
        job.validate()
        return job, results

    def execute(self, plan: PlanNode) -> typing.Tuple[object, JobStats]:
        """Compile, run, and return (real result, simulated stats)."""
        job, results = self.compile(plan)
        stats = _session.run_job(self.session, self.rts, job)
        return results["__root__"], stats

    # -- operator tasks ------------------------------------------------------

    def _make_task(
        self, node: PlanNode, name: str, results: typing.Dict[str, object]
    ) -> Task:
        engine = self
        child_names = []  # filled by closure via upstream() at run time

        def record(ctx, value):
            results[ctx.task.name] = value
            if ctx.task.name == results.get("__root_task__"):
                results["__root__"] = value

        def input_values(ctx):
            return [results[u.name] for u in ctx.task.upstream()]

        if isinstance(node, Scan):
            table = self.db.scan(node.table)

            def scan_fn(ctx):
                # Streaming the base table off its home into the output.
                yield from ctx.compute_ops(0.5 * len(table))
                out = ctx.output(size=_nbytes(table))
                yield from ctx.write(out)
                record(ctx, table)

            work = WorkSpec(
                op_class=OpClass.SCALAR, ops=0.5 * max(1, len(table)),
                output=RegionUsage(_nbytes(table)),
            )
            return Task(name, work=work, fn=scan_fn,
                        properties=TaskProperties(compute=ComputeKind.CPU))

        if isinstance(node, Filter):
            def filter_fn(ctx):
                (child_value,) = input_values(ctx)
                yield from ctx.read(ctx.input())
                yield from ctx.compute_ops(1.0 * max(1, len(child_value)))
                result = engine.db.filter(
                    child_value, node.column, node.op, node.value
                )
                out = ctx.output(size=_nbytes(result))
                yield from ctx.write(out)
                record(ctx, result)

            work = WorkSpec(
                op_class=OpClass.VECTOR, ops=1.0,
                input_usage=RegionUsage(0),
                output=RegionUsage(64),
            )
            return Task(name, work=work, fn=filter_fn,
                        properties=TaskProperties(compute=ComputeKind.CPU,
                                                  mem_latency=LatencyClass.LOW))

        if isinstance(node, HashJoin):
            def join_fn(ctx):
                left_value, right_value = input_values(ctx)
                for handle in ctx.inputs:
                    yield from ctx.read(handle)
                build_side = min(left_value, right_value, key=len)
                probe_side = max(right_value, left_value, key=len)
                # The hash table is operator state in Private Scratch,
                # built and probed with random accesses (Table 3).
                scratch = ctx.private_scratch(
                    size=max(64 * KiB, _nbytes(build_side) * 2)
                )
                yield from ctx.write(
                    scratch, nbytes=_nbytes(build_side),
                    pattern=AccessPattern.RANDOM, access_size=64,
                )
                yield from ctx.read(
                    scratch, nbytes=min(scratch.region.size,
                                        max(64, 64 * len(probe_side))),
                    pattern=AccessPattern.RANDOM, access_size=64,
                )
                yield from ctx.compute_ops(
                    3.0 * max(1, len(left_value) + len(right_value))
                )
                result = engine.db.hash_join(left_value, right_value, node.on)
                out = ctx.output(size=_nbytes(result))
                yield from ctx.write(out)
                record(ctx, result)

            work = WorkSpec(
                op_class=OpClass.SCALAR, ops=3.0,
                input_usage=RegionUsage(0),
                scratch=RegionUsage(64 * KiB, pattern=AccessPattern.RANDOM),
                output=RegionUsage(64),
            )
            return Task(name, work=work, fn=join_fn,
                        properties=TaskProperties(compute=ComputeKind.CPU,
                                                  mem_latency=LatencyClass.LOW))

        if isinstance(node, GroupCount):
            def group_fn(ctx):
                (child_value,) = input_values(ctx)
                yield from ctx.read(ctx.input())
                scratch = ctx.private_scratch(
                    size=max(64 * KiB, 64 * len(set(child_value[node.column])))
                )
                yield from ctx.write(
                    scratch, nbytes=min(scratch.region.size,
                                        max(64, 64 * len(child_value))),
                    pattern=AccessPattern.RANDOM, access_size=64,
                )
                yield from ctx.compute_ops(2.0 * max(1, len(child_value)))
                result = engine.db.group_count(child_value, node.column)
                out = ctx.output(size=_nbytes(result))
                yield from ctx.write(out)
                record(ctx, result)

            work = WorkSpec(
                op_class=OpClass.SCALAR, ops=2.0,
                input_usage=RegionUsage(0),
                scratch=RegionUsage(64 * KiB, pattern=AccessPattern.RANDOM),
                output=RegionUsage(64),
            )
            return Task(name, work=work, fn=group_fn,
                        properties=TaskProperties(compute=ComputeKind.CPU,
                                                  mem_latency=LatencyClass.LOW))

        raise TypeError(f"unknown plan node {node!r}")
