"""A physical LLM serving engine on top of the runtime.

The executor behind :mod:`repro.apps.llm` (the app class that made
memory disaggregation mainstream): a stream of
:class:`~repro.workloads.llm.LLMRequest` arrivals is served as
two-phase prefill/decode jobs whose KV caches are real, owned memory
regions —

* each request's suffix KV cache is the prefill task's *output region*;
  its **ownership transfers** to the decode task through the runtime's
  ordinary handover (zero-copy when both pool devices address it, an
  explicit fabric copy otherwise);
* common prompt prefixes live as **refcounted read-only shared
  regions** (:class:`~repro.memory.sharing.SharedRegionCache`) indexed
  by a :class:`~repro.apps.llm.PrefixTrie` — a hit pins the shared
  blocks for the request's lifetime and skips prefill for the covered
  span;
* requests enter through QoS **admission** (tenants, weighted-fair
  queueing, SLOs) like every other app class, in open-loop (trace
  timestamps) or closed-loop (fixed concurrency) mode.

Telemetry lands in the session's hub: ``llm.prefix_hit_blocks`` /
``llm.prefix_miss_blocks`` (rates), ``llm.kv_bytes_moved`` (the P->D
transfer volume), ``llm.ttft_ns`` and ``llm.transfer_stall_ns``
(distributions), and ``llm.prefix_pinned_bytes`` (level).  The
end-of-run leak audit is :meth:`LLMEngine.audit` — a leak-free run
drains every shared region to refcount 0.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.apps import _session
from repro.apps.llm import DECODE_POOL, PrefixTrie, build_request_job
from repro.memory.manager import PlacementError
from repro.memory.regions import RegionType, region_properties
from repro.memory.sharing import SharedRegionCache, SharedRegionError
from repro.runtime.placement import PlacementRequest
from repro.runtime.rts import RuntimeSystem
from repro.workloads.llm import LLMRequest

KiB = 1024
MiB = 1024 * KiB


@dataclasses.dataclass
class RequestRecord:
    """One served request: what it hit, moved, and waited for."""

    request: LLMRequest
    arrived_at: float
    #: Leading prompt blocks covered by the prefix cache at admission.
    hit_blocks: int = 0
    cached_tokens: int = 0
    finished_at: typing.Optional[float] = None
    shed: bool = False
    failed: bool = False
    #: Bytes the P->D ownership handover physically copied.
    kv_bytes_moved: float = 0.0
    #: Arrival -> prefill completion (time to first token).
    ttft_ns: typing.Optional[float] = None
    #: Prefill completion -> decode ready: the transfer stall.
    transfer_stall_ns: typing.Optional[float] = None
    #: Decode ready -> decode finished: the *interactive* phase — what
    #: a user waiting on streamed tokens experiences after the prompt
    #: is in.  Includes decode-device queueing, so colocated prefill
    #: interference lands here.
    decode_ns: typing.Optional[float] = None

    @property
    def completed(self) -> bool:
        """Whether the request finished decoding successfully."""
        return self.finished_at is not None and not (self.shed or self.failed)

    @property
    def e2e_ns(self) -> typing.Optional[float]:
        """Arrival -> last token latency; None unless completed."""
        if not self.completed:
            return None
        return self.finished_at - self.arrived_at


def _percentile(values: typing.List[float], p: float) -> float:
    """p in [0, 100] over a sorted list; linear interpolation."""
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    if not values:
        return 0.0
    if len(values) == 1:
        return values[0]
    rank = (p / 100.0) * (len(values) - 1)
    low = int(rank)
    high = min(low + 1, len(values) - 1)
    fraction = rank - low
    return values[low] * (1 - fraction) + values[high] * fraction


@dataclasses.dataclass
class ServeResult:
    """A serving run: per-request records plus cache/leak accounting."""

    records: typing.List[RequestRecord]
    horizon_ns: float
    prefix_hit_blocks: int
    prefix_miss_blocks: int
    evictions: int
    deferred_evictions: int
    #: key -> live refcount for every still-pinned shared region; an
    #: empty dict is the zero-leak certificate.
    leaked: typing.Dict[typing.Hashable, int]

    @property
    def completed(self) -> int:
        return sum(1 for r in self.records if r.completed)

    @property
    def shed(self) -> int:
        return sum(1 for r in self.records if r.shed)

    @property
    def hit_rate(self) -> float:
        """Fraction of prompt blocks served from the prefix cache."""
        total = self.prefix_hit_blocks + self.prefix_miss_blocks
        return self.prefix_hit_blocks / total if total else 0.0

    @property
    def kv_bytes_moved(self) -> float:
        """Total bytes the P->D handovers physically copied."""
        return sum(r.kv_bytes_moved for r in self.records)

    def throughput_per_s(self, horizon_ns: typing.Optional[float] = None) -> float:
        """Completed requests per second of simulated horizon."""
        horizon = self.horizon_ns if horizon_ns is None else horizon_ns
        if horizon <= 0:
            return 0.0
        return self.completed / (horizon / 1e9)

    def e2e_ns(self) -> typing.List[float]:
        """Sorted arrival -> last-token latencies of completed requests."""
        return sorted(r.e2e_ns for r in self.records if r.completed)

    def ttft_ns(self) -> typing.List[float]:
        """Sorted time-to-first-token latencies."""
        return sorted(
            r.ttft_ns for r in self.records
            if r.completed and r.ttft_ns is not None
        )

    def stall_ns(self) -> typing.List[float]:
        """Sorted P->D transfer stalls."""
        return sorted(
            r.transfer_stall_ns for r in self.records
            if r.completed and r.transfer_stall_ns is not None
        )

    def decode_ns(self) -> typing.List[float]:
        """Sorted interactive decode latencies (ready -> last token)."""
        return sorted(
            r.decode_ns for r in self.records
            if r.completed and r.decode_ns is not None
        )

    def percentile(self, values: typing.List[float], p: float) -> float:
        """p-th percentile of a sorted latency list from this result."""
        return _percentile(values, p)

    def tenant_records(self, tenant: str) -> typing.List[RequestRecord]:
        """The records submitted by one tenant."""
        return [r for r in self.records if r.request.tenant == tenant]


class LLMEngine:
    """Disaggregated prefill/decode serving with KV prefix reuse."""

    #: Ownership token under which the engine holds cached KV blocks.
    CACHE_OWNER = "llm-prefix-cache"
    #: How often in-flight requests check for completion (sim ns).
    POLL_NS = 2_000.0

    def __init__(
        self,
        session=None,
        *,
        disaggregate: bool = True,
        prefix_caching: bool = True,
        prefix_capacity_blocks: typing.Optional[int] = 512,
        kv_bytes_per_token: int = 2 * KiB,
        weight_bytes: int = 4 * MiB,
        ops_per_token: float = 4_000.0,
        rts: typing.Optional[RuntimeSystem] = None,
    ):
        if kv_bytes_per_token < 1 or weight_bytes < 1 or ops_per_token <= 0:
            raise ValueError("invalid model-cost parameters")
        if prefix_capacity_blocks is not None and prefix_capacity_blocks < 1:
            raise ValueError("prefix_capacity_blocks must be >= 1 or None")
        self.session, self.rts = _session.resolve("LLMEngine", session, rts)
        self.disaggregate = disaggregate
        self.prefix_caching = prefix_caching
        self.prefix_capacity_blocks = prefix_capacity_blocks
        self.kv_bytes_per_token = kv_bytes_per_token
        self.weight_bytes = weight_bytes
        self.ops_per_token = ops_per_token
        self.cache = SharedRegionCache(self.rts.memory, self.CACHE_OWNER)
        self.trie = PrefixTrie()
        #: Blocks that could not be cached because no device had room.
        self.placement_rejections = 0

    # -- prefix-cache plumbing --------------------------------------------

    def _telemetry(self):
        cluster = self.rts.cluster
        obs = getattr(cluster, "obs", None)
        return getattr(obs, "telemetry", None)

    def _observers(self) -> typing.Tuple[str, ...]:
        """Devices that read cached KV blocks: the decode pool if the
        cluster defines one, else every accelerator, else everything."""
        cluster = self.rts.cluster
        pool = cluster.device_pools.get(DECODE_POOL)
        if pool:
            return tuple(pool)
        accels = tuple(sorted(
            name for name, dev in cluster.compute.items()
            if dev.kind.value != "cpu"
        ))
        return accels or tuple(sorted(cluster.compute))

    def _materialize(self, req: LLMRequest, record: RequestRecord,
                     acquired: typing.List[tuple]):
        """Build one request's job at admission time.

        The trie lookup and the reference acquisitions happen *here* —
        when the job actually starts — so the covered blocks are pinned
        for exactly the job's lifetime, not the queue wait.
        """
        engine = self.rts.cluster.engine
        hit = 0
        if self.prefix_caching and req.blocks:
            hit = self.trie.longest_cached(req.blocks)
            for depth in range(1, hit + 1):
                key = tuple(req.blocks[:depth])
                try:
                    self.cache.acquire(key, req.name, now=engine.now)
                except (KeyError, SharedRegionError):
                    hit = depth - 1
                    break
                acquired.append(key)
        record.hit_blocks = hit
        record.cached_tokens = min(hit * req.block_tokens, req.prompt_tokens)
        telem = self._telemetry()
        if telem is not None:
            telem.add("llm.prefix_hit_blocks", engine.now, float(hit))
            telem.add("llm.prefix_miss_blocks", engine.now,
                      float(len(req.blocks) - hit))
        return build_request_job(
            req.prompt_tokens, req.output_tokens,
            cached_prefix_tokens=record.cached_tokens,
            kv_bytes_per_token=self.kv_bytes_per_token,
            weight_bytes=self.weight_bytes,
            ops_per_token=self.ops_per_token,
            disaggregate=self.disaggregate,
            name=req.name,
        )

    def _insert_blocks(self, req: LLMRequest, from_depth: int) -> None:
        """Adopt the request's uncached prefix blocks into the cache."""
        observers = self._observers()
        block_bytes = max(64, req.block_tokens * self.kv_bytes_per_token)
        for depth in range(from_depth + 1, len(req.blocks) + 1):
            key = tuple(req.blocks[:depth])
            if key in self.cache:
                self.trie.insert(key)
                continue
            try:
                region = self.rts.placement.place(PlacementRequest(
                    size=block_bytes,
                    properties=region_properties(RegionType.GLOBAL_SCRATCH),
                    owner=self.cache.owner,
                    observers=observers,
                    name="kv/" + "/".join(key),
                    region_type=RegionType.GLOBAL_SCRATCH,
                ))
            except PlacementError:
                self.placement_rejections += 1
                return  # no room for deeper blocks either
            self.cache.insert(key, region)
            self.trie.insert(key)
            self._evict_over_capacity()

    def _evict_over_capacity(self) -> None:
        """LRU-evict unpinned blocks past ``prefix_capacity_blocks``."""
        cap = self.prefix_capacity_blocks
        if cap is None:
            return
        while len(self.cache) > cap:
            victims = [
                e for e in map(self.cache.get, self.cache.keys())
                if e is not None and not e.pinned
            ]
            if not victims:
                return  # everything is pinned; retry on a later insert
            victim = min(victims, key=lambda e: e.last_used_at)
            self.trie.remove(victim.key)
            self.cache.forget(victim.key)

    def _settle(self, record: RequestRecord,
                acquired: typing.List[tuple], admitted) -> None:
        """Release the request's refs and harvest its telemetry."""
        engine = self.rts.cluster.engine
        for key in acquired:
            self.cache.release(key, record.request.name)
        acquired.clear()
        record.shed = bool(admitted is not None and admitted.shed)
        if record.shed:
            return
        stats = None
        if admitted is not None and admitted.execution is not None:
            stats = admitted.execution.stats
        if stats is None or not stats.ok:
            record.failed = True
            record.finished_at = engine.now
            return
        record.finished_at = engine.now
        record.kv_bytes_moved = stats.bytes_copied
        prefill = stats.tasks.get("prefill")
        decode = stats.tasks.get("decode")
        telem = self._telemetry()
        if prefill is not None and prefill.finished_at is not None:
            record.ttft_ns = prefill.finished_at - record.arrived_at
            if decode is not None and decode.ready_at is not None:
                record.transfer_stall_ns = max(
                    0.0, decode.ready_at - prefill.finished_at
                )
                if decode.finished_at is not None:
                    record.decode_ns = decode.finished_at - decode.ready_at
        if telem is not None:
            telem.add("llm.kv_bytes_moved", engine.now, stats.bytes_copied)
            if record.ttft_ns is not None:
                telem.record("llm.ttft_ns", engine.now, record.ttft_ns)
            if record.transfer_stall_ns is not None:
                telem.record("llm.transfer_stall_ns", engine.now,
                             record.transfer_stall_ns)
            if record.decode_ns is not None:
                telem.record("llm.decode_ns", engine.now, record.decode_ns)
        if self.prefix_caching and record.request.blocks:
            self._insert_blocks(record.request, record.hit_blocks)

    # -- serving ------------------------------------------------------------

    def serve(
        self,
        requests: typing.Sequence[LLMRequest],
        *,
        mode: str = "open",
        concurrency: int = 8,
    ) -> ServeResult:
        """Serve a request stream to completion; returns the records.

        ``mode="open"`` replays the trace's arrival timestamps (load is
        independent of completions — the tail-latency-honest setup);
        ``mode="closed"`` ignores them and keeps ``concurrency``
        requests in flight.  Requests go through the session's QoS
        admission under their own tenants; without a session (the
        deprecated bare-``rts`` spelling) they bypass admission.
        """
        if mode not in ("open", "closed"):
            raise ValueError(f"unknown serve mode {mode!r}")
        if concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        if not requests:
            raise ValueError("need at least one request")
        engine = self.rts.cluster.engine
        ordered = sorted(requests, key=lambda r: (r.arrival_ns, r.index))
        records: typing.List[RequestRecord] = []
        state = {"settled": 0, "dispatched": 0}
        telem = self._telemetry()
        if telem is not None:
            telem.watch("llm.prefix_pinned_bytes",
                        self.cache.pinned_bytes, kind="level")
        start_hits = self.cache.hits
        start_ns = engine.now

        def dispatch(req: LLMRequest):
            record = RequestRecord(request=req, arrived_at=engine.now)
            records.append(record)
            state["dispatched"] += 1
            acquired: typing.List[tuple] = []
            if self.session is not None:
                admitted = self.session.driver.submit_job(
                    req.name,
                    lambda: self._materialize(req, record, acquired),
                    tenant=req.tenant,
                )
                engine.process(
                    waiter(record, acquired, admitted),
                    name=f"llm-wait-{req.index}",
                )
            else:
                execution = self.rts._submit(
                    self._materialize(req, record, acquired)
                )
                execution.done.add_callback(
                    lambda event: finish_legacy(record, acquired, execution,
                                                event)
                )

        def finish_legacy(record, acquired, execution, event):
            if not event._ok:
                event.defuse()
            fake = _LegacyHandle(execution)
            self._settle(record, acquired, fake)
            state["settled"] += 1
            feed()

        def waiter(record, acquired, admitted):
            while not admitted.shed and admitted.finished_at is None:
                yield engine.timeout(self.POLL_NS)
            self._settle(record, acquired, admitted)
            state["settled"] += 1
            feed()

        pending = list(ordered)

        def feed():
            # Closed loop: each completion pulls the next request in.
            if mode != "closed":
                return
            if pending and state["dispatched"] - state["settled"] < concurrency:
                dispatch(pending.pop(0))

        def open_source():
            while pending:
                req = pending[0]
                if req.arrival_ns > engine.now:
                    yield engine.timeout(req.arrival_ns - engine.now)
                dispatch(pending.pop(0))

        if mode == "open":
            engine.process(open_source(), name="llm-arrivals")
        else:
            # Closed loop: prime the pipeline; feed() refills it.
            while pending and state["dispatched"] - state["settled"] < concurrency:
                dispatch(pending.pop(0))

        interval = (
            self.session.driver.sample_interval_ns
            if self.session is not None else 100_000.0
        )
        sampling = {"on": telem is not None}
        if sampling["on"]:
            def sampler():
                while sampling["on"]:
                    telem.poll(engine.now)
                    yield engine.timeout(interval)

            sampler_proc = engine.process(sampler(), name="llm-sampler")
        # Step the clock until every request has settled; the sampler
        # alone must not keep the run alive (mirrors RackDriver).
        while state["settled"] < len(ordered):
            engine.run(until=engine.now + interval)
        if sampling["on"]:
            sampling["on"] = False
            sampler_proc.kill()
        engine.run()
        if telem is not None:
            telem.poll(engine.now)
        return ServeResult(
            records=records,
            horizon_ns=engine.now - start_ns,
            prefix_hit_blocks=self.cache.hits - start_hits,
            prefix_miss_blocks=sum(
                len(r.request.blocks) - r.hit_blocks for r in records
            ),
            evictions=self.cache.evictions,
            deferred_evictions=self.cache.deferred_evictions,
            leaked=self.cache.outstanding(),
        )

    # -- lifecycle ----------------------------------------------------------

    def audit(self) -> typing.Dict[typing.Hashable, int]:
        """Live reader refcounts per pinned block; empty == leak-free."""
        return self.cache.outstanding()

    def shutdown(self) -> int:
        """Drain the prefix cache; returns blocks freed immediately.

        Still-pinned blocks free on their readers' final release;
        :meth:`audit` reports any that never do (a refcount leak).
        """
        freed = self.cache.drain()
        self.trie = PrefixTrie()
        return freed


class _LegacyHandle:
    """Adapter so ``_settle`` can read a bare execution like a handle."""

    shed = False

    def __init__(self, execution):
        self.execution = execution


__all__ = ["LLMEngine", "RequestRecord", "ServeResult"]
