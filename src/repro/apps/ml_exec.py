"""A physical ML trainer on top of the runtime.

The AI/ML analogue of :mod:`repro.apps.dbms_exec` (§2.4): a linear
model is *really* trained — numpy mini-batch SGD with a measurable loss
curve — while every stage charges the simulator for what it touches:

* ``ingest`` materializes the dataset as a task output,
* ``transform`` standardizes features once and publishes the result to
  a Global Scratch cache (the Cachew pattern),
* each ``epoch`` task consumes the cache, streams mini-batches, keeps
  weights/optimizer state in Private Scratch, and hands the weights to
  the next epoch by ownership transfer,
* ``evaluate`` reports the final loss.

So one run yields both a converged model and a placement-sensitive
performance profile.
"""

from __future__ import annotations

import dataclasses
import typing

import numpy as np

from repro.dataflow.graph import Job, Task
from repro.dataflow.properties import TaskProperties
from repro.dataflow.workspec import RegionUsage, WorkSpec
from repro.hardware.spec import ComputeKind, OpClass
from repro.memory.interfaces import AccessPattern
from repro.memory.properties import LatencyClass
from repro.runtime.rts import JobStats, RuntimeSystem
from repro.apps import _session

KiB = 1024


@dataclasses.dataclass
class TrainingResult:
    weights: np.ndarray
    bias: float
    loss_per_epoch: typing.List[float]
    final_loss: float
    stats: JobStats


def _mse(X: np.ndarray, y: np.ndarray, w: np.ndarray, b: float) -> float:
    residual = X @ w + b - y
    return float(np.mean(residual ** 2))


class LinearTrainer:
    """Mini-batch SGD linear regression, executed as a dataflow job."""

    def __init__(
        self,
        session=None,
        epochs: int = 5,
        batch_size: int = 256,
        learning_rate: float = 0.05,
        accelerator: ComputeKind = ComputeKind.GPU,
        rts: typing.Optional[RuntimeSystem] = None,
    ):
        if epochs < 1 or batch_size < 1 or learning_rate <= 0:
            raise ValueError("invalid training hyperparameters")
        self.session, self.rts = _session.resolve("LinearTrainer", session, rts)
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.accelerator = accelerator

    def fit(self, X: np.ndarray, y: np.ndarray) -> TrainingResult:
        """Train on (X, y); returns the model and the run's stats."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2 or y.ndim != 1 or len(X) != len(y):
            raise ValueError(
                f"need X (n, d) and y (n,), got {X.shape} and {y.shape}"
            )
        n_samples, n_features = X.shape
        raw_bytes = max(64, X.nbytes + y.nbytes)
        state: dict = {}
        loss_per_epoch: typing.List[float] = []

        job = Job("linear-training", global_state_size=64 * KiB)

        def ingest_fn(ctx):
            yield from ctx.compute_ops(0.1 * n_samples)
            out = ctx.output(size=raw_bytes)
            yield from ctx.write(out)

        ingest = job.add_task(Task(
            "ingest",
            work=WorkSpec(op_class=OpClass.SCALAR, ops=0.1 * n_samples,
                          output=RegionUsage(raw_bytes)),
            fn=ingest_fn,
            properties=TaskProperties(compute=ComputeKind.CPU),
        ))

        def transform_fn(ctx):
            yield from ctx.read(ctx.input())
            yield from ctx.compute_ops(4.0 * X.size)
            mean = X.mean(axis=0)
            scale = X.std(axis=0)
            scale[scale == 0] = 1.0
            state["X"] = (X - mean) / scale
            state["y"] = y
            cache = ctx.publish("dataset-cache", size=raw_bytes)
            yield from ctx.write(cache)
            out = ctx.output(size=4 * KiB)  # manifest
            yield from ctx.write(out)

        transform = job.add_task(Task(
            "transform",
            work=WorkSpec(op_class=OpClass.VECTOR, ops=4.0 * X.size,
                          input_usage=RegionUsage(0),
                          scratch_puts={"dataset-cache": RegionUsage(raw_bytes)},
                          output=RegionUsage(4 * KiB)),
            fn=transform_fn,
            properties=TaskProperties(compute=ComputeKind.CPU,
                                      mem_latency=LatencyClass.LOW),
        ))
        job.connect(ingest, transform)

        weight_bytes = max(64, 8 * (n_features + 1))
        trainer = self

        def make_epoch_fn(epoch_index: int):
            def epoch_fn(ctx):
                cache = yield from ctx.consume("dataset-cache")
                yield from ctx.read(cache)
                # Weights + optimizer state live in Private Scratch.
                scratch = ctx.private_scratch(
                    size=max(64 * KiB, 4 * weight_bytes)
                )
                Xs, ys = state["X"], state["y"]
                w = state.get("w", np.zeros(n_features))
                b = state.get("b", 0.0)
                rng = np.random.default_rng(epoch_index)
                order = rng.permutation(len(Xs))
                n_batches = 0
                for start in range(0, len(Xs), trainer.batch_size):
                    batch = order[start:start + trainer.batch_size]
                    Xb, yb = Xs[batch], ys[batch]
                    residual = Xb @ w + b - yb
                    w = w - trainer.learning_rate * (Xb.T @ residual) / len(batch)
                    b = b - trainer.learning_rate * float(np.mean(residual))
                    n_batches += 1
                # Charge: weight reads/writes per batch + the flops.
                yield from ctx.write(
                    scratch, nbytes=min(scratch.region.size,
                                        2 * weight_bytes * n_batches),
                    pattern=AccessPattern.RANDOM, access_size=256,
                )
                yield from ctx.compute_ops(4.0 * Xs.size)
                state["w"], state["b"] = w, b
                loss_per_epoch.append(_mse(Xs, ys, w, b))
                out = ctx.output(size=weight_bytes)
                yield from ctx.write(out)

            return epoch_fn

        previous = transform
        for epoch in range(self.epochs):
            epoch_task = job.add_task(Task(
                f"epoch{epoch}",
                work=WorkSpec(op_class=OpClass.MATMUL, ops=4.0 * X.size,
                              input_usage=RegionUsage(0),
                              scratch=RegionUsage(64 * KiB,
                                                  pattern=AccessPattern.RANDOM),
                              scratch_gets=("dataset-cache",),
                              output=RegionUsage(weight_bytes)),
                fn=make_epoch_fn(epoch),
                properties=TaskProperties(compute=self.accelerator,
                                          mem_latency=LatencyClass.LOW),
            ))
            job.connect(previous, epoch_task)
            previous = epoch_task

        def evaluate_fn(ctx):
            yield from ctx.read(ctx.input())
            yield from ctx.compute_ops(2.0 * X.size)
            state["final_loss"] = _mse(state["X"], state["y"],
                                       state["w"], state["b"])

        evaluate = job.add_task(Task(
            "evaluate",
            work=WorkSpec(op_class=OpClass.VECTOR, ops=2.0 * X.size,
                          input_usage=RegionUsage(0)),
            fn=evaluate_fn,
            properties=TaskProperties(compute=ComputeKind.CPU),
        ))
        job.connect(previous, evaluate)
        job.validate()

        stats = _session.run_job(self.session, self.rts, job)
        return TrainingResult(
            weights=state["w"], bias=state["b"],
            loss_per_epoch=loss_per_epoch,
            final_loss=state["final_loss"],
            stats=stats,
        )


def make_regression_data(
    rng: np.random.Generator, n_samples: int = 2000, n_features: int = 8,
    noise: float = 0.1,
) -> typing.Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Synthetic linear data; returns (X, y, true_weights)."""
    X = rng.standard_normal((n_samples, n_features))
    true_w = rng.uniform(-2.0, 2.0, n_features)
    y = X @ true_w + noise * rng.standard_normal(n_samples)
    return X, y, true_w
