"""AI/ML training on the programming model (Table 3, second row).

Models the Cachew pattern the paper describes (§2.4): the input
pipeline transforms raw data and caches the result in **Global
Scratch**; a dispatcher coordinates through **Global State**; training
epochs run on accelerators with model/optimizer state in **Private
Scratch**; the final weights are a persistent output.
"""

from __future__ import annotations

from repro.dataflow.graph import Job, Task
from repro.dataflow.properties import TaskProperties
from repro.dataflow.workspec import RegionUsage, WorkSpec
from repro.hardware.spec import ComputeKind, OpClass
from repro.memory.interfaces import AccessPattern
from repro.memory.properties import LatencyClass

KiB = 1024
MiB = 1024 * KiB


def build_training_job(
    n_samples: int = 100_000,
    sample_bytes: int = 1024,
    model_bytes: int = 32 * MiB,
    epochs: int = 3,
    accelerator: ComputeKind = ComputeKind.GPU,
) -> Job:
    """An input pipeline + ``epochs`` training passes + a checkpoint."""
    if epochs < 1:
        raise ValueError(f"need at least one epoch, got {epochs}")
    raw_bytes = n_samples * sample_bytes
    transformed_bytes = raw_bytes // 2  # feature extraction shrinks data

    job = Job("ml-training", global_state_size=256 * KiB)

    ingest = job.add_task(Task(
        "ingest",
        work=WorkSpec(
            op_class=OpClass.SCALAR, ops=1.0 * n_samples,
            output=RegionUsage(raw_bytes),
        ),
        properties=TaskProperties(compute=ComputeKind.CPU),
    ))

    transform = job.add_task(Task(
        "transform",
        work=WorkSpec(
            op_class=OpClass.VECTOR, ops=20.0 * n_samples,
            input_usage=RegionUsage(0),
            scratch=RegionUsage(16 * MiB, touches=2.0),
            # Cachew: the transformed dataset is cached for all epochs.
            scratch_puts={"transformed-cache": RegionUsage(transformed_bytes)},
            output=RegionUsage(4 * KiB),  # manifest/metadata only
        ),
        properties=TaskProperties(compute=ComputeKind.CPU,
                                  mem_latency=LatencyClass.LOW),
    ))

    job.connect(ingest, transform)

    previous = transform
    for epoch in range(epochs):
        train = job.add_task(Task(
            f"train-epoch{epoch}",
            work=WorkSpec(
                op_class=OpClass.MATMUL,
                ops=50.0 * n_samples,
                input_usage=RegionUsage(0),
                # Model + optimizer state, hammered randomly.
                scratch=RegionUsage(
                    model_bytes, touches=4.0,
                    pattern=AccessPattern.RANDOM, access_size=256,
                ),
                # Dispatcher/worker coordination.
                state_usage=RegionUsage(8 * KiB, pattern=AccessPattern.RANDOM),
                scratch_gets=("transformed-cache",),
                output=RegionUsage(model_bytes // 16),  # epoch deltas
            ),
            properties=TaskProperties(
                compute=accelerator, mem_latency=LatencyClass.LOW,
            ),
        ))
        job.connect(previous, train)
        previous = train

    checkpoint = job.add_task(Task(
        "checkpoint",
        work=WorkSpec(
            op_class=OpClass.SCALAR, ops=0.1 * model_bytes / 64,
            input_usage=RegionUsage(0),
            output=RegionUsage(model_bytes),  # the weights, durable
        ),
        properties=TaskProperties(compute=ComputeKind.CPU, persistent=True),
    ))
    job.connect(previous, checkpoint)
    job.validate()
    return job
