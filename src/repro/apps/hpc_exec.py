"""A physical HPC solver on top of the runtime.

The HPC analogue of :mod:`repro.apps.dbms_exec` / :mod:`~repro.apps.ml_exec`
(§2.4, Table 3 row 3): a 2-D Jacobi heat solver *really* iterates to a
measurable residual on numpy grids, partitioned across worker tasks that

* keep their partition + halo in Private Scratch (node-local working
  memory),
* exchange halo rows with neighbours through their task outputs
  (ownership handover), and
* publish per-iteration residuals into Global State, where the
  convergence check reads them (the BSP barrier).

One run returns the converged field and the placement-sensitive cost of
computing it.
"""

from __future__ import annotations

import dataclasses
import typing

import numpy as np

from repro.dataflow.graph import Job, Task
from repro.dataflow.properties import TaskProperties
from repro.dataflow.workspec import RegionUsage, WorkSpec
from repro.hardware.spec import ComputeKind, OpClass
from repro.memory.interfaces import AccessPattern
from repro.memory.properties import LatencyClass
from repro.runtime.rts import JobStats, RuntimeSystem
from repro.apps import _session

KiB = 1024


@dataclasses.dataclass
class SolveResult:
    field: np.ndarray
    residuals: typing.List[float]
    iterations: int
    converged: bool
    stats: JobStats


def jacobi_step(grid: np.ndarray) -> np.ndarray:
    """One Jacobi relaxation step with fixed (Dirichlet) boundaries."""
    new = grid.copy()
    new[1:-1, 1:-1] = 0.25 * (
        grid[:-2, 1:-1] + grid[2:, 1:-1] + grid[1:-1, :-2] + grid[1:-1, 2:]
    )
    return new


class JacobiSolver:
    """Distributed Jacobi relaxation as a dataflow job."""

    def __init__(
        self,
        session=None,
        n_workers: int = 4,
        iterations: int = 10,
        tolerance: float = 1e-4,
        rts: typing.Optional[RuntimeSystem] = None,
    ):
        if n_workers < 1 or iterations < 1 or tolerance <= 0:
            raise ValueError("invalid solver parameters")
        self.session, self.rts = _session.resolve("JacobiSolver", session, rts)
        self.n_workers = n_workers
        self.iterations = iterations
        self.tolerance = tolerance

    def solve(self, grid: np.ndarray) -> SolveResult:
        """Run the distributed relaxation; returns field + residuals + stats."""
        grid = np.asarray(grid, dtype=np.float64)
        if grid.ndim != 2 or min(grid.shape) < 3:
            raise ValueError(f"need a 2-D grid of at least 3x3, got {grid.shape}")
        state = {"grid": grid.copy(), "residuals": [], "converged": False}
        rows_per_worker = max(1, (grid.shape[0] - 2) // self.n_workers)
        partition_bytes = max(
            64 * KiB, (rows_per_worker + 2) * grid.shape[1] * 8
        )
        solver = self

        job = Job("jacobi", global_state_size=64 * KiB)

        def scatter_fn(ctx):
            yield from ctx.compute_ops(grid.size / 8)
            out = ctx.output(size=max(64, grid.nbytes))
            yield from ctx.write(out)

        previous = job.add_task(Task(
            "scatter",
            work=WorkSpec(op_class=OpClass.SCALAR, ops=grid.size / 8,
                          output=RegionUsage(max(64, grid.nbytes))),
            fn=scatter_fn,
            properties=TaskProperties(compute=ComputeKind.CPU),
        ))

        def make_worker_fn(iteration: int, start_row: int, end_row: int):
            def worker_fn(ctx):
                yield from ctx.read(ctx.input(), nbytes=partition_bytes)
                scratch = ctx.private_scratch(size=partition_bytes)
                # Halo + interior sweep: 4 flops per interior point.
                current = state["grid"]
                rows = slice(max(1, start_row), min(current.shape[0] - 1, end_row))
                new = current.copy()
                new[rows, 1:-1] = 0.25 * (
                    current[rows.start - 1: rows.stop - 1, 1:-1]
                    + current[rows.start + 1: rows.stop + 1, 1:-1]
                    + current[rows, :-2]
                    + current[rows, 2:]
                )
                state.setdefault(f"partial{iteration}", []).append((rows, new[rows]))
                yield from ctx.write(scratch, nbytes=partition_bytes,
                                     pattern=AccessPattern.SEQUENTIAL)
                yield from ctx.compute_ops(
                    4.0 * (rows.stop - rows.start) * current.shape[1])
                out = ctx.output(size=partition_bytes)
                yield from ctx.write(out)

            return worker_fn

        def make_barrier_fn(iteration: int):
            def barrier_fn(ctx):
                for handle in ctx.inputs:
                    yield from ctx.read(handle)
                merged = state["grid"].copy()
                for rows, values in state.pop(f"partial{iteration}", []):
                    merged[rows] = values
                residual = float(np.max(np.abs(merged - state["grid"])))
                state["grid"] = merged
                state["residuals"].append(residual)
                if residual < solver.tolerance:
                    state["converged"] = True
                # The convergence decision lives in Global State.
                gstate = ctx.global_state()
                yield from ctx.write(gstate, nbytes=4 * KiB,
                                     pattern=AccessPattern.RANDOM)
                out = ctx.output(size=max(64, grid.nbytes))
                yield from ctx.write(out)

            return barrier_fn

        interior = grid.shape[0] - 2
        for iteration in range(self.iterations):
            workers = []
            for w in range(self.n_workers):
                start = 1 + w * rows_per_worker
                end = grid.shape[0] - 1 if w == self.n_workers - 1 else (
                    start + rows_per_worker
                )
                if start >= grid.shape[0] - 1:
                    break
                worker = job.add_task(Task(
                    f"it{iteration}-w{w}",
                    work=WorkSpec(
                        op_class=OpClass.VECTOR,
                        ops=4.0 * max(1, end - start) * grid.shape[1],
                        input_usage=RegionUsage(0, touches=0.25),
                        scratch=RegionUsage(partition_bytes, touches=2.0),
                        output=RegionUsage(partition_bytes),
                    ),
                    fn=make_worker_fn(iteration, start, end),
                    properties=TaskProperties(compute=ComputeKind.CPU,
                                              mem_latency=LatencyClass.LOW),
                ))
                job.connect(previous, worker)
                workers.append(worker)
            barrier = job.add_task(Task(
                f"barrier{iteration}",
                work=WorkSpec(
                    op_class=OpClass.SCALAR, ops=interior * grid.shape[1],
                    input_usage=RegionUsage(0),
                    state_usage=RegionUsage(4 * KiB,
                                            pattern=AccessPattern.RANDOM),
                    output=RegionUsage(max(64, grid.nbytes)),
                ),
                fn=make_barrier_fn(iteration),
                properties=TaskProperties(compute=ComputeKind.CPU),
            ))
            for worker in workers:
                job.connect(worker, barrier)
            previous = barrier

        job.validate()
        stats = _session.run_job(self.session, self.rts, job)
        return SolveResult(
            field=state["grid"],
            residuals=state["residuals"],
            iterations=len(state["residuals"]),
            converged=state["converged"],
            stats=stats,
        )


def make_heat_problem(n: int = 32, hot_edge: float = 100.0) -> np.ndarray:
    """A square plate, one hot boundary, interior initially cold."""
    if n < 3:
        raise ValueError("grid must be at least 3x3")
    grid = np.zeros((n, n))
    grid[0, :] = hot_edge
    return grid
