"""Database systems on the programming model (Table 3, first row).

Two halves:

* :class:`MiniDB` — a tiny but real numpy-backed relational executor
  (filter, hash join, group-count) used by the examples to produce
  actual query results;
* :func:`build_query_job` — the same pipeline expressed as a dataflow
  job with the Table 3 region mapping: operator state (hash tables) in
  **Private Scratch**, latches in **Global State**, and a re-usable
  hash index passed through **Global Scratch** from the aggregation
  operator to the join operator (the paper's own example).
"""

from __future__ import annotations

import typing

import numpy as np

from repro.dataflow.graph import Job, Task
from repro.dataflow.properties import TaskProperties
from repro.dataflow.workspec import RegionUsage, WorkSpec
from repro.hardware.spec import ComputeKind, OpClass
from repro.memory.interfaces import AccessPattern
from repro.memory.properties import LatencyClass

KiB = 1024
MiB = 1024 * KiB


class MiniDB:
    """A minimal relational executor over numpy structured arrays."""

    def __init__(self):
        self.tables: typing.Dict[str, np.ndarray] = {}

    def create_table(self, name: str, table: np.ndarray) -> None:
        """Register a structured-array table under a unique name."""
        if name in self.tables:
            raise KeyError(f"table {name!r} exists")
        if table.dtype.names is None:
            raise TypeError("tables must be numpy structured arrays")
        self.tables[name] = table

    def scan(self, name: str) -> np.ndarray:
        """The full contents of a registered table."""
        if name not in self.tables:
            raise KeyError(f"no table {name!r}")
        return self.tables[name]

    @staticmethod
    def filter(table: np.ndarray, column: str, op: str, value) -> np.ndarray:
        """Rows where ``column <op> value`` holds."""
        comparators = {
            "==": np.equal, "!=": np.not_equal,
            "<": np.less, "<=": np.less_equal,
            ">": np.greater, ">=": np.greater_equal,
        }
        if op not in comparators:
            raise ValueError(f"unsupported comparison {op!r}")
        mask = comparators[op](table[column], value)
        return table[mask]

    @staticmethod
    def hash_join(
        left: np.ndarray, right: np.ndarray, on: str
    ) -> typing.List[typing.Tuple[int, int]]:
        """Equi-join returning (left_index, right_index) pairs.

        Builds a hash table on the smaller side — the operator-state
        pattern that Private Scratch exists for.
        """
        build, probe, swapped = (left, right, False)
        if len(right) < len(left):
            build, probe, swapped = right, left, True
        index: typing.Dict[int, list] = {}
        for i, key in enumerate(build[on]):
            index.setdefault(int(key), []).append(i)
        pairs = []
        for j, key in enumerate(probe[on]):
            for i in index.get(int(key), ()):
                pairs.append((j, i) if swapped else (i, j))
        return pairs

    @staticmethod
    def group_count(table: np.ndarray, column: str) -> typing.Dict[int, int]:
        """GROUP BY column, COUNT(*) — the aggregation hash table."""
        keys, counts = np.unique(table[column], return_counts=True)
        return {int(k): int(c) for k, c in zip(keys, counts)}


def build_query_job(
    n_rows: int = 1_000_000,
    row_bytes: int = 64,
    selectivity: float = 0.2,
    groups: int = 1024,
) -> Job:
    """An analytics query as a dataflow job with Table 3's region mix.

    Pipeline: scan → filter → aggregate (builds + publishes a hash
    index) → join probe (re-uses the index) → result.
    """
    if not 0.0 < selectivity <= 1.0:
        raise ValueError(f"selectivity must be in (0,1], got {selectivity}")
    table_bytes = n_rows * row_bytes
    filtered_bytes = max(row_bytes, int(table_bytes * selectivity))
    hash_index_bytes = max(64 * KiB, groups * 64)

    job = Job("analytics-query", global_state_size=64 * KiB)
    cpu = TaskProperties(compute=ComputeKind.CPU, mem_latency=LatencyClass.LOW)

    scan = job.add_task(Task(
        "scan",
        work=WorkSpec(
            op_class=OpClass.SCALAR, ops=0.5 * n_rows,
            output=RegionUsage(table_bytes),
        ),
        properties=TaskProperties(compute=ComputeKind.CPU),
    ))

    filter_op = job.add_task(Task(
        "filter",
        work=WorkSpec(
            op_class=OpClass.VECTOR, ops=1.0 * n_rows,
            input_usage=RegionUsage(0),
            output=RegionUsage(filtered_bytes),
        ),
        properties=cpu,
    ))

    aggregate = job.add_task(Task(
        "aggregate",
        work=WorkSpec(
            op_class=OpClass.SCALAR, ops=2.0 * n_rows * selectivity,
            input_usage=RegionUsage(0),
            # The aggregation hash table: random-access operator state.
            scratch=RegionUsage(
                hash_index_bytes, touches=3.0,
                pattern=AccessPattern.RANDOM, access_size=64,
            ),
            state_usage=RegionUsage(
                4 * KiB, pattern=AccessPattern.RANDOM,
            ),  # latches
            output=RegionUsage(max(64, groups * 16)),
            # The reusable index goes to Global Scratch (paper's example).
            scratch_puts={"hash-index": RegionUsage(hash_index_bytes)},
        ),
        properties=cpu,
    ))

    join = job.add_task(Task(
        "join-probe",
        work=WorkSpec(
            op_class=OpClass.SCALAR, ops=3.0 * n_rows * selectivity,
            input_usage=RegionUsage(0),
            scratch=RegionUsage(
                max(64 * KiB, filtered_bytes // 8), touches=2.0,
                pattern=AccessPattern.RANDOM,
            ),
            state_usage=RegionUsage(4 * KiB, pattern=AccessPattern.RANDOM),
            output=RegionUsage(max(64, filtered_bytes // 4)),
            scratch_gets=("hash-index",),
        ),
        properties=cpu,
    ))

    result = job.add_task(Task(
        "materialize",
        work=WorkSpec(
            op_class=OpClass.SCALAR, ops=0.2 * n_rows * selectivity,
            input_usage=RegionUsage(0),
        ),
        properties=TaskProperties(compute=ComputeKind.CPU, persistent=False),
    ))

    job.connect(scan, filter_op)
    job.connect(filter_op, aggregate)
    job.connect(aggregate, join)
    job.connect(join, result)
    job.validate()
    return job
