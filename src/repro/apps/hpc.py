"""HPC on the programming model (Table 3, third row).

An iterative stencil/BSP job: a partitioner scatters the grid to
``n_workers`` worker tasks per iteration; each worker keeps its
partition in node-local working memory (**Private Scratch**), job
metadata and node states live in **Global State**, and the final field
is published to object storage (**Global Scratch**) before a reducer
summarizes it.
"""

from __future__ import annotations

from repro.dataflow.graph import Job, Task
from repro.dataflow.properties import TaskProperties
from repro.dataflow.workspec import RegionUsage, WorkSpec
from repro.hardware.spec import ComputeKind, OpClass
from repro.memory.interfaces import AccessPattern
from repro.memory.properties import LatencyClass

KiB = 1024
MiB = 1024 * KiB


def build_stencil_job(
    n_workers: int = 4,
    grid_bytes: int = 64 * MiB,
    iterations: int = 2,
) -> Job:
    """A BSP stencil: scatter → (workers → barrier)^iterations → reduce."""
    if n_workers < 1 or iterations < 1:
        raise ValueError("need >= 1 worker and >= 1 iteration")
    partition_bytes = grid_bytes // n_workers

    job = Job("stencil", global_state_size=128 * KiB)

    scatter = job.add_task(Task(
        "scatter",
        work=WorkSpec(
            op_class=OpClass.SCALAR, ops=grid_bytes / 512,
            output=RegionUsage(grid_bytes),
        ),
        properties=TaskProperties(compute=ComputeKind.CPU),
    ))

    previous_stage = [scatter]
    for iteration in range(iterations):
        barrier = job.add_task(Task(
            f"barrier{iteration}",
            work=WorkSpec(
                op_class=OpClass.SCALAR, ops=1000.0,
                input_usage=RegionUsage(0),
                state_usage=RegionUsage(4 * KiB, pattern=AccessPattern.RANDOM),
                output=RegionUsage(grid_bytes) if iteration + 1 < iterations
                else RegionUsage(grid_bytes // 8),
            ),
            properties=TaskProperties(compute=ComputeKind.CPU),
        ))
        for w in range(n_workers):
            worker = job.add_task(Task(
                f"worker{iteration}-{w}",
                work=WorkSpec(
                    op_class=OpClass.VECTOR,
                    ops=8.0 * partition_bytes / 8,  # 8 flops per point
                    input_usage=RegionUsage(0, touches=0.25),
                    # Node-local working memory: partition + halo.
                    scratch=RegionUsage(
                        partition_bytes + 2 * KiB, touches=3.0,
                    ),
                    state_usage=RegionUsage(
                        512, pattern=AccessPattern.RANDOM,
                    ),  # node liveness/progress
                    output=RegionUsage(partition_bytes),
                ),
                properties=TaskProperties(
                    compute=ComputeKind.CPU, mem_latency=LatencyClass.LOW,
                ),
            ))
            for upstream in previous_stage:
                job.connect(upstream, worker)
            job.connect(worker, barrier)
        previous_stage = [barrier]

    reduce_task = job.add_task(Task(
        "reduce",
        work=WorkSpec(
            op_class=OpClass.VECTOR, ops=grid_bytes / 64,
            input_usage=RegionUsage(0),
            # Publish the final field to blob storage (Table 3: object
            # storage maps to Global Scratch).
            scratch_puts={"result-field": RegionUsage(grid_bytes // 8)},
        ),
        properties=TaskProperties(compute=ComputeKind.CPU),
    ))
    job.connect(previous_stage[0], reduce_task)
    job.validate()
    return job
