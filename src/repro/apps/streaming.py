"""The hospital CCTV dataflow of Figure 2.

Five tasks with the exact property cards of Figure 2c:

====  ==================  =======  ============  ==========  ===========
Task  Name                Compute  Confidential  Persistent  Mem latency
====  ==================  =======  ============  ==========  ===========
T1    Preprocessing       GPU      yes           no          low
T2    Face Recognition    GPU      yes           no          low
T3    Track Hours         CPU      yes           no          low
T4    Compute Utilization CPU      no            no          (don't care)
T5    Alert Caregivers    CPU      yes           yes         low
====  ==================  =======  ============  ==========  ===========

T2 additionally cross-references the employee/patient database, which
lives in the job's Global State, and the stream's frames flow
T1 → T2 → {T3, T4, T5}.
"""

from __future__ import annotations

from repro.dataflow.graph import Job, Task
from repro.dataflow.properties import TaskProperties
from repro.dataflow.workspec import RegionUsage, WorkSpec
from repro.hardware.spec import ComputeKind, OpClass
from repro.memory.interfaces import AccessPattern
from repro.memory.properties import LatencyClass

KiB = 1024
MiB = 1024 * KiB


def build_hospital_job(
    n_frames: int = 64,
    frame_bytes: int = 128 * KiB,
    database_bytes: int = 8 * MiB,
) -> Job:
    """Build the Figure 2 job, scaled by stream length and frame size."""
    if n_frames < 1 or frame_bytes < 1:
        raise ValueError("need at least one frame of at least one byte")
    stream_bytes = n_frames * frame_bytes
    job = Job("hospital", global_state_size=database_bytes)

    preprocessing = job.add_task(Task(
        "preprocessing",
        work=WorkSpec(
            op_class=OpClass.VECTOR,
            ops=50.0 * stream_bytes / 64,  # per-pixel filtering
            scratch=RegionUsage(4 * frame_bytes, touches=2.0),
            output=RegionUsage(stream_bytes // 2),  # downsampled stream
        ),
        properties=TaskProperties(
            compute=ComputeKind.GPU, confidential=True,
            mem_latency=LatencyClass.LOW, streaming=True,
        ),
    ))

    face_recognition = job.add_task(Task(
        "face_recognition",
        work=WorkSpec(
            op_class=OpClass.MATMUL,
            ops=400.0 * stream_bytes / 64,  # CNN inference per frame
            input_usage=RegionUsage(0, touches=1.0),
            scratch=RegionUsage(16 * MiB, touches=1.5),  # model weights
            state_usage=RegionUsage(
                64 * KiB, pattern=AccessPattern.RANDOM, access_size=256,
            ),  # employee/patient DB lookups
            output=RegionUsage(n_frames * 256),  # tagged identities
        ),
        properties=TaskProperties(
            compute=ComputeKind.GPU, confidential=True,
            mem_latency=LatencyClass.LOW,
        ),
    ))

    track_hours = job.add_task(Task(
        "track_hours",
        work=WorkSpec(
            op_class=OpClass.SCALAR,
            ops=2000.0 * n_frames,
            input_usage=RegionUsage(0),
            scratch=RegionUsage(1 * MiB, touches=1.0,
                                pattern=AccessPattern.RANDOM),
            state_usage=RegionUsage(16 * KiB, pattern=AccessPattern.RANDOM),
            output=RegionUsage(64 * KiB),  # updated timesheets
        ),
        properties=TaskProperties(
            compute=ComputeKind.CPU, confidential=True,
            mem_latency=LatencyClass.LOW,
        ),
    ))

    compute_utilization = job.add_task(Task(
        "compute_utilization",
        work=WorkSpec(
            op_class=OpClass.SCALAR,
            ops=500.0 * n_frames,
            input_usage=RegionUsage(0),
            output=RegionUsage(4 * KiB),  # public website payload
        ),
        properties=TaskProperties(compute=ComputeKind.CPU, confidential=False),
    ))

    alert_caregivers = job.add_task(Task(
        "alert_caregivers",
        work=WorkSpec(
            op_class=OpClass.SCALAR,
            ops=1000.0 * n_frames,
            input_usage=RegionUsage(0),
            state_usage=RegionUsage(8 * KiB, pattern=AccessPattern.RANDOM),
            output=RegionUsage(32 * KiB),  # missing-patient log (durable)
        ),
        properties=TaskProperties(
            compute=ComputeKind.CPU, confidential=True, persistent=True,
            mem_latency=LatencyClass.LOW,
        ),
    ))

    job.connect(preprocessing, face_recognition)
    job.connect(face_recognition, track_hours)
    job.connect(face_recognition, compute_utilization)
    job.connect(face_recognition, alert_caregivers)
    job.validate()
    return job
