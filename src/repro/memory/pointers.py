"""Remotable pointers and hotness tracking.

The paper (§3, Challenges 1–3) points at pointer tagging and pointer
swizzling — LeanStore, AIFM, TPP, Carbink — as the mechanism for
tracking hot objects and referencing memory that may be local or
remote.  We reproduce both ideas at region granularity:

* :class:`RemotePointer` is a fat pointer ``(region, offset)`` that can
  be *swizzled*: when the target region currently lives on a device the
  observer can load/store directly, it dereferences in "direct" mode;
  otherwise it is "remote" and dereferencing goes through the async
  interface.  Each dereference bumps the tag's access counter.
* :class:`HotnessTracker` maintains exponentially-decayed access
  frequencies per region, which the tiering daemon
  (:mod:`repro.memory.tiering`) uses for promotion/demotion decisions.
"""

from __future__ import annotations

import math
import typing

from repro.hardware.cluster import Cluster
from repro.memory.region import MemoryRegion


class HotnessTracker:
    """Exponentially-decayed per-region access statistics.

    ``half_life_ns`` controls how fast history fades; hotness is
    measured in (decayed) bytes touched.
    """

    def __init__(self, half_life_ns: float = 1_000_000.0):
        if half_life_ns <= 0:
            raise ValueError("half life must be positive")
        self.decay = math.log(2.0) / half_life_ns
        self._score: typing.Dict[int, float] = {}
        self._last: typing.Dict[int, float] = {}
        self.total_records = 0

    def record(self, region_id: int, nbytes: float, time: float) -> None:
        """Record an access of ``nbytes`` at simulated ``time``."""
        if nbytes < 0:
            raise ValueError("negative access size")
        previous = self._score.get(region_id, 0.0)
        last_time = self._last.get(region_id, time)
        elapsed = max(0.0, time - last_time)
        self._score[region_id] = previous * math.exp(-self.decay * elapsed) + nbytes
        self._last[region_id] = time
        self.total_records += 1

    def hotness(self, region_id: int, time: float) -> float:
        """Decayed score of a region as of ``time`` (0 if never seen)."""
        if region_id not in self._score:
            return 0.0
        elapsed = max(0.0, time - self._last[region_id])
        return self._score[region_id] * math.exp(-self.decay * elapsed)

    def ranked(self, time: float) -> typing.List[typing.Tuple[int, float]]:
        """All tracked regions, hottest first."""
        pairs = [(rid, self.hotness(rid, time)) for rid in self._score]
        pairs.sort(key=lambda p: (-p[1], p[0]))
        return pairs

    def forget(self, region_id: int) -> None:
        """Drop all hotness history for a region."""
        self._score.pop(region_id, None)
        self._last.pop(region_id, None)


class RemotePointer:
    """A swizzlable fat pointer into a region.

    The ``mode`` property answers "would a dereference by ``observer``
    be a direct load or a remote fetch *right now*", which changes as
    the tiering daemon migrates the region — exactly the
    local-vs-remote pointer distinction of AIFM/Carbink.
    """

    def __init__(
        self,
        cluster: Cluster,
        region: MemoryRegion,
        offset: int = 0,
        tracker: typing.Optional[HotnessTracker] = None,
    ):
        if offset < 0 or offset >= region.size:
            raise ValueError(
                f"offset {offset} outside region of {region.size} B"
            )
        self.cluster = cluster
        self.region = region
        self.offset = offset
        self.tracker = tracker
        self.dereferences = 0

    def mode(self, observer: str) -> str:
        """'direct' when the observer can load/store the backing device."""
        if self.cluster.topology.addressable(observer, self.region.device.name):
            return "direct"
        return "remote"

    def dereference(self, observer: str, nbytes: int = 64):
        """Generator: touch ``nbytes`` at the pointer via the right mode.

        Records the access in the hotness tracker.  Returns the access
        duration in ns.
        """
        from repro.memory.interfaces import AccessMode, Accessor, AccessPattern

        self.region.check_alive()
        owner = next(iter(self.region.ownership.owners))
        handle = self.region.handle(owner)
        accessor = Accessor(self.cluster, handle, observer)
        mode = AccessMode.SYNC if self.mode(observer) == "direct" else AccessMode.ASYNC
        self.dereferences += 1
        if self.tracker is not None:
            self.tracker.record(self.region.id, nbytes, self.cluster.engine.now)
        duration = yield from accessor.read(
            min(nbytes, self.region.size), pattern=AccessPattern.RANDOM, mode=mode,
            access_size=min(nbytes, self.region.size),
        )
        return duration

    def __repr__(self) -> str:
        return (
            f"<RemotePointer {self.region.name}+{self.offset} "
            f"on {self.region.device.name}>"
        )
