"""Refcounted read-only shared regions (the KV prefix-cache substrate).

The ownership model (:mod:`repro.memory.ownership`) already supports
shared regions: an owner set that widens with ``share`` and shrinks
with ``drop``, freeing the backing memory when the last owner leaves.
:class:`SharedRegionCache` packages that into the lifecycle a reuse
cache needs — the pattern LLM serving stacks apply to KV-cache prefix
blocks:

* the cache itself holds one reference to every inserted region, so a
  cached region survives between readers;
* readers :meth:`~SharedRegionCache.acquire` a reference before touching
  the region and :meth:`~SharedRegionCache.release` it when done —
  the region is *pinned* while any reader holds it;
* :meth:`~SharedRegionCache.forget` evicts an entry from the index
  immediately, but the backing region is only freed once its last
  reader drains (deferred reclamation, never use-after-free);
* a reader that crashes is cleaned up by whoever owns its lifecycle
  (the runtime's recovery path drops job-owned references); the cache's
  own reference keeps the region alive through the crash.

Every transition delegates to the :class:`~repro.memory.manager.
MemoryManager`, so shares, drops, and the final free all land in the
trace like any other ownership operation.
"""

from __future__ import annotations

import typing

from repro.memory.manager import MemoryManager
from repro.memory.ownership import NotOwnerError, OwnershipError
from repro.memory.region import MemoryRegion


class SharedRegionError(OwnershipError):
    """A shared-region cache protocol violation (double release, ...)."""


class CacheEntry:
    """One cached region: the backing memory plus its reader set."""

    def __init__(self, key: typing.Hashable, region: MemoryRegion):
        self.key = key
        self.region = region
        #: Reader tokens currently holding a reference.
        self.readers: typing.Set[typing.Hashable] = set()
        #: Evicted from the index while readers were live: the cache's
        #: own reference drops when the last reader releases.
        self.dying = False
        #: Lifetime counters (telemetry / leak audits).
        self.acquisitions = 0
        self.last_used_at = 0.0

    @property
    def ref_count(self) -> int:
        """Live reader references (the cache's own ref not counted)."""
        return len(self.readers)

    @property
    def pinned(self) -> bool:
        """Whether eviction must defer (any reader still holds a ref)."""
        return bool(self.readers)


class SharedRegionCache:
    """Keyed cache of refcounted, read-only shared memory regions.

    The cache owns one reference per entry under its ``owner`` token;
    regions must be inserted with that token already owning them
    (allocate with ``owner=cache.owner``).  All reference transitions
    go through the memory manager, so the backing region is freed by
    the ordinary last-drop hook — there is no separate reclaim path to
    get wrong.
    """

    def __init__(self, memory: MemoryManager, owner: typing.Hashable):
        self.memory = memory
        self.owner = owner
        self._entries: typing.Dict[typing.Hashable, CacheEntry] = {}
        #: Entries evicted while pinned, keyed by region id: invisible
        #: to lookups but still holding memory until readers drain.
        self._dying: typing.Dict[int, CacheEntry] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.deferred_evictions = 0

    # -- index -------------------------------------------------------------

    def __contains__(self, key: typing.Hashable) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def keys(self) -> typing.List[typing.Hashable]:
        """The cached keys (insertion order)."""
        return list(self._entries)

    def get(self, key: typing.Hashable) -> typing.Optional[CacheEntry]:
        """The live entry for ``key``, or None (does not take a ref)."""
        return self._entries.get(key)

    def pinned_bytes(self) -> int:
        """Bytes held by all entries, including dying ones."""
        live = sum(e.region.size for e in self._entries.values())
        return live + sum(e.region.size for e in self._dying.values())

    # -- lifecycle ---------------------------------------------------------

    def insert(self, key: typing.Hashable, region: MemoryRegion) -> CacheEntry:
        """Adopt ``region`` (already owned by ``self.owner``) under ``key``.

        The cache's ownership reference is the one that keeps the
        region alive between readers.  Inserting over an existing live
        key is a protocol violation — :meth:`forget` it first.
        """
        if key in self._entries:
            raise SharedRegionError(f"key {key!r} is already cached")
        if not region.ownership.is_owner(self.owner):
            raise NotOwnerError(
                f"region {region.name!r} is not owned by the cache token "
                f"{self.owner!r}; allocate it with owner=cache.owner"
            )
        entry = CacheEntry(key, region)
        self._entries[key] = entry
        return entry

    def acquire(self, key: typing.Hashable, reader: typing.Hashable,
                now: float = 0.0):
        """Take one reference for ``reader``; returns a region handle.

        The reader joins the region's shared owner set, pinning it:
        eviction and release of other readers cannot free the region
        until this reader calls :meth:`release`.  A reader may hold at
        most one reference per key.
        """
        entry = self._entries.get(key)
        if entry is None:
            raise KeyError(f"key {key!r} is not cached")
        if reader in entry.readers:
            raise SharedRegionError(
                f"reader {reader!r} already holds a reference to {key!r}"
            )
        self.memory.share(entry.region, self.owner, [reader])
        entry.readers.add(reader)
        entry.acquisitions += 1
        entry.last_used_at = now
        self.hits += 1
        return entry.region.handle(reader)

    def release(self, key: typing.Hashable, reader: typing.Hashable) -> bool:
        """Drop ``reader``'s reference; True when the region was freed.

        Releasing a reference you do not hold — including releasing the
        same reference twice — raises :class:`SharedRegionError`.  If
        the reader's ownership was already torn down externally (a
        crashed job's recovery drops its owners), the cache bookkeeping
        is still settled here without double-dropping.
        """
        entry = self._entries.get(key)
        if entry is None:
            # The key may have been evicted while this reader held it.
            entry = next(
                (e for e in self._dying.values() if e.key == key
                 and reader in e.readers),
                None,
            )
        if entry is None or reader not in entry.readers:
            raise SharedRegionError(
                f"reader {reader!r} holds no reference to {key!r} "
                f"(double release?)"
            )
        entry.readers.discard(reader)
        freed = False
        try:
            self.memory.drop_owner(entry.region, reader)
        except (NotOwnerError, OwnershipError):
            # Recovery already dropped the crashed reader's ownership;
            # the cache's reference kept the region alive regardless.
            pass
        if entry.dying and not entry.readers:
            freed = self._drop_own_ref(entry)
        return freed

    def forget(self, key: typing.Hashable) -> bool:
        """Evict ``key`` from the index; True when the region was freed.

        With live readers the region stays allocated (pinned) and only
        the *index* entry disappears; the cache's own reference is
        dropped by the last reader's :meth:`release`.
        """
        entry = self._entries.pop(key, None)
        if entry is None:
            raise KeyError(f"key {key!r} is not cached")
        self.evictions += 1
        if entry.readers:
            entry.dying = True
            self._dying[entry.region.id] = entry
            self.deferred_evictions += 1
            return False
        return self._drop_own_ref(entry)

    def drain(self) -> int:
        """Evict everything (end of run); returns entries freed *now*.

        Entries still pinned by readers linger in the dying set and
        free on their readers' final release — :meth:`outstanding`
        reports them, which is the leak audit benches assert on.
        """
        freed = 0
        for key in list(self._entries):
            if self.forget(key):
                freed += 1
        return freed

    def _drop_own_ref(self, entry: CacheEntry) -> bool:
        self._dying.pop(entry.region.id, None)
        if not entry.region.alive:
            return False  # lost to a fault; nothing left to free
        try:
            return self.memory.drop_owner(entry.region, self.owner)
        except (NotOwnerError, OwnershipError):
            return False

    # -- audits ------------------------------------------------------------

    def outstanding(self) -> typing.Dict[typing.Hashable, int]:
        """key -> live reader reference count, for every pinned entry.

        Empty at the end of a leak-free run: every acquire was paired
        with a release, so all shared regions drained to refcount 0.
        """
        report = {
            e.key: e.ref_count
            for e in self._entries.values() if e.readers
        }
        report.update({
            e.key: e.ref_count
            for e in self._dying.values() if e.readers
        })
        return report


__all__ = ["CacheEntry", "SharedRegionCache", "SharedRegionError"]
