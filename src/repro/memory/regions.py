"""Predefined Memory Regions — the paper's Table 2.

The programming model pre-defines region types that bundle the property
sets dataflow systems keep asking for:

=================  ==============================  =======================
Region             Properties (Table 2)            Purpose
=================  ==============================  =======================
Private Scratch    noncoherent ok, sync, low lat   thread-local data
Global State       coherent, sync                  syncing tasks
Global Scratch     coherent ok, async, roomy       data exchange
Input / Output     transferable, medium lat        dataflow edges (Fig. 4)
=================  ==============================  =======================

``INPUT``/``OUTPUT`` are not in Table 2 but are the regions Figure 4
builds the ownership-transfer story on, so the model predefines them
too.
"""

from __future__ import annotations

import enum

from repro.memory.properties import BandwidthClass, LatencyClass, MemoryProperties


class RegionType(enum.Enum):
    """The predefined Memory Regions of the paper's Table 2 (+ edges)."""
    PRIVATE_SCRATCH = "private_scratch"
    GLOBAL_STATE = "global_state"
    GLOBAL_SCRATCH = "global_scratch"
    INPUT = "input"
    OUTPUT = "output"


_DEFAULTS = {
    # Thread-local: never shared, so coherence may be relaxed; it is hot
    # working memory, so it must be fast and synchronously addressable.
    RegionType.PRIVATE_SCRATCH: MemoryProperties(
        latency=LatencyClass.LOW,
        bandwidth=BandwidthClass.MEDIUM,
        coherent=None,
        sync=True,
    ),
    # Application-global synchronization state: strict coherence and
    # strong ordering; expected slow (accessible from everywhere), so
    # latency requirements are relaxed.
    RegionType.GLOBAL_STATE: MemoryProperties(
        latency=LatencyClass.MEDIUM,
        bandwidth=BandwidthClass.ANY,
        coherent=True,
        sync=True,
    ),
    # Cross-task data exchange for unconnected tasks; asynchronous
    # interface expected (threads should not block on far loads), so it
    # can live far away; capacity over speed.
    RegionType.GLOBAL_SCRATCH: MemoryProperties(
        latency=LatencyClass.HIGH,
        bandwidth=BandwidthClass.LOW,
        coherent=None,
        sync=None,
    ),
    # Dataflow edges: the output of one task that becomes the input of
    # the next.  Needs to be reachable by both sides; medium latency.
    RegionType.INPUT: MemoryProperties(
        latency=LatencyClass.MEDIUM,
        bandwidth=BandwidthClass.MEDIUM,
        sync=None,
    ),
    RegionType.OUTPUT: MemoryProperties(
        latency=LatencyClass.MEDIUM,
        bandwidth=BandwidthClass.MEDIUM,
        sync=None,
    ),
}


import dataclasses
import typing


@dataclasses.dataclass(frozen=True)
class CustomRegionType:
    """A user-named Memory Region type (quacks like :class:`RegionType`)."""

    value: str

    @property
    def name(self) -> str:  # enum-compatible spelling
        return self.value.upper().replace("-", "_")


#: User-defined named regions: name -> (type object, properties).
_CUSTOM: typing.Dict[str, typing.Tuple[CustomRegionType, MemoryProperties]] = {}


def define_region_type(
    name: str, properties: MemoryProperties
) -> CustomRegionType:
    """Name a property bundle, as the paper prescribes (§2.2(1)):
    *"We group properties that are often used together and name the
    resulting Memory Region."*

    The returned type object can be passed anywhere a predefined
    :class:`RegionType` goes — placement requests, task contexts, the
    census.  Re-defining an existing name with identical properties is
    idempotent; with different properties it raises.
    """
    if not name:
        raise ValueError("region type name may not be empty")
    normalized = name.strip().lower()
    if any(normalized == rt.value for rt in RegionType):
        raise ValueError(f"{name!r} shadows a predefined region type")
    existing = _CUSTOM.get(normalized)
    if existing is not None:
        if existing[1] != properties:
            raise ValueError(
                f"region type {name!r} already defined with different "
                "properties"
            )
        return existing[0]
    region_type = CustomRegionType(normalized)
    _CUSTOM[normalized] = (region_type, properties)
    return region_type


def lookup_region_type(
    name: str,
) -> typing.Union[RegionType, CustomRegionType]:
    """Resolve a region-type name: predefined first, then user-defined."""
    normalized = name.strip().lower()
    for region_type in RegionType:
        if region_type.value == normalized:
            return region_type
    if normalized in _CUSTOM:
        return _CUSTOM[normalized][0]
    raise KeyError(f"no region type named {name!r}")


def region_properties(
    region_type: typing.Union[RegionType, CustomRegionType, str],
) -> MemoryProperties:
    """The property set for a predefined or user-named region type."""
    if isinstance(region_type, str):
        region_type = lookup_region_type(region_type)
    if isinstance(region_type, CustomRegionType):
        return _CUSTOM[region_type.value][1]
    return _DEFAULTS[region_type]
