"""Coherence costs for *shared* memory regions.

The paper's ownership model (§2.2(2)) draws exactly this line:

* memory **exclusively owned** by a task can relax consistency
  guarantees and memory ordering — no other cache can hold it, so no
  coherence traffic exists;
* memory with **shared ownership** "puts additional requirements on the
  Memory Region, i.e., being cache-coherent or having strict memory
  ordering" — and coherence is not free.

:class:`CoherenceModel` charges that price with a directory-style MOESI
abstraction at region granularity:

* the model learns which compute device each sharer accesses from;
* a **write** to a region shared by N observers invalidates the other
  caches: one round trip to the farthest sharer (invalidations go out
  in parallel) plus a per-sharer directory cost;
* a **read** following a *foreign* write misses and fetches the dirty
  line from the writer's side: one writer→reader round trip.

Exclusive regions, and shared regions touched by a single observer,
pay nothing — making the ownership distinction measurable, not just
documented.
"""

from __future__ import annotations

import typing
import weakref

from repro.memory.ownership import OwnershipMode
from repro.memory.region import MemoryRegion

#: Directory/protocol processing cost per invalidated sharer (ns).
DIRECTORY_COST_PER_SHARER_NS = 10.0

_registry: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


class CoherenceModel:
    """Per-cluster coherence cost accounting."""

    def __init__(self, cluster):
        self.cluster = cluster
        #: region id -> {observer name -> last access time}
        self._sharers: typing.Dict[int, typing.Dict[str, float]] = {}
        #: region id -> observer that wrote last (None = clean)
        self._last_writer: typing.Dict[int, typing.Optional[str]] = {}
        self.invalidations = 0
        self.dirty_misses = 0
        self.total_penalty_ns = 0.0

    @classmethod
    def for_cluster(cls, cluster) -> "CoherenceModel":
        """The (per-cluster singleton) coherence model for ``cluster``."""
        model = _registry.get(cluster)
        if model is None:
            model = cls(cluster)
            _registry[cluster] = model
        return model

    # -- cost computation -------------------------------------------------

    def access_penalty(
        self, region: MemoryRegion, observer: str, is_write: bool
    ) -> float:
        """Extra latency (ns) this access pays for coherence, and update
        the sharing state.  Exclusive regions always return 0."""
        if region.ownership.mode is not OwnershipMode.SHARED:
            # Exclusive ownership: by construction no other cache can
            # hold the data (the paper's relaxed-consistency case).
            self._sharers.pop(region.id, None)
            self._last_writer.pop(region.id, None)
            return 0.0

        now = self.cluster.engine.now
        sharers = self._sharers.setdefault(region.id, {})
        others = [name for name in sharers if name != observer]
        penalty = 0.0

        if is_write and others:
            # Parallel invalidations: pay the farthest round trip plus
            # per-sharer directory work.
            farthest = max(
                self._round_trip(observer, other) for other in others
            )
            penalty += farthest + DIRECTORY_COST_PER_SHARER_NS * len(others)
            self.invalidations += len(others)
        elif not is_write:
            last_writer = self._last_writer.get(region.id)
            if last_writer is not None and last_writer != observer:
                # Dirty miss: fetch the modified data from the writer.
                # The line leaves Modified state, so subsequent reads by
                # anyone are clean until the next write.
                penalty += self._round_trip(observer, last_writer)
                self.dirty_misses += 1
                self._last_writer[region.id] = None

        sharers[observer] = now
        if is_write:
            self._last_writer[region.id] = observer
        self.total_penalty_ns += penalty
        return penalty

    def forget(self, region_id: int) -> None:
        """Drop all sharing state for a region (e.g. after free)."""
        self._sharers.pop(region_id, None)
        self._last_writer.pop(region_id, None)

    def sharers_of(self, region: MemoryRegion) -> typing.List[str]:
        """The observers currently caching this region, sorted."""
        return sorted(self._sharers.get(region.id, {}))

    # -- internals -------------------------------------------------------

    def _round_trip(self, a: str, b: str) -> float:
        try:
            return 2.0 * self.cluster.topology.path_latency(a, b)
        except Exception:
            return 2.0 * DIRECTORY_COST_PER_SHARER_NS
