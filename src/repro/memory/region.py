"""Memory Regions: logical, typed views onto physical memory.

A :class:`MemoryRegion` is the paper's central object (§2.2(1)):
*declared and identified by its properties, not by its location*.  The
region remembers the request (properties + size), the physical backing
the runtime chose (a device + an offset-level allocation), and its
ownership record.  Tasks never hold regions directly — they hold
:class:`RegionHandle` objects stamped with the ownership epoch, so a
handle kept across an ownership transfer is *stale* and every use fails
loudly (move semantics, Figure 4).
"""

from __future__ import annotations

import enum
import typing
from itertools import count

from repro.hardware.devices import MemoryDevice
from repro.memory.allocator import Allocation
from repro.memory.ownership import OwnershipRecord, UseAfterTransferError
from repro.memory.properties import MemoryProperties

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.memory.regions import RegionType


class RegionState(enum.Enum):
    """Lifecycle of a region: active, migrating, freed, or lost."""
    ACTIVE = "active"
    MIGRATING = "migrating"  # being moved between devices
    FREED = "freed"  # deallocated (normal end of life)
    LOST = "lost"  # backing device failed with no redundancy


class MemoryRegion:
    """One logical memory region and its current physical backing."""

    _ids = count()

    def __init__(
        self,
        size: int,
        properties: MemoryProperties,
        device: MemoryDevice,
        allocation: Allocation,
        owner: typing.Hashable,
        name: str = "",
        region_type: typing.Optional["RegionType"] = None,
        created_at: float = 0.0,
    ):
        self.id = next(MemoryRegion._ids)
        self.name = name or f"region-{self.id}"
        self.size = size
        self.properties = properties
        self.device = device
        self.allocation = allocation
        self.region_type = region_type
        self.ownership = OwnershipRecord(owner)
        self.state = RegionState.ACTIVE
        self.created_at = created_at
        self.freed_at: typing.Optional[float] = None
        self.migrations = 0
        #: Confidential data placed on non-isolated (shared/pooled) media
        #: is encrypted at rest; accesses then pay crypto cycles on the
        #: observing compute device (see repro.memory.interfaces).
        self.encrypted = False
        #: Cumulative bytes written through access interfaces — the
        #: dirty-tracking signal the checkpoint service watches.
        self.bytes_written = 0.0

    @property
    def alive(self) -> bool:
        return self.state in (RegionState.ACTIVE, RegionState.MIGRATING)

    def handle(self, actor: typing.Hashable) -> "RegionHandle":
        """Issue an epoch-stamped handle for ``actor`` (must be an owner)."""
        self.ownership.check_access(actor)
        return RegionHandle(self, actor, self.ownership.epoch)

    def check_alive(self) -> None:
        """Raise if the region has been freed or lost."""
        if self.state is RegionState.FREED:
            raise UseAfterTransferError(f"{self.name} has been freed")
        if self.state is RegionState.LOST:
            raise RegionLostError(f"{self.name} was lost to a device failure")

    def __repr__(self) -> str:
        return (
            f"<MemoryRegion {self.name} {self.size}B on {self.device.name} "
            f"{self.state.value}>"
        )


class RegionLostError(Exception):
    """The backing device failed and the region had no redundancy."""


class RegionHandle:
    """A task's capability to one region at one ownership epoch.

    Handles are cheap value objects; :meth:`validate` is called by every
    access interface operation, so using a handle after the region was
    transferred, freed, or lost raises immediately.
    """

    __slots__ = ("region", "actor", "epoch")

    def __init__(self, region: MemoryRegion, actor: typing.Hashable, epoch: int):
        self.region = region
        self.actor = actor
        self.epoch = epoch

    def validate(self) -> None:
        """Raise unless the handle's owner and epoch are still current."""
        self.region.check_alive()
        self.region.ownership.check_access(self.actor, epoch=self.epoch)

    @property
    def valid(self) -> bool:
        try:
            self.validate()
        except Exception:
            return False
        return True

    def __repr__(self) -> str:
        return f"<RegionHandle {self.region.name} actor={self.actor!r} epoch={self.epoch}>"
