"""Offset-level allocation on a single memory device.

A classic address-ordered first-fit free-list allocator with eager
coalescing.  It is deliberately simple and heavily invariant-checked:
the hypothesis property tests in ``tests/memory/test_allocator.py`` run
arbitrary alloc/free interleavings against it.

Allocation granularity is rounded up to the device's access granularity
so capacity accounting matches the bytes the media actually dedicates.
"""

from __future__ import annotations

import dataclasses
import typing
from itertools import count


class AllocationError(Exception):
    """No contiguous range large enough is available."""


@dataclasses.dataclass(frozen=True)
class Allocation:
    """A live allocated range ``[offset, offset + size)``."""

    id: int
    offset: int
    size: int  # rounded (accounted) size in bytes
    requested: int  # size the caller asked for


class FreeListAllocator:
    """Address-ordered first-fit allocator with coalescing free list."""

    _ids = count()

    def __init__(self, capacity: int, granularity: int = 1):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if granularity <= 0:
            raise ValueError(f"granularity must be positive, got {granularity}")
        self.capacity = capacity
        self.granularity = granularity
        #: sorted list of (offset, size) free extents
        self._free: typing.List[typing.Tuple[int, int]] = [(0, capacity)]
        #: cached max extent size; dirty when an allocation may have
        #: shrunk the current maximum (frees only ever raise it).
        self._largest: int = capacity
        self._largest_dirty: bool = False
        self._live: typing.Dict[int, Allocation] = {}
        self.allocated_bytes = 0
        self.peak_bytes = 0
        self.alloc_count = 0
        self.free_count = 0
        self.failed_allocs = 0

    def _round(self, size: int) -> int:
        g = self.granularity
        return ((size + g - 1) // g) * g

    def allocate(self, size: int) -> Allocation:
        """First-fit allocate ``size`` bytes (rounded to granularity)."""
        if size <= 0:
            raise ValueError(f"allocation size must be positive, got {size}")
        rounded = self._round(size)
        for index, (offset, extent) in enumerate(self._free):
            if extent >= rounded:
                if extent == rounded:
                    del self._free[index]
                else:
                    self._free[index] = (offset + rounded, extent - rounded)
                if extent >= self._largest:
                    # We may have carved up the (sole) largest extent;
                    # recompute lazily on the next probe.
                    self._largest_dirty = True
                allocation = Allocation(
                    id=next(FreeListAllocator._ids),
                    offset=offset, size=rounded, requested=size,
                )
                self._live[allocation.id] = allocation
                self.allocated_bytes += rounded
                self.peak_bytes = max(self.peak_bytes, self.allocated_bytes)
                self.alloc_count += 1
                return allocation
        self.failed_allocs += 1
        raise AllocationError(
            f"no extent of {rounded} B available "
            f"(free={self.free_bytes} B in {len(self._free)} extents)"
        )

    def free(self, allocation: Allocation) -> None:
        """Return an allocation to the free list, coalescing neighbours."""
        live = self._live.pop(allocation.id, None)
        if live is None:
            raise ValueError(f"allocation {allocation.id} is not live (double free?)")
        self.allocated_bytes -= live.size
        self.free_count += 1
        self._insert_free(live.offset, live.size)

    def _insert_free(self, offset: int, size: int) -> None:
        # Binary-search insertion point in the address-ordered list.
        lo, hi = 0, len(self._free)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._free[mid][0] < offset:
                lo = mid + 1
            else:
                hi = mid
        self._free.insert(lo, (offset, size))
        # Coalesce with successor, then predecessor.
        merged = size
        if lo + 1 < len(self._free):
            noff, nsize = self._free[lo + 1]
            if offset + size == noff:
                merged = size + nsize
                self._free[lo] = (offset, merged)
                del self._free[lo + 1]
        if lo > 0:
            poff, psize = self._free[lo - 1]
            coff, csize = self._free[lo]
            if poff + psize == coff:
                merged = psize + csize
                self._free[lo - 1] = (poff, merged)
                del self._free[lo]
        # Inserting/coalescing free space can only *raise* the maximum,
        # so the cache stays valid in O(1) even when it was clean.  The
        # cache is an upper bound while dirty, so an extent beating it
        # is exactly the new maximum and the flag can clear.
        if merged > self._largest:
            self._largest = merged
            self._largest_dirty = False

    # -- introspection ---------------------------------------------------

    @property
    def free_bytes(self) -> int:
        return self.capacity - self.allocated_bytes

    @property
    def largest_free_extent(self) -> int:
        if self._largest_dirty:
            self._largest = max((size for _, size in self._free), default=0)
            self._largest_dirty = False
        return self._largest

    @property
    def fragmentation(self) -> float:
        """1 - largest_free/total_free; 0 when free space is contiguous."""
        free = self.free_bytes
        if free == 0:
            return 0.0
        return 1.0 - self.largest_free_extent / free

    def live_allocations(self) -> typing.List[Allocation]:
        """Snapshot of all currently live allocations."""
        return list(self._live.values())

    def check_invariants(self) -> None:
        """Raise AssertionError if internal bookkeeping is inconsistent.

        Used by the property tests; cheap enough to call after every op.
        """
        spans = sorted(
            [(a.offset, a.size, "live") for a in self._live.values()]
            + [(off, size, "free") for off, size in self._free]
        )
        cursor = 0
        for offset, size, _kind in spans:
            assert offset == cursor, f"gap/overlap at {offset} (expected {cursor})"
            assert size > 0, "zero-size span"
            cursor = offset + size
        assert cursor == self.capacity, f"spans cover {cursor}, capacity {self.capacity}"
        assert self.allocated_bytes == sum(a.size for a in self._live.values())
        # Free list must be coalesced: no adjacent free extents.
        for (o1, s1), (o2, _s2) in zip(self._free, self._free[1:]):
            assert o1 + s1 < o2, f"uncoalesced free extents at {o1}+{s1} and {o2}"

    def __repr__(self) -> str:
        return (
            f"<FreeListAllocator {self.allocated_bytes}/{self.capacity} B live, "
            f"{len(self._free)} free extents>"
        )
