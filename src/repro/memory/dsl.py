"""A tiny declarative surface syntax for properties.

The paper's vision is *declarative*: developers state requirements in
configuration-like cards (Figure 2c).  This module gives the library
that textual surface, so properties can live in config files, CLI
arguments, or notebooks:

>>> parse_properties("latency<=low, bandwidth>=medium, sync, confidential")
MemoryProperties(latency=<LatencyClass.LOW: 0>, ...)

>>> parse_task_card("compute=gpu confidential=true persistent=false "
...                 "mem_latency=low")
TaskProperties(compute=<ComputeKind.GPU: 'gpu'>, ...)

Both parsers round-trip with the corresponding ``describe()`` methods.
"""

from __future__ import annotations

import typing

from repro.hardware.spec import ComputeKind
from repro.memory.properties import BandwidthClass, LatencyClass, MemoryProperties

if typing.TYPE_CHECKING:  # pragma: no cover - layering: dataflow sits above
    from repro.dataflow.properties import TaskProperties


class PropertySyntaxError(ValueError):
    """The property string does not parse."""


_FLAG_FIELDS = {"persistent": "persistent", "coherent": "coherent",
                "sync": "sync", "confidential": "confidential"}
_LATENCY_KEYS = ("latency", "lat")
_BANDWIDTH_KEYS = ("bandwidth", "bw")


def parse_properties(text: str) -> MemoryProperties:
    """Parse a comma/space-separated property request string.

    Tokens: ``latency<=low|medium|high|any``, ``bandwidth>=high|medium|
    low|any``, and the flags ``persistent``/``coherent``/``sync``/
    ``confidential`` (presence = required).
    """
    values: typing.Dict[str, object] = {}
    for raw in _tokens(text):
        token = raw.strip().lower()
        if not token:
            continue
        if "<=" in token:
            key, _, value = token.partition("<=")
            if key.strip() not in _LATENCY_KEYS:
                raise PropertySyntaxError(
                    f"only latency supports '<=', got {raw!r}"
                )
            values["latency"] = _parse_enum(LatencyClass, value)
        elif ">=" in token:
            key, _, value = token.partition(">=")
            if key.strip() not in _BANDWIDTH_KEYS:
                raise PropertySyntaxError(
                    f"only bandwidth supports '>=', got {raw!r}"
                )
            values["bandwidth"] = _parse_enum(BandwidthClass, value)
        elif "=" in token:
            key, _, value = token.partition("=")
            key = key.strip()
            if key not in _FLAG_FIELDS:
                raise PropertySyntaxError(f"unknown property {key!r}")
            values[_FLAG_FIELDS[key]] = _parse_bool(value)
        elif token in _FLAG_FIELDS:
            values[_FLAG_FIELDS[token]] = True
        else:
            raise PropertySyntaxError(f"unknown property token {raw!r}")
    return MemoryProperties(**values)


def parse_task_card(text: str) -> "TaskProperties":
    """Parse a Figure 2c task property card.

    Fields: ``compute=cpu|gpu|tpu|fpga|dpu``, ``confidential=true|false``,
    ``persistent=true|false``, ``mem_latency=low|medium|high|any``,
    ``streaming`` (flag).
    """
    # Imported here: the dataflow layer sits above the memory layer, and
    # importing it at module scope would be circular.
    from repro.dataflow.properties import TaskProperties

    values: typing.Dict[str, object] = {}
    for raw in _tokens(text):
        token = raw.strip().lower()
        if not token:
            continue
        if token == "streaming":
            values["streaming"] = True
            continue
        if "=" not in token:
            raise PropertySyntaxError(f"task cards use key=value, got {raw!r}")
        key, _, value = token.partition("=")
        key, value = key.strip(), value.strip()
        if key in ("compute", "comp. device", "comp.device"):
            values["compute"] = _parse_enum(ComputeKind, value)
        elif key == "confidential":
            values["confidential"] = _parse_bool(value)
        elif key == "persistent":
            values["persistent"] = _parse_bool(value)
        elif key in ("mem_latency", "mem. latency", "mem.latency"):
            if value in ("-", "any", "none"):
                values["mem_latency"] = None
            else:
                values["mem_latency"] = _parse_enum(LatencyClass, value)
        elif key == "streaming":
            values["streaming"] = _parse_bool(value)
        else:
            raise PropertySyntaxError(f"unknown card field {key!r}")
    return TaskProperties(**values)


def _tokens(text: str) -> typing.List[str]:
    if text is None:
        raise PropertySyntaxError("property string may not be None")
    # Commas are the primary separator; bare spaces also split tokens as
    # long as they are not part of a key like 'mem. latency'.
    normalized = text.replace("mem. latency", "mem_latency")
    normalized = normalized.replace("comp. device", "compute")
    pieces: typing.List[str] = []
    for chunk in normalized.split(","):
        pieces.extend(chunk.split())
    return pieces


def _parse_enum(enum_cls, value: str):
    name = value.strip().upper()
    try:
        return enum_cls[name]
    except KeyError:
        options = ", ".join(m.name.lower() for m in enum_cls)
        raise PropertySyntaxError(
            f"{value!r} is not one of: {options}"
        ) from None


def _parse_bool(value: str) -> bool:
    value = value.strip().lower()
    if value in ("true", "yes", "1"):
        return True
    if value in ("false", "no", "0"):
        return False
    raise PropertySyntaxError(f"expected a boolean, got {value!r}")
