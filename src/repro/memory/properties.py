"""The property algebra: declarative memory requirements.

The paper's key move (§2.1–2.2) is that applications request memory by
**properties** instead of by device: "low latency from my compute
device, persistent, coherent".  This module defines

* the requirement vocabulary (:class:`MemoryProperties`) used in
  requests,
* the offer vocabulary (:class:`OfferedProperties`) describing what a
  concrete device provides *as seen from a given compute device* — the
  same physical device offers different classes to different observers,
  which is exactly Figure 3's point — and
* the matching relation :meth:`OfferedProperties.satisfies`.

Class thresholds are defined on end-to-end round-trip latency and
bottleneck bandwidth so that "low latency" means the same thing no
matter which device/fabric combination provides it.
"""

from __future__ import annotations

import dataclasses
import enum
import typing


class LatencyClass(enum.IntEnum):
    """Required *maximum* access latency, coarsened into classes.

    Lower enum value = stricter requirement.  An offer of class X
    satisfies any request of class >= X.
    """

    LOW = 0  # DRAM-like: rtt <= 500 ns
    MEDIUM = 1  # CXL/NUMA-like: rtt <= 5 us
    HIGH = 2  # far memory / fast storage: rtt <= 100 us
    ANY = 3  # whatever, including disk

    @staticmethod
    def classify(rtt_ns: float) -> "LatencyClass":
        if rtt_ns <= 500.0:
            return LatencyClass.LOW
        if rtt_ns <= 5_000.0:
            return LatencyClass.MEDIUM
        if rtt_ns <= 100_000.0:
            return LatencyClass.HIGH
        return LatencyClass.ANY


class BandwidthClass(enum.IntEnum):
    """Required *minimum* bandwidth, coarsened into classes.

    Lower enum value = stricter requirement (more bandwidth).
    """

    HIGH = 0  # >= 100 B/ns (HBM/GDDR/DRAM)
    MEDIUM = 1  # >= 10 B/ns (CXL, NIC fabrics)
    LOW = 2  # >= 1 B/ns (PMem, SSD)
    ANY = 3  # anything > 0

    @staticmethod
    def classify(bytes_per_ns: float) -> "BandwidthClass":
        if bytes_per_ns >= 100.0:
            return BandwidthClass.HIGH
        if bytes_per_ns >= 10.0:
            return BandwidthClass.MEDIUM
        if bytes_per_ns >= 1.0:
            return BandwidthClass.LOW
        return BandwidthClass.ANY


@dataclasses.dataclass(frozen=True)
class MemoryProperties:
    """A declarative memory request (what the application needs).

    ``None`` for the tri-state fields means "don't care".  This is the
    property set the paper attaches to tasks and dataflows (Figure 2c)
    and to memory regions (Table 2).
    """

    latency: LatencyClass = LatencyClass.ANY
    bandwidth: BandwidthClass = BandwidthClass.ANY
    persistent: typing.Optional[bool] = None
    coherent: typing.Optional[bool] = None
    sync: typing.Optional[bool] = None  # needs a synchronous ld/st interface
    confidential: bool = False

    def merged_with(self, other: "MemoryProperties") -> "MemoryProperties":
        """Combine two requirement sets, keeping the stricter of each.

        Raises :class:`ValueError` on contradictions (e.g. one side
        demands persistent=True, the other persistent=False).
        """

        def strict_tristate(name: str, a, b):
            if a is None:
                return b
            if b is None:
                return a
            if a != b:
                raise ValueError(f"contradictory requirement for {name}: {a} vs {b}")
            return a

        return MemoryProperties(
            latency=min(self.latency, other.latency),
            bandwidth=min(self.bandwidth, other.bandwidth),
            persistent=strict_tristate("persistent", self.persistent, other.persistent),
            coherent=strict_tristate("coherent", self.coherent, other.coherent),
            sync=strict_tristate("sync", self.sync, other.sync),
            confidential=self.confidential or other.confidential,
        )

    def describe(self) -> str:
        """Human-readable one-line rendering (parseable by the DSL)."""
        parts = [f"lat<={self.latency.name}", f"bw>={self.bandwidth.name}"]
        for name in ("persistent", "coherent", "sync"):
            value = getattr(self, name)
            if value is not None:
                parts.append(f"{name}={value}")
        if self.confidential:
            parts.append("confidential")
        return " ".join(parts)


@dataclasses.dataclass(frozen=True)
class OfferedProperties:
    """What one device offers as observed from one compute device.

    Built by the runtime's placement layer from the device spec plus the
    fabric path (latency, bottleneck bandwidth, addressability,
    coherence of the path).  Matching a request against an offer is a
    pure function so the optimizer can evaluate thousands of candidates
    cheaply.
    """

    latency: LatencyClass
    bandwidth: BandwidthClass
    persistent: bool
    coherent: bool  # device AND entire path are cache-coherent
    sync: bool  # device supports sync ld/st AND path is addressable
    isolated: bool  # acceptable for confidential data
    rtt_ns: float  # raw numbers kept for cost ranking
    bytes_per_ns: float

    def satisfies(self, request: MemoryProperties) -> bool:
        """Does this offer meet every requirement of ``request``?"""
        if self.latency > request.latency:
            return False
        if self.bandwidth > request.bandwidth:
            return False
        if request.persistent is not None and self.persistent != request.persistent:
            # Note: persistent=False means "must NOT be persistent" is too
            # strict a reading; a persistent device can hold volatile data.
            if request.persistent and not self.persistent:
                return False
        if request.coherent is not None and request.coherent and not self.coherent:
            return False
        if request.sync is not None and request.sync and not self.sync:
            return False
        if request.confidential and not self.isolated:
            return False
        return True
