"""Memory ownership: exclusive / shared, with move-style transfer.

Implements the paper's ownership concept (§2.2(2), Figure 4):

* every chunk of allocated memory is **exclusively owned** by one task
  (relaxed consistency possible) or **shared** among concurrent tasks
  (stricter requirements on the backing region), and
* exclusive ownership can be **transferred** to the next task in the
  dataflow — "the out becomes the new in" — like C++ move semantics:
  after a transfer the previous owner's handles are invalid and using
  them raises :class:`UseAfterTransferError`.

Owners are opaque hashable tokens (task ids, job ids, or the string
names the tests use).  Deallocation hooks fire when the last owner
drops, which is how the runtime frees regions (paper §2.3, RTS duty 3).
"""

from __future__ import annotations

import enum
import typing


class OwnershipError(Exception):
    """Base class for ownership-protocol violations."""


class NotOwnerError(OwnershipError):
    """An actor operated on memory it does not own."""


class UseAfterTransferError(OwnershipError):
    """A stale handle (from before a transfer, or after release) was used."""


class OwnershipMode(enum.Enum):
    """Exclusive (one owner, relaxed consistency) or shared ownership."""
    EXCLUSIVE = "exclusive"
    SHARED = "shared"


class OwnershipRecord:
    """Tracks who owns one memory region and mediates transitions.

    State machine::

        EXCLUSIVE --transfer--> EXCLUSIVE (new owner, epoch+1)
        EXCLUSIVE --share-----> SHARED
        SHARED    --drop------> SHARED (fewer owners)
        any       --last drop-> released (on_release hooks fire)
    """

    def __init__(self, owner: typing.Hashable):
        if owner is None:
            raise ValueError("initial owner may not be None")
        self.mode = OwnershipMode.EXCLUSIVE
        self.owners: set = {owner}
        #: Epoch increments on every transfer; handles carry the epoch at
        #: which they were issued and become stale when it moves on.
        self.epoch = 0
        self.released = False
        self.transfer_count = 0
        self.on_release: typing.List[typing.Callable[[], None]] = []

    # -- queries -----------------------------------------------------------

    def is_owner(self, actor: typing.Hashable) -> bool:
        """Whether ``actor`` currently owns this (unreleased) region."""
        return not self.released and actor in self.owners

    def check_access(self, actor: typing.Hashable, epoch: typing.Optional[int] = None) -> None:
        """Validate an access by ``actor`` (optionally via an epoch-stamped
        handle).  Raises on violation, returns None on success."""
        if self.released:
            raise UseAfterTransferError("region has been released")
        if epoch is not None and epoch != self.epoch:
            raise UseAfterTransferError(
                f"stale handle (epoch {epoch}, current {self.epoch}): "
                "ownership was transferred"
            )
        if actor not in self.owners:
            raise NotOwnerError(f"{actor!r} does not own this region")

    # -- transitions ---------------------------------------------------------

    def transfer(self, from_owner: typing.Hashable, to_owner: typing.Hashable) -> int:
        """Move exclusive ownership; returns the new epoch.

        Only valid in EXCLUSIVE mode — shared memory cannot be moved out
        from under concurrent owners.
        """
        if self.released:
            raise UseAfterTransferError("cannot transfer a released region")
        if self.mode is not OwnershipMode.EXCLUSIVE:
            raise OwnershipError("cannot transfer shared ownership; drop owners instead")
        if from_owner not in self.owners:
            raise NotOwnerError(f"{from_owner!r} is not the owner")
        if to_owner is None:
            raise ValueError("cannot transfer to None")
        self.owners = {to_owner}
        self.epoch += 1
        self.transfer_count += 1
        return self.epoch

    def share(
        self, actor: typing.Hashable, new_owners: typing.Iterable[typing.Hashable]
    ) -> None:
        """Convert to shared mode, adding ``new_owners`` alongside current
        owners.  Only an existing owner may widen the owner set."""
        if self.released:
            raise UseAfterTransferError("cannot share a released region")
        if actor not in self.owners:
            raise NotOwnerError(f"{actor!r} is not an owner")
        additions = set(new_owners)
        if None in additions:
            raise ValueError("cannot share with None")
        self.mode = OwnershipMode.SHARED
        self.owners |= additions

    def drop(self, owner: typing.Hashable) -> bool:
        """Remove one owner; returns True if that released the region."""
        if self.released:
            raise UseAfterTransferError("region already released")
        if owner not in self.owners:
            raise NotOwnerError(f"{owner!r} is not an owner")
        self.owners.remove(owner)
        if not self.owners:
            self.released = True
            for hook in self.on_release:
                hook()
            return True
        return False

    def __repr__(self) -> str:
        if self.released:
            return "<OwnershipRecord released>"
        return (
            f"<OwnershipRecord {self.mode.value} owners={sorted(map(repr, self.owners))} "
            f"epoch={self.epoch}>"
        )
