"""Memory substrate: typed regions, ownership, and access interfaces.

This package implements the paper's central abstractions (§2.2):

* **Properties, not locations** (:mod:`repro.memory.properties`):
  applications request memory by declaring required properties — latency
  and bandwidth classes, persistence, coherence, confidentiality — and
  never name a physical device.
* **Memory Regions** (:mod:`repro.memory.region`,
  :mod:`repro.memory.regions`): logical, typed views onto physical
  devices, including the paper's three predefined regions
  (Table 2): Private Scratch, Global State, Global Scratch.
* **Ownership** (:mod:`repro.memory.ownership`): every region is
  exclusively owned or explicitly shared; exclusive ownership can be
  *transferred* like a C++ move, invalidating stale handles.
* **Shared-region reuse** (:mod:`repro.memory.sharing`): a keyed cache
  of refcounted read-only shared regions with deferred eviction — the
  substrate LLM serving uses for KV-cache prefix blocks.
* **Access interfaces** (:mod:`repro.memory.interfaces`): synchronous
  load/store for near memory, asynchronous batched access for far
  memory.
* **Bookkeeping** (:mod:`repro.memory.allocator`,
  :mod:`repro.memory.manager`): offset-level allocation on each device
  and the logical→physical mapping table.
* **Placement feedback** (:mod:`repro.memory.pointers`,
  :mod:`repro.memory.tiering`): pointer tagging for hotness tracking and
  a TPP-style tiering daemon that migrates regions between tiers.
"""

from repro.memory.properties import (
    BandwidthClass,
    LatencyClass,
    MemoryProperties,
    OfferedProperties,
)
from repro.memory.allocator import Allocation, AllocationError, FreeListAllocator
from repro.memory.ownership import (
    NotOwnerError,
    OwnershipError,
    OwnershipMode,
    OwnershipRecord,
    UseAfterTransferError,
)
from repro.memory.region import MemoryRegion, RegionHandle, RegionState
from repro.memory.regions import (
    CustomRegionType,
    RegionType,
    define_region_type,
    lookup_region_type,
    region_properties,
)
from repro.memory.manager import MemoryManager, PlacementError
from repro.memory.sharing import CacheEntry, SharedRegionCache, SharedRegionError
from repro.memory.interfaces import AccessMode, AccessPattern, InterfaceError
from repro.memory.pointers import HotnessTracker, RemotePointer
from repro.memory.tiering import TieringPolicy, TieringDaemon
from repro.memory.addressing import (
    AddressError,
    PageTableEntry,
    VirtualAddressSpace,
)
from repro.memory.coherence import CoherenceModel
from repro.memory.dsl import (
    PropertySyntaxError,
    parse_properties,
    parse_task_card,
)
from repro.memory.structures import RemoteArray, RemoteHashMap, StructureError

__all__ = [
    "AccessMode",
    "AccessPattern",
    "AddressError",
    "Allocation",
    "AllocationError",
    "BandwidthClass",
    "CacheEntry",
    "CoherenceModel",
    "CustomRegionType",
    "FreeListAllocator",
    "HotnessTracker",
    "InterfaceError",
    "LatencyClass",
    "MemoryManager",
    "MemoryProperties",
    "MemoryRegion",
    "NotOwnerError",
    "OfferedProperties",
    "OwnershipError",
    "OwnershipMode",
    "OwnershipRecord",
    "PageTableEntry",
    "PlacementError",
    "PropertySyntaxError",
    "RegionHandle",
    "RegionState",
    "RegionType",
    "RemoteArray",
    "RemoteHashMap",
    "RemotePointer",
    "SharedRegionCache",
    "SharedRegionError",
    "StructureError",
    "TieringDaemon",
    "TieringPolicy",
    "UseAfterTransferError",
    "VirtualAddressSpace",
    "define_region_type",
    "lookup_region_type",
    "parse_properties",
    "parse_task_card",
    "region_properties",
]
