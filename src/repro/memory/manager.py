"""The memory manager: logical→physical bookkeeping.

The :class:`MemoryManager` owns one offset allocator per memory device
and the table of live regions.  It performs the mechanical half of the
runtime's duties (§2.3): allocating a region on a chosen device,
deallocating it when the last owner drops, migrating regions between
devices, and marking regions lost when their backing device fails.

*Choosing* the device is the placement optimizer's job
(:mod:`repro.runtime.placement`); the manager only checks hard physical
constraints (capacity, persistence) so no layer above it can corrupt the
accounting.
"""

from __future__ import annotations

import typing

from repro.hardware.cluster import Cluster
from repro.hardware.devices import CapacityError, MemoryDevice
from repro.memory.allocator import AllocationError, FreeListAllocator
from repro.memory.properties import MemoryProperties
from repro.memory.region import MemoryRegion, RegionState
from repro.memory.regions import RegionType
from repro.sim.faults import FaultEvent, FaultKind


class PlacementError(Exception):
    """The requested placement is physically impossible."""


class MemoryManager:
    """Bookkeeping for all memory regions in one cluster."""

    def __init__(self, cluster: Cluster):
        self.cluster = cluster
        self.allocators: typing.Dict[str, FreeListAllocator] = {
            name: FreeListAllocator(dev.capacity, dev.spec.granularity)
            for name, dev in cluster.memory.items()
        }
        self.regions: typing.Dict[int, MemoryRegion] = {}
        self.freed_regions = 0
        self.lost_regions = 0
        cluster.faults.on(FaultKind.NODE_CRASH, self._on_node_crash)
        cluster.faults.on(FaultKind.NODE_REBOOT, self._on_node_crash)
        cluster.faults.on(FaultKind.POWER_OUTAGE, self._on_power_outage)
        cluster.faults.on(FaultKind.MEMORY_CORRUPTION, self._on_corruption)

    # -- allocation ----------------------------------------------------------

    def allocate_on(
        self,
        device_name: str,
        size: int,
        properties: MemoryProperties,
        owner: typing.Hashable,
        name: str = "",
        region_type: typing.Optional[RegionType] = None,
    ) -> MemoryRegion:
        """Allocate a region of ``size`` bytes on a specific device.

        Raises :class:`PlacementError` when the device cannot possibly
        host the request (failed, persistence mismatch, out of space).
        """
        device = self._device(device_name)
        if device.failed:
            raise PlacementError(f"{device_name} has failed")
        if properties.persistent and not device.spec.persistent:
            raise PlacementError(
                f"{device_name} is volatile but the request requires persistence"
            )
        allocator = self.allocators[device_name]
        try:
            allocation = allocator.allocate(size)
        except AllocationError as exc:
            raise PlacementError(f"{device_name}: {exc}") from exc
        try:
            device.reserve(allocation.size, time=self.cluster.engine.now)
        except CapacityError as exc:  # pragma: no cover - allocator guards this
            allocator.free(allocation)
            raise PlacementError(str(exc)) from exc

        region = MemoryRegion(
            size=size,
            properties=properties,
            device=device,
            allocation=allocation,
            owner=owner,
            name=name,
            region_type=region_type,
            created_at=self.cluster.engine.now,
        )
        region.ownership.on_release.append(lambda: self.free(region))
        self.regions[region.id] = region
        self.cluster.trace.emit(
            self.cluster.engine.now, "memory", "allocate",
            region=region.name, device=device_name, size=size, owner=str(owner),
            rtype=region_type.value if region_type is not None else "",
        )
        return region

    def free(self, region: MemoryRegion) -> None:
        """Deallocate a region (idempotent; also the last-drop hook)."""
        if region.state is RegionState.FREED:
            return
        if region.state is not RegionState.LOST:
            self.allocators[region.device.name].free(region.allocation)
            region.device.release(region.allocation.size, time=self.cluster.engine.now)
        region.state = RegionState.FREED
        region.freed_at = self.cluster.engine.now
        self.regions.pop(region.id, None)
        self.freed_regions += 1
        self.cluster.trace.emit(
            self.cluster.engine.now, "memory", "free",
            region=region.name, device=region.device.name,
        )

    # -- ownership operations (delegate + trace) -----------------------------

    def transfer_ownership(
        self, region: MemoryRegion, from_owner: typing.Hashable, to_owner: typing.Hashable
    ) -> int:
        """Move exclusive ownership between tasks (Figure 4 handover)."""
        region.check_alive()
        epoch = region.ownership.transfer(from_owner, to_owner)
        self.cluster.trace.emit(
            self.cluster.engine.now, "memory", "transfer_ownership",
            region=region.name, src=str(from_owner), dst=str(to_owner),
        )
        return epoch

    def share(
        self,
        region: MemoryRegion,
        actor: typing.Hashable,
        others: typing.Iterable[typing.Hashable],
    ) -> None:
        """Widen a region's owner set (converts to shared mode)."""
        region.check_alive()
        region.ownership.share(actor, others)

    def drop_owner(self, region: MemoryRegion, owner: typing.Hashable) -> bool:
        """Drop one owner; frees the region when it was the last one."""
        return region.ownership.drop(owner)

    # -- migration -------------------------------------------------------

    def migrate(self, region: MemoryRegion, new_device_name: str):
        """Simulation generator: move a region's bytes to another device.

        Allocates on the target, streams the payload through the fabric
        (contending with everything else), then atomically swaps the
        backing and frees the old allocation.  Yields from a sim process::

            yield from manager.migrate(region, "dram-pool0")
        """
        region.check_alive()
        if region.state is RegionState.MIGRATING:
            raise PlacementError(f"{region.name} is already migrating")
        new_device = self._device(new_device_name)
        if new_device.name == region.device.name:
            return region
        if region.properties.persistent and not new_device.spec.persistent:
            raise PlacementError(
                f"cannot migrate persistent region {region.name} to volatile "
                f"{new_device_name}"
            )
        allocator = self.allocators[new_device_name]
        try:
            new_allocation = allocator.allocate(region.size)
        except AllocationError as exc:
            raise PlacementError(f"{new_device_name}: {exc}") from exc
        new_device.reserve(new_allocation.size, time=self.cluster.engine.now)

        region.state = RegionState.MIGRATING
        old_device, old_allocation = region.device, region.allocation
        try:
            yield self.cluster.transfer(old_device.name, new_device_name, region.size)
        except BaseException:
            # Roll back the target allocation; the region stays put.
            allocator.free(new_allocation)
            new_device.release(new_allocation.size, time=self.cluster.engine.now)
            region.state = RegionState.ACTIVE
            raise
        region.device = new_device
        region.allocation = new_allocation
        region.state = RegionState.ACTIVE
        region.migrations += 1
        self.allocators[old_device.name].free(old_allocation)
        old_device.release(old_allocation.size, time=self.cluster.engine.now)
        self.cluster.trace.emit(
            self.cluster.engine.now, "memory", "migrate",
            region=region.name, src=old_device.name, dst=new_device_name,
        )
        return region

    # -- failure handling --------------------------------------------------

    def _on_node_crash(self, fault: FaultEvent) -> None:
        # Handles NODE_CRASH and NODE_REBOOT alike: both lose the
        # volatile contents of every member device (a reboot of a node
        # that already crashed finds them marked lost and is a no-op).
        members = self.cluster.nodes.get(fault.target, set())
        for region in list(self.regions.values()):
            if region.device.name in members and not region.device.spec.persistent:
                self._mark_lost(region)

    def _on_power_outage(self, fault: FaultEvent) -> None:
        # Power loss takes out every volatile region cluster-wide.
        for region in list(self.regions.values()):
            if not region.device.spec.persistent:
                self._mark_lost(region)

    def _on_corruption(self, fault: FaultEvent) -> None:
        # Target is a region name; corrupt exactly that region.
        for region in list(self.regions.values()):
            if region.name == fault.target:
                self._mark_lost(region)

    def _mark_lost(self, region: MemoryRegion) -> None:
        if region.state is not RegionState.ACTIVE:
            return
        region.state = RegionState.LOST
        self.lost_regions += 1
        self.regions.pop(region.id, None)
        # The contents are gone; reclaim the physical range so the device
        # is consistent again after recovery (no phantom allocations).
        self.allocators[region.device.name].free(region.allocation)
        region.device.release(region.allocation.size, time=self.cluster.engine.now)
        self.cluster.trace.emit(
            self.cluster.engine.now, "memory", "lost",
            region=region.name, device=region.device.name,
        )

    # -- introspection -----------------------------------------------------

    def live_regions(self) -> typing.List[MemoryRegion]:
        """All regions currently alive under this manager."""
        return list(self.regions.values())

    def live_bytes(self, device_name: typing.Optional[str] = None) -> int:
        """Accounted live bytes, cluster-wide or for one device."""
        return sum(
            r.allocation.size
            for r in self.regions.values()
            if device_name is None or r.device.name == device_name
        )

    def _device(self, name: str) -> MemoryDevice:
        try:
            return self.cluster.memory[name]
        except KeyError:
            raise PlacementError(f"no memory device named {name!r}") from None
