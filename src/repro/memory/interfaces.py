"""Access interfaces: synchronous and asynchronous region access.

The paper (§2.2(3)) argues that different Memory Regions should expose
different access interfaces: synchronous loads/stores for near memory,
asynchronous batched access for far memory so compute can overlap with
data movement.  This module provides both, with a shared analytical
core:

* :func:`access_plan` — a pure function turning (device, path, pattern,
  mode, size) into an :class:`AccessPlan` (latency component, wire
  bytes, op count).  The runtime's cost model calls the same function,
  so the optimizer's estimates and the simulator's behaviour agree by
  construction.
* :class:`Accessor` — executes plans on the simulation engine: the
  latency term is a timeout, the wire bytes go through the flow network
  (contending with all other traffic), and validation enforces the
  interface rules (sync requires an addressable path and a sync-capable
  device; coherent regions require a coherent path).

The asynchronous interface models ``queue_depth`` outstanding requests,
which is how far-memory latency gets hidden (and why Table 1's far tiers
are marked async-only).
"""

from __future__ import annotations

import dataclasses
import enum
import math
import typing

from repro.hardware.cluster import Cluster
from repro.hardware.devices import MemoryDevice
from repro.memory.region import RegionHandle


class AccessPattern(enum.Enum):
    """Spatial access behaviour: prefetchable stream vs. random points."""
    SEQUENTIAL = "sequential"
    RANDOM = "random"


class AccessMode(enum.Enum):
    """How a region is accessed: synchronous ld/st or async batches."""
    SYNC = "sync"
    ASYNC = "async"


class InterfaceError(Exception):
    """The requested interface is not available on this path/device."""


#: Default number of outstanding async requests (NIC/CXL queue depth).
DEFAULT_QUEUE_DEPTH = 16
#: Fixed software overhead per access operation, ns (syscall-free path).
PER_OP_OVERHEAD_NS = 2.0
#: Memory-level parallelism of synchronous loads: an out-of-order core
#: keeps a handful of cache misses in flight, so sync random access to
#: *near* memory is cheaper than one full round trip per op.
SYNC_MLP = 4
#: Per-request software cost of the explicit asynchronous interface
#: (building the request, completion handling).  This is why async does
#: NOT pay off for near memory (paper §2.2(3)): for DRAM-class RTTs the
#: software overhead eats the overlap gain.
ASYNC_OP_OVERHEAD_NS = 25.0


@dataclasses.dataclass(frozen=True)
class AccessPlan:
    """The analytic decomposition of one region access."""

    latency_ns: float  # pure latency component (not bandwidth-limited)
    wire_bytes: float  # bytes that cross the fabric/device port
    n_ops: int  # individual access operations issued

    def lower_bound_ns(self, path_bandwidth: float) -> float:
        """Uncontended completion-time estimate used by the cost model.

        The latency term and the wire-byte streaming overlap in the
        simulator (both must finish), so the estimate is their max —
        keeping the analytic model and the executed behaviour aligned.
        """
        if path_bandwidth <= 0:
            return float("inf")
        return max(self.latency_ns, self.wire_bytes / path_bandwidth)


def access_plan(
    device: MemoryDevice,
    path_latency_ns: float,
    nbytes: int,
    pattern: AccessPattern = AccessPattern.SEQUENTIAL,
    mode: AccessMode = AccessMode.SYNC,
    access_size: int = 64,
    is_write: bool = False,
    queue_depth: int = DEFAULT_QUEUE_DEPTH,
) -> AccessPlan:
    """Compute the access plan for touching ``nbytes`` of a region.

    The model: each access operation of ``access_size`` bytes pays a
    round trip of fabric latency plus the device's media latency (writes
    scaled by the device's write penalty).  Sequential accesses are
    prefetchable, so the latency is paid once and the rest streams at
    bandwidth.  Random sync accesses pay the round trip serially; random
    async accesses overlap ``queue_depth`` of them.  Wire bytes are
    amplified to the device's access granularity.
    """
    if nbytes < 0:
        raise ValueError(f"negative access size: {nbytes}")
    if access_size <= 0:
        raise ValueError(f"access_size must be positive, got {access_size}")
    if queue_depth < 1:
        raise ValueError(f"queue_depth must be >= 1, got {queue_depth}")
    if nbytes == 0:
        return AccessPlan(0.0, 0.0, 0)

    media_latency = device.spec.latency
    if is_write:
        media_latency *= device.spec.write_penalty
    round_trip = 2.0 * path_latency_ns + media_latency + PER_OP_OVERHEAD_NS

    n_ops = max(1, math.ceil(nbytes / access_size))
    granularity = device.spec.granularity
    if pattern is AccessPattern.RANDOM:
        # Every op touches a separate granule -> full amplification.
        wire_bytes = float(n_ops * max(access_size, granularity))
        if mode is AccessMode.SYNC:
            # Out-of-order cores overlap SYNC_MLP misses — but nothing
            # makes a single miss cheaper than one full round trip.
            latency = max(round_trip, n_ops * round_trip / SYNC_MLP)
        else:
            # Explicit async: queue_depth in flight, but every request
            # pays its software issue/completion cost.  The pipeline-fill
            # round trip overlaps with steady-state issue, so the total
            # is bounded below by one round trip, not prefixed by it.
            per_op = max(ASYNC_OP_OVERHEAD_NS, round_trip / queue_depth)
            latency = max(round_trip, n_ops * per_op)
    else:
        # Prefetchable stream: pay the round trip once; the device port
        # and fabric links bound the streaming part via wire_bytes.
        wire_bytes = float(device.effective_bytes(nbytes))
        latency = round_trip
    return AccessPlan(latency_ns=latency, wire_bytes=wire_bytes, n_ops=n_ops)


#: Fallback software crypto rate when the observer has no CRYPTO units
#: (bytes/ns; ~1 GB/s of unaccelerated AES).
SOFTWARE_CRYPTO_BYTES_PER_NS = 1.0


def encryption_time(cluster: Cluster, observer: str, nbytes: float) -> float:
    """Time (ns) for ``observer`` to en/decrypt ``nbytes``.

    Treats one CRYPTO op as one byte (AES-GCM-style streaming), so a CPU
    with AES units runs at its CRYPTO throughput and an FPGA/DPU offload
    is dramatically faster — which is exactly why the paper's hardware
    landscape includes crypto accelerators.
    """
    if nbytes <= 0:
        return 0.0
    from repro.hardware.spec import OpClass

    device = cluster.compute.get(observer)
    if device is not None and device.supports(OpClass.CRYPTO):
        rate = device.spec.ops_per_ns(OpClass.CRYPTO)
    else:
        rate = SOFTWARE_CRYPTO_BYTES_PER_NS
    return nbytes / rate


class Accessor:
    """Executes region accesses for one observer (compute device).

    Created per (task, region) by the runtime; standalone use::

        acc = Accessor(cluster, handle, "cpu0")
        yield from acc.read(4096, pattern=AccessPattern.RANDOM)
    """

    def __init__(
        self,
        cluster: Cluster,
        handle: RegionHandle,
        observer: str,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        source_device: typing.Optional[str] = None,
    ):
        self.cluster = cluster
        self.handle = handle
        self.observer = observer
        self.queue_depth = queue_depth
        #: Hedged read-around: physical device to serve *reads* from in
        #: place of the region's primary backing — a replica that holds
        #: the same bytes (e.g. an output backup).  Writes always go to
        #: the primary; the handle's ownership checks still apply.
        self.source_device = source_device
        #: Nominal expectation for the most recent access (ns) — the
        #: same figure fed to the health monitor, kept so callers can
        #: compare an observed duration against it (write-path abort).
        #: Stays 0.0 while fail-slow detection is off.
        self.last_expected_ns: float = 0.0
        if observer not in cluster.compute and observer not in cluster.memory:
            raise InterfaceError(f"unknown observer device {observer!r}")
        if source_device is not None and source_device not in cluster.memory:
            raise InterfaceError(
                f"unknown source device {source_device!r}"
            )
        self._validate_static()

    # -- validation ----------------------------------------------------------

    def _validate_static(self) -> None:
        region = self.handle.region
        topo = self.cluster.topology
        if region.properties.coherent and not topo.coherent(
            self.observer, region.device.name
        ):
            raise InterfaceError(
                f"region {region.name} requires coherence but the path "
                f"{self.observer} -> {region.device.name} is not coherent"
            )

    def _validate_mode(self, mode: AccessMode) -> None:
        region = self.handle.region
        if mode is AccessMode.SYNC:
            device = region.device
            if not device.spec.supports_sync:
                raise InterfaceError(
                    f"{device.name} ({device.kind.value}) does not support "
                    "synchronous access (Table 1)"
                )
            if not self.cluster.topology.addressable(self.observer, device.name):
                raise InterfaceError(
                    f"no load/store path from {self.observer} to {device.name}; "
                    "use the asynchronous interface"
                )

    # -- operations -----------------------------------------------------------

    def read(
        self,
        nbytes: typing.Optional[int] = None,
        pattern: AccessPattern = AccessPattern.SEQUENTIAL,
        mode: typing.Optional[AccessMode] = None,
        access_size: int = 64,
    ):
        """Generator: read ``nbytes`` (default: whole region).

        Returns the access duration in ns.
        """
        duration = yield from self._access(
            nbytes, pattern, mode, access_size, is_write=False
        )
        return duration

    def write(
        self,
        nbytes: typing.Optional[int] = None,
        pattern: AccessPattern = AccessPattern.SEQUENTIAL,
        mode: typing.Optional[AccessMode] = None,
        access_size: int = 64,
    ):
        """Generator: write ``nbytes`` (default: whole region).

        Returns the access duration in ns.
        """
        duration = yield from self._access(
            nbytes, pattern, mode, access_size, is_write=True
        )
        return duration

    def default_mode(self) -> AccessMode:
        """Sync when the device+path allow it, async otherwise."""
        region = self.handle.region
        if region.device.spec.supports_sync and self.cluster.topology.addressable(
            self.observer, region.device.name
        ):
            # An explicitly async-typed region keeps its async interface.
            if region.properties.sync is None and not region.device.spec.coherent:
                return AccessMode.ASYNC
            return AccessMode.SYNC
        return AccessMode.ASYNC

    def _access(
        self,
        nbytes: typing.Optional[int],
        pattern: AccessPattern,
        mode: typing.Optional[AccessMode],
        access_size: int,
        is_write: bool,
    ):
        self.handle.validate()
        region = self.handle.region
        if nbytes is None:
            nbytes = region.size
        if nbytes > region.size:
            raise ValueError(
                f"access of {nbytes} B exceeds region size {region.size} B"
            )
        if mode is None:
            mode = self.default_mode()
        self._validate_mode(mode)

        device = region.device
        if self.source_device is not None and not is_write:
            # Serve the bytes from the replica; fall back to the async
            # interface when the replica medium cannot do load/store.
            device = self.cluster.memory[self.source_device]
            if mode is AccessMode.SYNC and not (
                device.spec.supports_sync
                and self.cluster.topology.addressable(
                    self.observer, device.name)
            ):
                mode = AccessMode.ASYNC
        path_latency = self.cluster.topology.path_latency(self.observer, device.name)
        plan = access_plan(
            device, path_latency, nbytes, pattern, mode, access_size,
            is_write=is_write, queue_depth=self.queue_depth,
        )
        if is_write:
            device.bytes_written += plan.wire_bytes
            region.bytes_written += plan.wire_bytes
        else:
            device.bytes_read += plan.wire_bytes
        # Sampled hotness: all but every Nth access return immediately
        # inside record_access, so the hot path stays O(1) and cheap.
        self.cluster.obs.telemetry.hotness.record_access(
            region.id, device.name, plan.wire_bytes, self.cluster.engine.now
        )

        engine = self.cluster.engine
        route = list(self.cluster.topology.route(self.observer, device.name))
        route.append(device.port)
        # Shared-ownership regions pay the coherence protocol (§2.2(2));
        # exclusive regions are free by construction.
        from repro.memory.coherence import CoherenceModel

        coherence_penalty = CoherenceModel.for_cluster(self.cluster).access_penalty(
            region, self.observer, is_write
        )
        crypto_penalty = 0.0
        if region.encrypted:
            crypto_penalty = encryption_time(
                self.cluster, self.observer, plan.wire_bytes
            )
        # Latency term and wire-byte streaming overlap; both must finish.
        pending = [self.cluster.flownet.transfer(route, plan.wire_bytes)]
        total_latency = plan.latency_ns + coherence_penalty + crypto_penalty
        if total_latency > 0:
            pending.append(engine.timeout(total_latency))
        started = engine.now
        yield engine.all_of(pending)
        self.handle.validate()  # ownership may have changed while blocked
        observed = engine.now - started
        self._feed_evidence(route, plan.wire_bytes, total_latency, observed)
        return observed

    def _feed_evidence(
        self, route, wire_bytes: float, extra_latency_ns: float, observed: float
    ) -> None:
        """Report this access's observed-vs-nominal timing to the health
        monitor (when fail-slow detection is on).

        The expectation mirrors the access structure — the nominal
        uncontended stream time racing the latency term — so the ratio
        the detector sees approximates the physical degrade factor once
        the wire time dominates.  Contention inflates it too; the
        monitor's peer-relative gate is what separates a genuinely slow
        device from a busy fabric.
        """
        self.last_expected_ns = 0.0
        monitor = getattr(self.cluster, "health_monitor", None)
        if monitor is None or getattr(monitor, "degradation", None) is None:
            return
        expected = max(
            self.cluster.estimate_transfer_ns(route, wire_bytes),
            extra_latency_ns,
        )
        if expected <= 0:
            return
        self.last_expected_ns = expected
        monitor.observe_transfer(route, observed, expected)
