"""Memory-centric OS layer: job address spaces over the pool.

Paper challenges 4–5: *"the core responsibility of the operating system
is mapping RTS-requested memory into the address space of our proposed
tasks"*, in a memory-centric (not processor-centric) design where
ownership is globally managed by the RTS.

This module is that thin OS layer:

* every job gets a :class:`VirtualAddressSpace` — a flat, page-granular
  virtual range private to the job;
* when the RTS allocates a region, it can :meth:`~VirtualAddressSpace.map`
  it, receiving a stable virtual base address; tasks address memory by
  virtual address from then on;
* the page table translates ``vaddr → (device, physical offset)`` and
  is **updated transparently on migration** — the tiering daemon moves a
  region and every virtual address keeps working (pointer swizzling at
  the mapping layer);
* protection: a job can only translate through its own address space,
  and regions of *confidential* tasks may not be mapped into another
  job's space.
"""

from __future__ import annotations

import typing

from repro.memory.region import MemoryRegion, RegionState


class AddressError(Exception):
    """Bad virtual address, unmapped page, or protection violation."""


class PageTableEntry(typing.NamedTuple):
    region_id: int
    device_name: str
    physical_offset: int  # offset of this page's backing on the device
    writable: bool


class Mapping:
    """One region's window in a virtual address space."""

    __slots__ = ("region", "vbase", "n_pages", "writable")

    def __init__(self, region: MemoryRegion, vbase: int, n_pages: int, writable: bool):
        self.region = region
        self.vbase = vbase
        self.n_pages = n_pages
        self.writable = writable

    @property
    def vend(self) -> int:
        return self.vbase  # overwritten below; kept for clarity

    def __repr__(self) -> str:
        return f"<Mapping {self.region.name} @ {self.vbase:#x} ({self.n_pages} pages)>"


class VirtualAddressSpace:
    """A page-granular virtual address space for one job."""

    #: Virtual layout starts here (catches null-ish pointers).
    BASE = 0x1000_0000

    def __init__(self, job_name: str, page_size: int = 4096):
        if page_size <= 0 or page_size & (page_size - 1):
            raise ValueError(f"page size must be a power of two, got {page_size}")
        self.job_name = job_name
        self.page_size = page_size
        self._next_vaddr = self.BASE
        #: region id -> Mapping
        self._mappings: typing.Dict[int, Mapping] = {}
        #: virtual page number -> Mapping (the "page table" directory)
        self._pages: typing.Dict[int, Mapping] = {}
        self.translations = 0
        self.faults = 0

    # -- map/unmap ---------------------------------------------------------

    def map(self, region: MemoryRegion, writable: bool = True) -> int:
        """Map a region; returns its virtual base address.

        Confidential regions may only be mapped into the address space
        of the job that owns them (protection check).
        """
        region.check_alive()
        if region.id in self._mappings:
            raise AddressError(f"{region.name} is already mapped")
        if region.properties.confidential:
            owner_jobs = {
                str(owner).split("/")[0].replace("job:", "").split("#")[0]
                for owner in region.ownership.owners
            }
            if self.job_name not in owner_jobs:
                raise AddressError(
                    f"confidential region {region.name} may not be mapped "
                    f"into job {self.job_name!r}'s address space"
                )
        n_pages = max(1, -(-region.size // self.page_size))
        vbase = self._next_vaddr
        self._next_vaddr += n_pages * self.page_size
        mapping = Mapping(region, vbase, n_pages, writable)
        self._mappings[region.id] = mapping
        first_page = vbase // self.page_size
        for page in range(first_page, first_page + n_pages):
            self._pages[page] = mapping
        return vbase

    def unmap(self, region: MemoryRegion) -> None:
        """Remove a region's window from this address space."""
        mapping = self._mappings.pop(region.id, None)
        if mapping is None:
            raise AddressError(f"{region.name} is not mapped")
        first_page = mapping.vbase // self.page_size
        for page in range(first_page, first_page + mapping.n_pages):
            del self._pages[page]

    # -- translation ---------------------------------------------------------

    def translate(self, vaddr: int, for_write: bool = False) -> PageTableEntry:
        """vaddr → (region, device, physical offset).

        Raises :class:`AddressError` on unmapped pages, freed/lost
        regions (the fault path), and write-protection violations.
        """
        self.translations += 1
        mapping = self._pages.get(vaddr // self.page_size)
        if mapping is None:
            self.faults += 1
            raise AddressError(f"unmapped address {vaddr:#x}")
        region = mapping.region
        offset_in_region = vaddr - mapping.vbase
        if offset_in_region >= region.size:
            self.faults += 1
            raise AddressError(
                f"{vaddr:#x} is inside {region.name}'s guard padding"
            )
        if region.state in (RegionState.FREED, RegionState.LOST):
            self.faults += 1
            raise AddressError(f"{region.name} backing is gone ({region.state.value})")
        if for_write and not mapping.writable:
            self.faults += 1
            raise AddressError(f"write to read-only mapping of {region.name}")
        # Physical location is read *through the region*, so migrations
        # retarget every mapped address with zero page-table edits.
        return PageTableEntry(
            region_id=region.id,
            device_name=region.device.name,
            physical_offset=region.allocation.offset + offset_in_region,
            writable=mapping.writable,
        )

    def region_at(self, vaddr: int) -> MemoryRegion:
        """The region mapped at ``vaddr`` (raises on unmapped addresses)."""
        mapping = self._pages.get(vaddr // self.page_size)
        if mapping is None:
            raise AddressError(f"unmapped address {vaddr:#x}")
        return mapping.region

    # -- introspection ---------------------------------------------------

    @property
    def mapped_regions(self) -> typing.List[MemoryRegion]:
        return [m.region for m in self._mappings.values()]

    @property
    def mapped_bytes(self) -> int:
        return sum(m.region.size for m in self._mappings.values())

    def __repr__(self) -> str:
        return (
            f"<VirtualAddressSpace job={self.job_name!r} "
            f"{len(self._mappings)} mappings, next={self._next_vaddr:#x}>"
        )
