"""Hotness-driven tiering: TPP-style promotion and demotion.

The runtime "must know or predict the resource utilization of memory
and compute devices" and optimize placement continuously (§3,
Challenges 1–3).  The :class:`TieringDaemon` is that background
optimizer for memory: it periodically consults the
:class:`~repro.memory.pointers.HotnessTracker` and migrates

* **hot** regions stuck on slow tiers up to the fastest device with
  room (promotion), and
* **cold** regions hogging a tier that is above its occupancy watermark
  down a tier (demotion),

never violating a region's declared properties (persistence, latency
class) in the process.
"""

from __future__ import annotations

import typing

from repro.hardware.cluster import Cluster
from repro.hardware.devices import MemoryDevice
from repro.memory.manager import MemoryManager, PlacementError
from repro.memory.pointers import HotnessTracker
from repro.memory.properties import LatencyClass
from repro.memory.region import MemoryRegion, RegionState


class TieringPolicy:
    """Decides which regions should move where."""

    def __init__(
        self,
        cluster: Cluster,
        manager: MemoryManager,
        tracker: HotnessTracker,
        observer: str,
        hot_bytes_threshold: float = 1024.0,
        cold_bytes_threshold: float = 64.0,
        watermark: float = 0.9,
        allowed_devices: typing.Optional[typing.Iterable[str]] = None,
    ):
        self.cluster = cluster
        self.manager = manager
        self.tracker = tracker
        self.observer = observer
        self.hot_bytes_threshold = hot_bytes_threshold
        self.cold_bytes_threshold = cold_bytes_threshold
        self.watermark = watermark
        #: Restrict tiering to these devices (None = all byte-addressable).
        #: Lets deployments keep e.g. on-chip caches out of the region pool.
        self.allowed_devices = set(allowed_devices) if allowed_devices else None

    # -- device ranking ----------------------------------------------------

    def rtt(self, device: MemoryDevice) -> float:
        """Round-trip latency from the policy's observer to a device."""
        return (
            2.0 * self.cluster.topology.path_latency(self.observer, device.name)
            + device.spec.latency
        )

    def tier_order(self) -> typing.List[MemoryDevice]:
        """Byte-addressable devices, fastest first, as seen by the observer."""
        devices = [
            d for d in self.cluster.memory_devices()
            if d.spec.byte_addressable
            and (self.allowed_devices is None or d.name in self.allowed_devices)
        ]
        devices.sort(key=self.rtt)
        return devices

    def _allowed(self, region: MemoryRegion, device: MemoryDevice) -> bool:
        if region.properties.persistent and not device.spec.persistent:
            return False
        offered = LatencyClass.classify(self.rtt(device))
        return offered <= region.properties.latency

    # -- decisions -------------------------------------------------------

    def decide(
        self, time: float, max_moves: int = 4
    ) -> typing.List[typing.Tuple[MemoryRegion, str]]:
        """Plan up to ``max_moves`` migrations for the current instant."""
        tiers = self.tier_order()
        if not tiers:
            return []
        rank = {d.name: i for i, d in enumerate(tiers)}
        planned_free = {d.name: self.allocator_free(d.name) for d in tiers}
        moves: typing.List[typing.Tuple[MemoryRegion, str]] = []

        regions = [
            r for r in self.manager.live_regions() if r.state is RegionState.ACTIVE
        ]
        hotness = {r.id: self.tracker.hotness(r.id, time) for r in regions}

        # Promotions: hottest first.
        for region in sorted(regions, key=lambda r: -hotness[r.id]):
            if len(moves) >= max_moves:
                return moves
            if hotness[region.id] < self.hot_bytes_threshold:
                break
            current = rank.get(region.device.name)
            if current in (None, 0):
                continue
            for device in tiers[:current]:
                if not self._allowed(region, device):
                    continue
                if planned_free[device.name] >= region.size:
                    planned_free[device.name] -= region.size
                    moves.append((region, device.name))
                    break

        # Demotions: over-watermark tiers shed their coldest regions.
        for tier_index, device in enumerate(tiers[:-1]):
            if device.utilization < self.watermark:
                continue
            residents = [r for r in regions if r.device.name == device.name]
            residents.sort(key=lambda r: hotness[r.id])
            for region in residents:
                if len(moves) >= max_moves:
                    return moves
                if hotness[region.id] > self.cold_bytes_threshold:
                    break
                if any(r is region for r, _ in moves):
                    continue
                for target in tiers[tier_index + 1:]:
                    if not self._allowed(region, target):
                        continue
                    if planned_free[target.name] >= region.size:
                        planned_free[target.name] -= region.size
                        moves.append((region, target.name))
                        break
        return moves

    def allocator_free(self, device_name: str) -> int:
        """Largest allocatable extent on a device (migration headroom)."""
        return self.manager.allocators[device_name].largest_free_extent


class TieringDaemon:
    """Background simulation process applying the policy periodically."""

    def __init__(
        self,
        policy: TieringPolicy,
        interval_ns: float = 100_000.0,
        max_moves_per_round: int = 4,
    ):
        if interval_ns <= 0:
            raise ValueError("interval must be positive")
        self.policy = policy
        self.interval_ns = interval_ns
        self.max_moves = max_moves_per_round
        self.promotions = 0
        self.demotions = 0
        self.rounds = 0
        self._stop = False

    def stop(self) -> None:
        """Ask the background loop to exit at its next wakeup."""
        self._stop = True

    def run(self):
        """Simulation generator; start with ``engine.process(daemon.run())``."""
        cluster = self.policy.cluster
        manager = self.policy.manager
        while not self._stop:
            yield cluster.engine.timeout(self.interval_ns)
            if self._stop:
                return
            self.rounds += 1
            moves = self.policy.decide(cluster.engine.now, self.max_moves)
            rank = {d.name: i for i, d in enumerate(self.policy.tier_order())}
            for region, target in moves:
                if region.state is not RegionState.ACTIVE:
                    continue
                was = rank.get(region.device.name, len(rank))
                goes = rank.get(target, len(rank))
                source = region.device.name
                try:
                    yield from manager.migrate(region, target)
                except PlacementError:
                    continue  # capacity raced away; retry next round
                if goes < was:
                    self.promotions += 1
                else:
                    self.demotions += 1
                trace = cluster.trace
                if trace.wants("tiering"):
                    trace.emit(
                        cluster.engine.now, "tiering",
                        "promote" if goes < was else "demote",
                        region=region.name, nbytes=region.size,
                        src=source, dst=target,
                    )
