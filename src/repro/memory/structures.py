"""Application-integrated far-memory data structures (AIFM-style).

The paper leans on AIFM/LeanStore-style *remotable* data structures as
prior art for Challenges 1–3: data structures that live in a memory
region wherever the runtime put it, dereference through swizzlable
pointers, feed the hotness tracker, and keep working (just faster)
after the tiering daemon migrates them up.

* :class:`RemoteArray` — fixed-stride elements over one region; random
  ``get``/``set`` plus a sequential ``scan`` that uses the streaming
  interface.
* :class:`RemoteHashMap` — open-addressing hash table over one region;
  every probe is a real (simulated) memory access, so lookups on far
  memory cost what they should and migration visibly speeds them up.

All operations are simulation generators (``yield from``); they go
through :class:`~repro.memory.interfaces.Accessor`, so contention,
granularity amplification, and interface rules all apply.
"""

from __future__ import annotations

import typing

from repro.hardware.cluster import Cluster
from repro.memory.interfaces import AccessPattern, Accessor
from repro.memory.pointers import HotnessTracker
from repro.memory.region import MemoryRegion


class StructureError(Exception):
    """Misuse of a far-memory structure (bounds, capacity, key errors)."""


class _RemoteStructure:
    """Shared plumbing: accessor construction + hotness feed."""

    def __init__(
        self,
        cluster: Cluster,
        region: MemoryRegion,
        observer: str,
        tracker: typing.Optional[HotnessTracker] = None,
    ):
        self.cluster = cluster
        self.region = region
        self.observer = observer
        self.tracker = tracker
        self.accesses = 0

    def _accessor(self) -> Accessor:
        self.region.check_alive()
        owner = next(iter(self.region.ownership.owners))
        return Accessor(self.cluster, self.region.handle(owner), self.observer)

    def _note(self, nbytes: float) -> None:
        self.accesses += 1
        if self.tracker is not None:
            self.tracker.record(self.region.id, nbytes, self.cluster.engine.now)

    @property
    def backing_device(self) -> str:
        return self.region.device.name


class RemoteArray(_RemoteStructure):
    """A fixed-stride array in a (possibly far) memory region."""

    def __init__(
        self,
        cluster: Cluster,
        region: MemoryRegion,
        observer: str,
        element_size: int,
        tracker: typing.Optional[HotnessTracker] = None,
    ):
        super().__init__(cluster, region, observer, tracker)
        if element_size <= 0:
            raise ValueError(f"element size must be positive, got {element_size}")
        if element_size > region.size:
            raise ValueError("element larger than the backing region")
        self.element_size = element_size
        self.length = region.size // element_size
        #: Local element cache (the Python-visible values; the simulated
        #: cost is charged by the accessor calls).
        self._values: typing.Dict[int, object] = {}

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.length:
            raise StructureError(
                f"index {index} out of range [0, {self.length})"
            )

    def get(self, index: int):
        """Generator: read element ``index``; returns its value (or None)."""
        self._check_index(index)
        self._note(self.element_size)
        yield from self._accessor().read(
            self.element_size, pattern=AccessPattern.RANDOM,
            access_size=self.element_size,
        )
        return self._values.get(index)

    def set(self, index: int, value):
        """Generator: write element ``index``."""
        self._check_index(index)
        self._note(self.element_size)
        yield from self._accessor().write(
            self.element_size, pattern=AccessPattern.RANDOM,
            access_size=self.element_size,
        )
        self._values[index] = value

    def scan(self, start: int = 0, count: typing.Optional[int] = None):
        """Generator: stream ``count`` elements sequentially; returns them."""
        if count is None:
            count = self.length - start
        self._check_index(start)
        if count < 0 or start + count > self.length:
            raise StructureError(f"scan [{start}, {start + count}) out of range")
        if count == 0:
            return []
        nbytes = count * self.element_size
        self._note(nbytes)
        yield from self._accessor().read(
            nbytes, pattern=AccessPattern.SEQUENTIAL,
        )
        return [self._values.get(i) for i in range(start, start + count)]


class RemoteHashMap(_RemoteStructure):
    """Open-addressing (linear probing) hash map over a region.

    Each slot is ``slot_size`` bytes; every probe during ``put``/``get``
    issues one simulated random access, so the structure's cost scales
    with load factor and with the backing device's round trip — which is
    the entire point of placing it well.
    """

    def __init__(
        self,
        cluster: Cluster,
        region: MemoryRegion,
        observer: str,
        slot_size: int = 64,
        tracker: typing.Optional[HotnessTracker] = None,
    ):
        super().__init__(cluster, region, observer, tracker)
        if slot_size <= 0:
            raise ValueError(f"slot size must be positive, got {slot_size}")
        self.slot_size = slot_size
        self.capacity = region.size // slot_size
        if self.capacity < 1:
            raise ValueError("region too small for even one slot")
        self._slots: typing.List[typing.Optional[typing.Tuple]] = (
            [None] * self.capacity
        )
        self.size = 0
        self.total_probes = 0

    @property
    def load_factor(self) -> float:
        return self.size / self.capacity

    def _slot_of(self, key) -> int:
        return hash(key) % self.capacity

    def _probe_access(self, is_write: bool):
        self._note(self.slot_size)
        self.total_probes += 1
        accessor = self._accessor()
        op = accessor.write if is_write else accessor.read
        yield from op(
            self.slot_size, pattern=AccessPattern.RANDOM,
            access_size=self.slot_size,
        )

    def put(self, key, value):
        """Generator: insert/update; raises when the table is full."""
        start = self._slot_of(key)
        for step in range(self.capacity):
            index = (start + step) % self.capacity
            yield from self._probe_access(is_write=False)
            slot = self._slots[index]
            if slot is None or slot[0] == key:
                yield from self._probe_access(is_write=True)
                if slot is None:
                    self.size += 1
                self._slots[index] = (key, value)
                return index
        raise StructureError("hash map is full")

    def get(self, key):
        """Generator: look up ``key``; raises KeyError when absent."""
        start = self._slot_of(key)
        for step in range(self.capacity):
            index = (start + step) % self.capacity
            yield from self._probe_access(is_write=False)
            slot = self._slots[index]
            if slot is None:
                raise KeyError(key)
            if slot[0] == key:
                return slot[1]
        raise KeyError(key)

    def contains(self, key):
        """Generator: membership test without raising."""
        try:
            yield from self.get(key)
        except KeyError:
            return False
        return True
