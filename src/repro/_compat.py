"""Deprecation plumbing for the pre-``Session`` submission entry points.

The ``repro.api`` facade is the one front door for submitting work
(tenants, priorities, admission).  The four older doors —
``RuntimeSystem.submit`` / ``run_job`` / ``run_jobs`` and
``RackDriver.run_trace`` — keep working behind shims that call
:func:`warn_once` and forward to the canonical internals.

Every shim message starts with ``"repro."`` so a test suite can run
with ``-W error::DeprecationWarning`` scoped to ``repro.*`` modules
while exempting exactly these shims by message prefix (see the
``filterwarnings`` entries in ``pyproject.toml``).
"""

from __future__ import annotations

import typing
import warnings

#: Shim keys that already warned in this process (one warning per door,
#: not one per call — a trace replaying 10k jobs should not emit 10k
#: identical warnings).
_WARNED: typing.Set[str] = set()


def warn_once(key: str, message: str, stacklevel: int = 3) -> None:
    """Emit ``message`` as a DeprecationWarning, once per ``key``.

    ``stacklevel=3`` attributes the warning to the shim's caller
    (warn_once -> shim -> caller), so ``-W error`` filters scoped by
    module blame the right code.
    """
    if key in _WARNED:
        return
    _WARNED.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel)


def reset_warnings() -> None:
    """Forget which shims warned (tests assert warn-once behaviour)."""
    _WARNED.clear()


__all__ = ["reset_warnings", "warn_once"]
