"""The one front door: ``connect()`` a rack, ``submit``/``run`` jobs.

Before this module the repo had four divergent submission entry points
(``RuntimeSystem.submit``/``run_job``/``run_jobs`` and
``RackDriver.run_trace``), none of which knew about tenants.
:func:`connect` builds the whole stack — cluster preset, runtime
system, QoS admission — and returns a :class:`Session` whose
``submit``/``run`` are the supported way in.  Everything lands in the
admission layer, so weighted-fair queueing, quotas, priority classes,
and preemption apply uniformly::

    import repro.api as api

    session = api.connect("pooled-rack", seed=7)
    session.register_tenant("web", weight=3.0, priority="interactive",
                            slo_target_ns=2e6)
    session.register_tenant("batch", weight=1.0, priority="best_effort")

    handle = session.submit(job, tenant="web")     # queue it
    stats = session.run()                          # drive to completion
    print(session.dashboard())

The old entry points keep working behind once-per-process
``DeprecationWarning`` shims (see :mod:`repro._compat`).
"""

from __future__ import annotations

import difflib
import inspect
import typing

from repro.dataflow.graph import Job
from repro.federation.session import FederatedSession
from repro.hardware.cluster import Cluster
from repro.runtime.admission import AdmittedJob, RackDriver, RackStats
from repro.runtime.rts import JobStats, RuntimeSystem
from repro.runtime.tenancy import (
    PriorityClass,
    Tenant,
    TenantQuota,
    TenantRegistry,
)


def connect(
    cluster_preset: str = "pooled-rack",
    *,
    seed: int = 0,
    racks: typing.Optional[int] = None,
    routing: typing.Union[str, object] = "round_robin",
    cluster: typing.Optional[Cluster] = None,
    scheduler=None,
    placement=None,
    recovery=None,
    tenants: typing.Optional[TenantRegistry] = None,
    **rack_options,
) -> "Session":
    """Build a cluster, runtime, and QoS admission layer; return the
    Session that fronts them.

    ``cluster_preset``/``seed`` pick the simulated rack (pass an
    explicit ``cluster`` to override); ``scheduler``/``placement``/
    ``recovery`` forward to :class:`~repro.runtime.rts.RuntimeSystem`;
    everything else (``max_concurrent``, ``policy``,
    ``enable_preemption``, ...) forwards to
    :class:`~repro.runtime.admission.RackDriver`.

    Pass ``racks=N`` to stand up a *federation* instead: N rack stacks
    (each ``cluster_preset``, seeded ``seed .. seed+N-1``) on one
    simulated clock behind a router, returned as a
    :class:`~repro.federation.session.FederatedSession` whose
    ``submit``/``run`` go through the routing policy named by
    ``routing`` (``round_robin``, ``least_loaded``, ``affinity``, or
    ``prefix_affinity``).

    Both session kinds are context managers: ``with api.connect(...)
    as s:`` finalizes telemetry and renders the final dashboard on
    exit.  Unknown keyword options raise ``TypeError`` naming the
    nearest valid one.
    """
    _check_rack_options(rack_options, federated=racks is not None)
    if racks is not None:
        if cluster is not None:
            raise ValueError("racks=N builds its own clusters; drop cluster=")
        if tenants is not None:
            raise ValueError(
                "racks=N keeps per-rack tenant registries; use "
                "FederatedSession.register_tenant instead of tenants="
            )
        from repro.federation.session import federate

        return federate(
            racks, cluster_preset, seed=seed, routing=routing,
            scheduler=scheduler, placement=placement, recovery=recovery,
            **rack_options,
        )
    if cluster is None:
        cluster = Cluster.preset(cluster_preset, seed=seed)
    rts = RuntimeSystem(
        cluster, scheduler=scheduler, placement=placement, recovery=recovery,
    )
    driver = RackDriver(rts, tenants=tenants, **rack_options)
    return Session(rts, driver)


def _valid_rack_options(federated: bool) -> typing.FrozenSet[str]:
    """The option vocabulary ``connect(**rack_options)`` accepts."""
    params = inspect.signature(RackDriver.__init__).parameters
    valid = {n for n in params if n not in ("self", "rts")}
    if federated:
        from repro.federation.session import federate

        fed = inspect.signature(federate).parameters
        valid |= {
            n for n, p in fed.items()
            if p.kind is inspect.Parameter.KEYWORD_ONLY
        }
        valid -= {"tenants"}  # per-rack registries in a federation
    return frozenset(valid)


def _check_rack_options(options: typing.Mapping[str, object],
                        federated: bool) -> None:
    """Reject unknown ``connect`` options, naming the nearest valid one."""
    valid = _valid_rack_options(federated)
    for name in options:
        if name in valid:
            continue
        close = difflib.get_close_matches(name, sorted(valid), n=1)
        hint = f"; did you mean {close[0]!r}?" if close else ""
        raise TypeError(
            f"connect() got an unexpected keyword argument {name!r}{hint} "
            f"(valid options: {', '.join(sorted(valid))})"
        )


class Session:
    """A connected rack: tenants, submission, execution, reporting."""

    def __init__(self, rts: RuntimeSystem, driver: RackDriver):
        self.rts = rts
        self.driver = driver
        #: True once :meth:`close` has finalized the run.
        self.closed = False
        #: The end-of-run dashboard rendered by :meth:`close`.
        self.final_dashboard: typing.Optional[str] = None

    # -- plumbing accessors ----------------------------------------------

    @property
    def cluster(self) -> Cluster:
        """The simulated rack this session runs on."""
        return self.rts.cluster

    @property
    def obs(self):
        """The run's cross-layer observability hub."""
        return self.rts.cluster.obs

    @property
    def tenants(self) -> TenantRegistry:
        """The tenant registry the admission layer schedules over."""
        return self.driver.tenants

    @property
    def stats(self) -> RackStats:
        """Admission-level statistics for everything submitted so far."""
        return self.driver.stats

    # -- tenancy ----------------------------------------------------------

    def register_tenant(
        self,
        name: str,
        *,
        weight: float = 1.0,
        priority: typing.Union[PriorityClass, str, int] = PriorityClass.BATCH,
        quota: typing.Optional[TenantQuota] = None,
        slo_target_ns: typing.Optional[float] = None,
        slo_objective: float = 0.99,
    ) -> Tenant:
        """Register a tenant; optionally attach an end-to-end SLO.

        The SLO is tracked on workload ``tenant:<name>`` (arrival ->
        finish latency recorded by the admission layer) and funds the
        tenant's quota burst credits: remaining error budget scales
        ``quota.burst_ns``.  A default multi-window burn-rate alert
        rule is installed alongside the policy, so sustained breaches
        open ``alert`` spans during the run (see
        :mod:`repro.obs.telemetry`).
        """
        tenant = self.tenants.register(
            name, weight=weight, priority=priority, quota=quota,
        )
        if slo_target_ns is not None:
            self.obs.slo.set_policy(
                f"tenant:{name}", slo_target_ns, objective=slo_objective,
            )
            from repro.obs.telemetry import BurnRateRule

            window = self.obs.telemetry.window_ns
            self.obs.telemetry.alerts.add_rule(BurnRateRule(
                f"tenant:{name}", fast_ns=5 * window, slow_ns=30 * window,
                scope=f"tenant {name}",
            ))
        return tenant

    # -- submission / execution -------------------------------------------

    def submit(
        self,
        job: Job,
        *,
        tenant: typing.Optional[str] = None,
        priority: typing.Union[PriorityClass, str, int, None] = None,
        cost: float = 1.0,
    ) -> AdmittedJob:
        """Queue one job through QoS admission; returns its handle.

        Tenant/priority resolution: explicit argument, else the job's
        own annotation (``Job(tenant=...)``, ``linear_job(tenant=...)``,
        ``@task(..., tenant=...)``), else the default tenant and its
        class.  The handle's ``stats`` fills in once the job finishes
        (drive the clock with :meth:`run`).
        """
        return self.driver.submit_job(
            job.name, job, tenant=tenant, priority=priority, cost=cost,
        )

    def submit_app(
        self,
        app: str,
        spec: typing.Optional[typing.Mapping[str, object]] = None,
        *,
        tenant: typing.Optional[str] = None,
        priority: typing.Union[PriorityClass, str, int, None] = None,
        cost: float = 1.0,
        **spec_kwargs,
    ) -> AdmittedJob:
        """Queue one app-class job by name through QoS admission.

        ``app`` names a class from :data:`repro.apps.APP_BUILDERS`
        (``census``, ``dbms``, ``hpc``, ``llm``, ``ml``,
        ``streaming``); ``spec`` (a mapping) and/or keyword arguments
        forward to its builder.  This is the typed front door: every
        app class enters through the same admission/tenancy path,
        instead of each driver submitting ad hoc.
        """
        from repro.apps import build_app_job

        merged = dict(spec or {})
        merged.update(spec_kwargs)
        job = build_app_job(app, **merged)
        return self.submit(job, tenant=tenant, priority=priority, cost=cost)

    def run(
        self,
        *jobs: Job,
        tenant: typing.Optional[str] = None,
        priority: typing.Union[PriorityClass, str, int, None] = None,
    ):
        """Submit ``jobs`` (if any) and run the simulation to the end.

        Returns the single :class:`~repro.runtime.rts.JobStats` for one
        job, a list for several, or the session's
        :class:`~repro.runtime.admission.RackStats` when called with no
        arguments (drain mode).  A failed job raises its error; a shed
        job returns ``None`` stats.
        """
        handles = [
            self.submit(job, tenant=tenant, priority=priority)
            for job in jobs
        ]
        self.rts.cluster.engine.run()
        if not jobs:
            return self.driver.stats
        results: typing.List[typing.Optional[JobStats]] = []
        for handle in handles:
            stats = self._result(handle)
            results.append(stats)
        return results[0] if len(jobs) == 1 else results

    def result(self, handle: AdmittedJob) -> typing.Optional[JobStats]:
        """Finished stats for a ``submit``/``submit_app`` handle.

        ``None`` for a shed job; raises the job's error if it failed;
        raises ``RuntimeError`` if the clock was never driven far
        enough for the job to be admitted.
        """
        return self._result(handle)

    def _result(self, handle: AdmittedJob) -> typing.Optional[JobStats]:
        """Finished stats for a handle; raises the job's error."""
        if handle.shed:
            return None
        execution = handle.execution
        if execution is None:
            raise RuntimeError(
                f"job {handle.name!r} was never admitted (queued behind a "
                f"quota?); check session.stats and tenant quotas"
            )
        if execution.stats.error is not None:
            raise execution.stats.error
        return execution.stats

    def run_trace(self, arrivals) -> RackStats:
        """Run ``(time, name, job_factory[, tenant[, priority]])``
        arrivals to completion; returns the rack statistics."""
        return self.driver._run_trace(arrivals)

    # -- reporting --------------------------------------------------------

    def tenant_report(self) -> typing.Dict[str, dict]:
        """Per-tenant admission/fairness/preemption accounting."""
        return self.driver.tenant_report()

    def dashboard(self, job: typing.Optional[str] = None) -> str:
        """The run's text dashboard (jobs, attribution, SLOs, tenants)."""
        from repro.obs.dashboard import render_dashboard

        return render_dashboard(self.obs.data(), job=job)

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Finalize the run: flush telemetry, render the last dashboard.

        The telemetry hub takes its final poll and still-open alert
        spans are closed (an unresolved breach stays visible in the
        data); the end-of-run dashboard is kept on
        :attr:`final_dashboard`.  Idempotent.
        """
        if self.closed:
            return
        self.obs.telemetry.finalize(self.rts.cluster.engine.now)
        self.final_dashboard = self.dashboard()
        self.closed = True

    def __enter__(self) -> "Session":
        """``with api.connect(...) as session:`` support."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Close the session when the ``with`` block ends."""
        self.close()


__all__ = [
    "AdmittedJob",
    "FederatedSession",
    "PriorityClass",
    "Session",
    "Tenant",
    "TenantQuota",
    "TenantRegistry",
    "connect",
]
