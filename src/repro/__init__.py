"""repro — a programming model and runtime for fully disaggregated systems.

A faithful, executable reproduction of *Programming Fully Disaggregated
Systems* (Anneser, Vogel, Gruber, Bandle, Giceva — HotOS '23): a
declarative dataflow programming model with typed Memory Regions,
explicit memory ownership, sync/async access interfaces, and a runtime
system that maps it all onto a simulated rack of disaggregated compute
and memory.

Quickstart::

    from repro import Cluster, RuntimeSystem, Job, Task, WorkSpec, RegionUsage

    cluster = Cluster.preset("pooled-rack")      # Figure 1b
    rts = RuntimeSystem(cluster)

    job = Job("hello")
    a = job.add_task(Task("produce", work=WorkSpec(ops=1e5,
                                                   output=RegionUsage(1 << 20))))
    b = job.add_task(Task("consume", work=WorkSpec(input_usage=RegionUsage(0))))
    job.connect(a, b)
    stats = rts.run_job(job)
    print(stats.makespan, stats.zero_copy_handover)

See ``examples/`` for complete applications and ``benchmarks/`` for the
experiment harness (DESIGN.md maps each bench to the paper's artifacts).
"""

from repro.dataflow import (
    Job,
    RegionUsage,
    Task,
    TaskProperties,
    ValidationError,
    WorkSpec,
    linear_job,
    task,
)
from repro.hardware import Cluster
from repro.hardware.spec import ComputeKind, MemoryKind, OpClass
from repro.memory import (
    AccessMode,
    AccessPattern,
    BandwidthClass,
    LatencyClass,
    MemoryProperties,
    RegionType,
)
from repro.runtime import (
    JobStats,
    RuntimeSystem,
    TaskContext,
    baselines,
)

__version__ = "0.1.0"

__all__ = [
    "AccessMode",
    "AccessPattern",
    "BandwidthClass",
    "Cluster",
    "ComputeKind",
    "Job",
    "JobStats",
    "LatencyClass",
    "MemoryKind",
    "MemoryProperties",
    "OpClass",
    "RegionType",
    "RegionUsage",
    "RuntimeSystem",
    "Task",
    "TaskContext",
    "TaskProperties",
    "ValidationError",
    "WorkSpec",
    "baselines",
    "linear_job",
    "task",
]
