"""repro — a programming model and runtime for fully disaggregated systems.

A faithful, executable reproduction of *Programming Fully Disaggregated
Systems* (Anneser, Vogel, Gruber, Bandle, Giceva — HotOS '23): a
declarative dataflow programming model with typed Memory Regions,
explicit memory ownership, sync/async access interfaces, and a runtime
system that maps it all onto a simulated rack of disaggregated compute
and memory.

Quickstart::

    from repro import Job, RegionUsage, Task, WorkSpec, connect

    session = connect("pooled-rack")             # Figure 1b
    job = Job("hello")
    a = job.add_task(Task("produce", work=WorkSpec(ops=1e5,
                                                   output=RegionUsage(1 << 20))))
    b = job.add_task(Task("consume", work=WorkSpec(input_usage=RegionUsage(0))))
    job.connect(a, b)
    stats = session.run(job)
    print(stats.makespan, stats.zero_copy_handover)

Multi-tenant QoS (weights, priority classes, quotas, preemption) lives
behind the same door — see :mod:`repro.api` and the README walkthrough.

See ``examples/`` for complete applications and ``benchmarks/`` for the
experiment harness (DESIGN.md maps each bench to the paper's artifacts).
"""

from repro.dataflow import (
    Job,
    RegionUsage,
    Task,
    TaskProperties,
    ValidationError,
    WorkSpec,
    linear_job,
    task,
)
from repro.hardware import Cluster
from repro.hardware.spec import ComputeKind, MemoryKind, OpClass
from repro.memory import (
    AccessMode,
    AccessPattern,
    BandwidthClass,
    LatencyClass,
    MemoryProperties,
    RegionType,
)
from repro.runtime import (
    JobStats,
    PriorityClass,
    RuntimeSystem,
    TaskContext,
    TenantQuota,
    baselines,
)
from repro import api
from repro.api import Session, connect

__version__ = "0.1.0"

__all__ = [
    "AccessMode",
    "AccessPattern",
    "BandwidthClass",
    "Cluster",
    "ComputeKind",
    "Job",
    "JobStats",
    "LatencyClass",
    "MemoryKind",
    "MemoryProperties",
    "OpClass",
    "PriorityClass",
    "RegionType",
    "RegionUsage",
    "RuntimeSystem",
    "Session",
    "Task",
    "TaskContext",
    "TaskProperties",
    "TenantQuota",
    "ValidationError",
    "WorkSpec",
    "api",
    "baselines",
    "connect",
    "linear_job",
    "task",
]
