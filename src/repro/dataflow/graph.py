"""Jobs, tasks, and the dataflow DAG (paper §2.1).

A :class:`Job` is a directed acyclic graph of :class:`Task` objects.
Edges carry the dataflow: the upstream task's output region becomes the
downstream task's input region (by ownership transfer when physically
possible — Figure 4).  Validation catches cycles, unknown endpoints,
and property contradictions before anything is submitted to the
runtime.
"""

from __future__ import annotations

import typing
from itertools import count

import networkx as nx

from repro.dataflow.properties import TaskProperties
from repro.dataflow.workspec import WorkSpec


class ValidationError(Exception):
    """The job graph is malformed."""


class Task:
    """One computational unit in a job's DAG."""

    _ids = count()

    def __init__(
        self,
        name: str,
        work: typing.Optional[WorkSpec] = None,
        properties: typing.Optional[TaskProperties] = None,
        fn: typing.Optional[typing.Callable] = None,
    ):
        if not name:
            raise ValidationError("task name may not be empty")
        self.id = next(Task._ids)
        self.name = name
        self.work = work if work is not None else WorkSpec()
        self.properties = properties if properties is not None else TaskProperties()
        #: Optional user behaviour: a generator function ``fn(ctx)`` run
        #: inside the simulation with a TaskContext (see repro.runtime.rts).
        self.fn = fn
        self.job: typing.Optional["Job"] = None

    @property
    def qualified_name(self) -> str:
        return f"{self.job.name}/{self.name}" if self.job is not None else self.name

    def upstream(self) -> typing.List["Task"]:
        """Direct predecessors of this task in the job DAG."""
        if self.job is None:
            return []
        return [self.job.tasks[n] for n in self.job.graph.predecessors(self.name)]

    def downstream(self) -> typing.List["Task"]:
        """Direct successors of this task in the job DAG."""
        if self.job is None:
            return []
        return [self.job.tasks[n] for n in self.job.graph.successors(self.name)]

    def __repr__(self) -> str:
        return f"<Task {self.qualified_name}>"


class Job:
    """A dataflow job: a named DAG of tasks plus job-wide settings."""

    _ids = count()

    def __init__(
        self,
        name: str,
        global_state_size: int = 0,
        *,
        tenant: typing.Optional[str] = None,
        priority=None,
    ):
        if not name:
            raise ValidationError("job name may not be empty")
        if global_state_size < 0:
            raise ValidationError("global_state_size must be >= 0")
        self.id = next(Job._ids)
        self.name = name
        self.tasks: typing.Dict[str, Task] = {}
        self.graph = nx.DiGraph()
        #: Size of the job's Global State region (Table 2); 0 = none.
        self.global_state_size = global_state_size
        #: Tenancy annotations (None = decided at submission: the
        #: submitting tenant's defaults).  The dataflow layer carries
        #: them opaquely; the runtime's tenancy module interprets them.
        self.tenant = tenant
        self.priority = priority
        #: Sizes of the job's Global Scratch slots, discovered from tasks.
        self.submitted = False

    # -- construction -----------------------------------------------------

    def add_task(self, task: Task) -> Task:
        """Attach a task to this job (names must be unique)."""
        if task.name in self.tasks:
            raise ValidationError(f"duplicate task name {task.name!r} in job {self.name!r}")
        if task.job is not None:
            raise ValidationError(f"task {task.name!r} already belongs to {task.job.name!r}")
        task.job = self
        self.tasks[task.name] = task
        self.graph.add_node(task.name)
        return task

    def connect(self, upstream: typing.Union[str, Task], downstream: typing.Union[str, Task]) -> None:
        """Add a dataflow edge: upstream's output feeds downstream's input."""
        up = upstream.name if isinstance(upstream, Task) else upstream
        down = downstream.name if isinstance(downstream, Task) else downstream
        for name in (up, down):
            if name not in self.tasks:
                raise ValidationError(f"unknown task {name!r} in job {self.name!r}")
        if up == down:
            raise ValidationError(f"self-loop on task {up!r}")
        self.graph.add_edge(up, down)

    # -- queries -----------------------------------------------------------

    def sources(self) -> typing.List[Task]:
        """Tasks with no upstream edges."""
        return [self.tasks[n] for n in self.graph.nodes if self.graph.in_degree(n) == 0]

    def sinks(self) -> typing.List[Task]:
        """Tasks with no downstream edges."""
        return [self.tasks[n] for n in self.graph.nodes if self.graph.out_degree(n) == 0]

    def topological_order(self) -> typing.List[Task]:
        """Tasks in a dependency-respecting order (raises on cycles)."""
        try:
            order = list(nx.topological_sort(self.graph))
        except nx.NetworkXUnfeasible as exc:
            raise ValidationError(f"job {self.name!r} contains a cycle") from exc
        return [self.tasks[n] for n in order]

    def edges(self) -> typing.List[typing.Tuple[Task, Task]]:
        """All dataflow edges as (upstream task, downstream task) pairs."""
        return [(self.tasks[u], self.tasks[v]) for u, v in self.graph.edges]

    # -- validation ----------------------------------------------------

    def validate(self) -> None:
        """Raise :class:`ValidationError` on structural problems."""
        if not self.tasks:
            raise ValidationError(f"job {self.name!r} has no tasks")
        if not nx.is_directed_acyclic_graph(self.graph):
            cycle = nx.find_cycle(self.graph)
            raise ValidationError(f"job {self.name!r} contains a cycle: {cycle}")

        # Global-scratch slots must be published before consumption and
        # published exactly once.
        publishers: typing.Dict[str, str] = {}
        for task in self.tasks.values():
            for slot in task.work.scratch_puts:
                if slot in publishers:
                    raise ValidationError(
                        f"global scratch slot {slot!r} published by both "
                        f"{publishers[slot]!r} and {task.name!r}"
                    )
                publishers[slot] = task.name
        for task in self.tasks.values():
            for slot in task.work.scratch_gets:
                if slot not in publishers:
                    raise ValidationError(
                        f"task {task.name!r} reads unpublished global scratch "
                        f"slot {slot!r}"
                    )

        # A task expecting input must have at least one upstream edge.
        for task in self.tasks.values():
            if task.work.input_usage is not None and not list(
                self.graph.predecessors(task.name)
            ):
                raise ValidationError(
                    f"task {task.name!r} declares input usage but has no upstream"
                )

    def global_scratch_slots(self) -> typing.Dict[str, int]:
        """slot name -> size, gathered from all publishing tasks."""
        slots: typing.Dict[str, int] = {}
        for task in self.tasks.values():
            for slot, usage in task.work.scratch_puts.items():
                slots[slot] = usage.size
        return slots

    def __repr__(self) -> str:
        return f"<Job {self.name!r}: {len(self.tasks)} tasks, {self.graph.number_of_edges()} edges>"
