"""Decorator/builder sugar for constructing dataflow jobs.

The paper's declarative style, as Python::

    job = Job("hospital")

    @task(job, compute=ComputeKind.GPU, confidential=True,
          mem_latency=LatencyClass.LOW,
          work=WorkSpec(op_class=OpClass.VECTOR, ops=5e6,
                        output=RegionUsage(EIGHT_MiB)))
    def preprocess(ctx):
        ...  # optional custom behaviour

    @task(job, after=preprocess, ...)
    def face_recognition(ctx):
        ...

``after`` wires the dataflow edges at declaration time.
"""

from __future__ import annotations

import typing

from repro.dataflow.graph import Job, Task
from repro.dataflow.properties import TaskProperties
from repro.dataflow.workspec import RegionUsage, WorkSpec
from repro.hardware.spec import ComputeKind, OpClass
from repro.memory.properties import LatencyClass

TaskLike = typing.Union[Task, str]


def task(
    job: Job,
    *,
    name: typing.Optional[str] = None,
    after: typing.Union[TaskLike, typing.Sequence[TaskLike], None] = None,
    work: typing.Optional[WorkSpec] = None,
    compute: typing.Optional[ComputeKind] = None,
    confidential: bool = False,
    persistent: bool = False,
    mem_latency: typing.Optional[LatencyClass] = None,
    streaming: bool = False,
) -> typing.Callable:
    """Decorator: register the function as a task of ``job``.

    The decorated function becomes the task's custom behaviour (may be
    ``None``-bodied; the WorkSpec default behaviour then applies).
    Returns the :class:`~repro.dataflow.graph.Task`, so the decorated
    name can be used directly in later ``after=`` references.
    """
    upstream: typing.List[TaskLike]
    if after is None:
        upstream = []
    elif isinstance(after, (Task, str)):
        upstream = [after]
    else:
        upstream = list(after)

    properties = TaskProperties(
        compute=compute,
        confidential=confidential,
        persistent=persistent,
        mem_latency=mem_latency,
        streaming=streaming,
    )

    def decorate(fn: typing.Callable) -> Task:
        new_task = Task(
            name=name or fn.__name__,
            work=work,
            properties=properties,
            fn=fn if _has_body(fn) else None,
        )
        job.add_task(new_task)
        for up in upstream:
            job.connect(up, new_task)
        return new_task

    return decorate


def _has_body(fn: typing.Callable) -> bool:
    """Heuristic: treat functions whose body is just ``...``/``pass``/a
    docstring as declaration-only (no custom behaviour)."""
    code = getattr(fn, "__code__", None)
    if code is None:
        return False
    # A trivial body compiles to <= 4 instructions (load const, return).
    return len(code.co_code) > 8


def linear_job(
    name: str,
    stages: typing.Sequence[typing.Tuple[str, WorkSpec, TaskProperties]],
    global_state_size: int = 0,
) -> Job:
    """Build a simple pipeline job from (name, work, properties) stages."""
    job = Job(name, global_state_size=global_state_size)
    previous: typing.Optional[Task] = None
    for stage_name, work, properties in stages:
        current = job.add_task(Task(stage_name, work=work, properties=properties))
        if previous is not None:
            job.connect(previous, current)
        previous = current
    job.validate()
    return job


__all__ = ["task", "linear_job", "RegionUsage", "WorkSpec", "OpClass"]
