"""Decorator/builder sugar for constructing dataflow jobs.

The paper's declarative style, as Python::

    job = Job("hospital")

    @task(job, compute=ComputeKind.GPU, confidential=True,
          mem_latency=LatencyClass.LOW,
          work=WorkSpec(op_class=OpClass.VECTOR, ops=5e6,
                        output=RegionUsage(EIGHT_MiB)))
    def preprocess(ctx):
        ...  # optional custom behaviour

    @task(job, after=preprocess, ...)
    def face_recognition(ctx):
        ...

``after`` wires the dataflow edges at declaration time.  ``tenant=``
and ``priority=`` annotate the *job* for the multi-tenant admission
layer (see :mod:`repro.runtime.tenancy`); they ride along on the job
so ``Session.submit(job)`` needs no extra arguments.
"""

from __future__ import annotations

import dis
import typing

from repro.dataflow.graph import Job, Task, ValidationError
from repro.dataflow.properties import TaskProperties
from repro.dataflow.workspec import RegionUsage, WorkSpec
from repro.hardware.spec import ComputeKind, OpClass
from repro.memory.properties import LatencyClass

TaskLike = typing.Union[Task, str]


def _annotate_job(job: Job, tenant, priority, where: str) -> None:
    """Set job-level tenancy annotations, rejecting contradictions."""
    if tenant is not None:
        existing = getattr(job, "tenant", None)
        if existing is not None and existing != tenant:
            raise ValidationError(
                f"{where} sets tenant={tenant!r} but job {job.name!r} is "
                f"already annotated with tenant={existing!r}"
            )
        job.tenant = tenant
    if priority is not None:
        existing = getattr(job, "priority", None)
        if existing is not None and existing != priority:
            raise ValidationError(
                f"{where} sets priority={priority!r} but job {job.name!r} "
                f"is already annotated with priority={existing!r}"
            )
        job.priority = priority


def task(
    job: Job,
    *,
    name: typing.Optional[str] = None,
    after: typing.Union[TaskLike, typing.Sequence[TaskLike], None] = None,
    work: typing.Optional[WorkSpec] = None,
    compute: typing.Optional[ComputeKind] = None,
    confidential: bool = False,
    persistent: bool = False,
    mem_latency: typing.Optional[LatencyClass] = None,
    streaming: bool = False,
    tenant: typing.Optional[str] = None,
    priority=None,
) -> typing.Callable:
    """Decorator: register the function as a task of ``job``.

    The decorated function becomes the task's custom behaviour (may be
    ``None``-bodied; the WorkSpec default behaviour then applies).
    Returns the :class:`~repro.dataflow.graph.Task` — carrying the
    function's ``__name__``/``__doc__`` so introspection still works —
    so the decorated name can be used directly in later ``after=``
    references.  Decorating the *same* function object twice (e.g.
    under two jobs) raises: the Task replaces the name, so a second
    decoration would silently alias the first job's state.

    ``tenant=``/``priority=`` annotate the whole job (all tasks share
    the submission identity); conflicting annotations raise.
    """
    upstream: typing.List[TaskLike]
    if after is None:
        upstream = []
    elif isinstance(after, (Task, str)):
        upstream = [after]
    else:
        upstream = list(after)

    properties = TaskProperties(
        compute=compute,
        confidential=confidential,
        persistent=persistent,
        mem_latency=mem_latency,
        streaming=streaming,
    )

    def decorate(fn: typing.Callable) -> Task:
        bound = getattr(fn, "__repro_task__", None)
        if bound is not None:
            raise ValidationError(
                f"function {getattr(fn, '__qualname__', fn)!r} is already "
                f"bound to task {bound!r}; the @task decorator replaces "
                f"the name with the Task, so reusing one function would "
                f"alias its state — define a fresh function per task"
            )
        task_name = name or fn.__name__
        _annotate_job(job, tenant, priority, where=f"@task({task_name!r})")
        new_task = Task(
            name=task_name,
            work=work,
            properties=properties,
            fn=fn if _has_body(fn) else None,
        )
        job.add_task(new_task)
        for up in upstream:
            job.connect(up, new_task)
        # Preserve the decorated function's identity on the Task (the
        # decoration replaces the name in the caller's namespace).
        new_task.__name__ = fn.__name__
        new_task.__qualname__ = getattr(fn, "__qualname__", fn.__name__)
        new_task.__doc__ = fn.__doc__
        new_task.__wrapped__ = fn
        try:
            fn.__repro_task__ = new_task.qualified_name
        except (AttributeError, TypeError):  # builtins / slotted callables
            pass
        return new_task

    return decorate


#: Opcodes a declaration-only body compiles to, across CPython 3.8-3.13:
#: ``pass``, ``...``, and docstring-only bodies all reduce to "return a
#: constant" (the docstring itself lives in ``co_consts``, emitting no
#: code).  Anything else — calls, loads of names, yields — is a body.
_TRIVIAL_OPS = frozenset({
    "RESUME",        # 3.11+ prologue
    "CACHE",         # 3.11+ inline caches (not yielded by default, but safe)
    "NOP",
    "EXTENDED_ARG",
    "LOAD_CONST",
    "RETURN_CONST",  # 3.12+
    "RETURN_VALUE",
    "POP_TOP",       # pre-3.8 docstring-expression residue
})


def _has_body(fn: typing.Callable) -> bool:
    """Does the function have a real body (vs ``...``/``pass``/docstring)?

    Inspects the compiled instructions instead of guessing from
    ``len(co_code)`` (whose trivial-body length changes between CPython
    versions): a declaration-only body consists solely of
    constant-return plumbing.  Note a body like ``return 1`` is still
    "trivial" here — task behaviours must be generators, so a bare
    constant return cannot be meaningful behaviour.
    """
    code = getattr(fn, "__code__", None)
    if code is None:
        return False
    return any(
        ins.opname not in _TRIVIAL_OPS for ins in dis.get_instructions(code)
    )


def linear_job(
    name: str,
    stages: typing.Sequence[typing.Tuple[str, WorkSpec, TaskProperties]],
    global_state_size: int = 0,
    *,
    tenant: typing.Optional[str] = None,
    priority=None,
) -> Job:
    """Build a simple pipeline job from (name, work, properties) stages.

    ``tenant=``/``priority=`` annotate the job for the multi-tenant
    admission layer (kept on the Job; interpreted at submission).
    """
    job = Job(name, global_state_size=global_state_size,
              tenant=tenant, priority=priority)
    previous: typing.Optional[Task] = None
    for stage_name, work, properties in stages:
        current = job.add_task(Task(stage_name, work=work, properties=properties))
        if previous is not None:
            job.connect(previous, current)
        previous = current
    job.validate()
    return job


__all__ = ["task", "linear_job", "RegionUsage", "WorkSpec", "OpClass"]
