"""Job (de)serialization: dataflows as data.

The declarative model's payoff is that a whole dataflow — DAG, work
specifications, and property cards — is *description*, not code, so it
can live in JSON files, be shipped to a remote runtime, or be generated
by other tools.  ``job_to_dict``/``job_from_dict`` are loss-free for
everything declarative (custom task functions, being code, are not
serializable and are rejected).
"""

from __future__ import annotations

import json
import typing

from repro.dataflow.graph import Job, Task
from repro.dataflow.properties import TaskProperties
from repro.dataflow.workspec import RegionUsage, WorkSpec
from repro.hardware.spec import ComputeKind, OpClass
from repro.memory.interfaces import AccessPattern
from repro.memory.properties import LatencyClass


class SerializationError(ValueError):
    """The job cannot be (de)serialized."""


# -- encoding ------------------------------------------------------------


def _usage_to_dict(usage: typing.Optional[RegionUsage]):
    if usage is None:
        return None
    return {
        "size": usage.size,
        "touches": usage.touches,
        "pattern": usage.pattern.value,
        "access_size": usage.access_size,
    }


def _work_to_dict(work: WorkSpec) -> dict:
    return {
        "op_class": work.op_class.value,
        "ops": work.ops,
        "input_usage": _usage_to_dict(work.input_usage),
        "output": _usage_to_dict(work.output),
        "scratch": _usage_to_dict(work.scratch),
        "state_usage": _usage_to_dict(work.state_usage),
        "scratch_puts": {
            slot: _usage_to_dict(usage)
            for slot, usage in work.scratch_puts.items()
        },
        "scratch_gets": list(work.scratch_gets),
    }


def _properties_to_dict(properties: TaskProperties) -> dict:
    return {
        "compute": properties.compute.value if properties.compute else None,
        "confidential": properties.confidential,
        "persistent": properties.persistent,
        "mem_latency": (properties.mem_latency.name.lower()
                        if properties.mem_latency is not None else None),
        "streaming": properties.streaming,
    }


def job_to_dict(job: Job) -> dict:
    """Encode a job as a JSON-safe dictionary.

    Raises :class:`SerializationError` for jobs with custom task
    functions — only the declarative subset is portable.
    """
    for task in job.tasks.values():
        if task.fn is not None:
            raise SerializationError(
                f"task {task.qualified_name!r} has a custom function; "
                "only declarative jobs are serializable"
            )
    return {
        "version": 1,
        "name": job.name,
        "global_state_size": job.global_state_size,
        "tasks": [
            {
                "name": task.name,
                "work": _work_to_dict(task.work),
                "properties": _properties_to_dict(task.properties),
            }
            for task in job.topological_order()
        ],
        "edges": [[u, v] for u, v in job.graph.edges],
    }


def job_to_json(job: Job, indent: int = 2) -> str:
    """Encode a declarative job as a JSON string."""
    return json.dumps(job_to_dict(job), indent=indent)


# -- decoding --------------------------------------------------------------


def _usage_from_dict(data) -> typing.Optional[RegionUsage]:
    if data is None:
        return None
    return RegionUsage(
        size=int(data["size"]),
        touches=float(data.get("touches", 1.0)),
        pattern=AccessPattern(data.get("pattern", "sequential")),
        access_size=int(data.get("access_size", 64)),
    )


def _work_from_dict(data: dict) -> WorkSpec:
    return WorkSpec(
        op_class=OpClass(data.get("op_class", "scalar")),
        ops=float(data.get("ops", 0.0)),
        input_usage=_usage_from_dict(data.get("input_usage")),
        output=_usage_from_dict(data.get("output")),
        scratch=_usage_from_dict(data.get("scratch")),
        state_usage=_usage_from_dict(data.get("state_usage")),
        scratch_puts={
            slot: _usage_from_dict(usage)
            for slot, usage in data.get("scratch_puts", {}).items()
        },
        scratch_gets=tuple(data.get("scratch_gets", ())),
    )


def _properties_from_dict(data: dict) -> TaskProperties:
    compute = data.get("compute")
    mem_latency = data.get("mem_latency")
    return TaskProperties(
        compute=ComputeKind(compute) if compute else None,
        confidential=bool(data.get("confidential", False)),
        persistent=bool(data.get("persistent", False)),
        mem_latency=LatencyClass[mem_latency.upper()] if mem_latency else None,
        streaming=bool(data.get("streaming", False)),
    )


def job_from_dict(data: dict) -> Job:
    """Decode a job; validates the DAG before returning."""
    if data.get("version") != 1:
        raise SerializationError(
            f"unsupported job encoding version {data.get('version')!r}"
        )
    try:
        job = Job(data["name"],
                  global_state_size=int(data.get("global_state_size", 0)))
        for entry in data["tasks"]:
            job.add_task(Task(
                entry["name"],
                work=_work_from_dict(entry.get("work", {})),
                properties=_properties_from_dict(entry.get("properties", {})),
            ))
        for u, v in data.get("edges", []):
            job.connect(u, v)
    except (KeyError, ValueError, TypeError) as exc:
        raise SerializationError(f"malformed job encoding: {exc}") from exc
    job.validate()
    return job


def job_from_json(text: str) -> Job:
    """Decode a job from its JSON encoding (validates the DAG)."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON: {exc}") from exc
    return job_from_dict(data)
