"""Declarative task/job properties (the paper's Figure 2c).

Each task in the hospital example carries a property card::

    comp. device: GPU
    confidential: true
    persistent:   false
    mem. latency: low

:class:`TaskProperties` is that card.  Properties constrain the runtime,
they never name devices: ``compute=ComputeKind.GPU`` asks for *a* GPU,
``mem_latency=LatencyClass.LOW`` asks for scratch memory that is fast
*from wherever the task ends up running* (Figure 3 semantics).
"""

from __future__ import annotations

import dataclasses
import typing

from repro.hardware.spec import ComputeKind
from repro.memory.properties import LatencyClass, MemoryProperties


@dataclasses.dataclass(frozen=True)
class TaskProperties:
    """The declarative property card attached to a task."""

    #: Preferred compute device class; None lets the scheduler choose.
    compute: typing.Optional[ComputeKind] = None
    #: Data processed by this task is sensitive: its regions must be
    #: placed on isolated (non-pooled or encryption-capable) devices and
    #: must not be shared with other jobs.
    confidential: bool = False
    #: The task's *output* must survive crashes (placed on persistent media).
    persistent: bool = False
    #: Required latency class for the task's private scratch memory,
    #: relative to the executing compute device.  None = don't care.
    mem_latency: typing.Optional[LatencyClass] = None
    #: Streamed tasks prefer smaller buffers and incremental handover.
    streaming: bool = False
    #: Restrict scheduling to a named compute pool
    #: (:meth:`repro.hardware.cluster.Cluster.define_pool`).  How
    #: phase-disaggregated pipelines (LLM prefill vs decode) keep paired
    #: tasks on different devices declaratively: the job names a *role*,
    #: the cluster decides which devices play it.  A pool the cluster
    #: does not define leaves the task unconstrained, so pool-annotated
    #: jobs still run on clusters without the split.
    device_pool: typing.Optional[str] = None

    def scratch_properties(self) -> MemoryProperties:
        """Memory properties for this task's private scratch."""
        return MemoryProperties(
            latency=self.mem_latency if self.mem_latency is not None else LatencyClass.MEDIUM,
            sync=True,
            confidential=self.confidential,
        )

    def output_properties(self) -> MemoryProperties:
        """Memory properties for this task's output region."""
        return MemoryProperties(
            latency=LatencyClass.MEDIUM if not self.persistent else LatencyClass.ANY,
            persistent=True if self.persistent else None,
            confidential=self.confidential,
        )

    def describe(self) -> str:
        """The Figure 2c card as one line (parseable by the DSL)."""
        parts = []
        if self.compute is not None:
            parts.append(f"compute={self.compute.value}")
        parts.append(f"confidential={str(self.confidential).lower()}")
        parts.append(f"persistent={str(self.persistent).lower()}")
        if self.mem_latency is not None:
            parts.append(f"mem_latency={self.mem_latency.name.lower()}")
        if self.streaming:
            parts.append("streaming")
        if self.device_pool is not None:
            parts.append(f"device_pool={self.device_pool}")
        return " ".join(parts)
