"""Task work specifications: what a task computes and how it touches memory.

The simulator needs a behavioural model of each task.  A
:class:`WorkSpec` declares

* the compute cost (an :class:`~repro.hardware.spec.OpClass` and an op
  count),
* how the task touches its input (received from upstream), its private
  scratch, its output, the job's global state, and named global-scratch
  slots.

Custom task functions (see :mod:`repro.runtime.rts`) can override the
default behaviour entirely; the WorkSpec remains the declarative
contract the optimizer plans from.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.hardware.spec import OpClass
from repro.memory.interfaces import AccessPattern


@dataclasses.dataclass(frozen=True)
class RegionUsage:
    """How a task uses one memory region."""

    #: Bytes to allocate (output/scratch) or to touch (input/state).
    size: int
    #: How many times the region's bytes are touched during execution
    #: (2.0 = every byte touched twice).  Latency/bandwidth cost scales
    #: with ``size * touches``.
    touches: float = 1.0
    pattern: AccessPattern = AccessPattern.SEQUENTIAL
    access_size: int = 64

    def __post_init__(self):
        if self.size < 0:
            raise ValueError(f"negative region size {self.size}")
        if self.touches < 0:
            raise ValueError(f"negative touch count {self.touches}")
        if self.access_size <= 0:
            raise ValueError(f"access_size must be positive, got {self.access_size}")

    @property
    def touched_bytes(self) -> int:
        return int(self.size * self.touches)


@dataclasses.dataclass(frozen=True)
class WorkSpec:
    """The behavioural contract of one task."""

    op_class: OpClass = OpClass.SCALAR
    ops: float = 0.0
    #: How the input from upstream is read (size comes from the upstream
    #: task's output; ``size`` here is ignored and may be 0).
    input_usage: typing.Optional[RegionUsage] = None
    #: Output region produced for downstream tasks.
    output: typing.Optional[RegionUsage] = None
    #: Private scratch (Table 2) used while executing.
    scratch: typing.Optional[RegionUsage] = None
    #: Bytes of the job's Global State touched (synchronization traffic).
    state_usage: typing.Optional[RegionUsage] = None
    #: Named Global Scratch slots this task publishes (allocates+writes).
    scratch_puts: typing.Mapping[str, RegionUsage] = dataclasses.field(
        default_factory=dict
    )
    #: Named Global Scratch slots this task consumes (reads).
    scratch_gets: typing.Tuple[str, ...] = ()

    def __post_init__(self):
        if self.ops < 0:
            raise ValueError(f"negative op count {self.ops}")
        # Normalize scratch_gets given as a list.
        if not isinstance(self.scratch_gets, tuple):
            object.__setattr__(self, "scratch_gets", tuple(self.scratch_gets))

    @property
    def output_size(self) -> int:
        return self.output.size if self.output is not None else 0

    @property
    def scratch_size(self) -> int:
        return self.scratch.size if self.scratch is not None else 0
