"""The declarative dataflow programming model (paper §2.1, Figure 2).

Applications launch **jobs** consisting of **tasks** that form a DAG;
tasks and jobs carry declarative **properties** (compute preference,
confidentiality, persistence, memory latency) and a **work
specification** describing compute cost and memory access behaviour —
the *what*, never the *where*.  The runtime system
(:mod:`repro.runtime`) decides placement.
"""

from repro.dataflow.properties import TaskProperties
from repro.dataflow.workspec import RegionUsage, WorkSpec
from repro.dataflow.graph import Job, Task, ValidationError
from repro.dataflow.api import task, linear_job
from repro.dataflow.serialize import (
    SerializationError,
    job_from_dict,
    job_from_json,
    job_to_dict,
    job_to_json,
)

__all__ = [
    "Job",
    "RegionUsage",
    "SerializationError",
    "Task",
    "TaskProperties",
    "ValidationError",
    "WorkSpec",
    "job_from_dict",
    "job_from_json",
    "job_to_dict",
    "job_to_json",
    "linear_job",
    "task",
]
