"""Cluster utilization metrics.

The paper's economic motivation quotes 50–65% average memory
utilization and memory at 40–50% of server cost — i.e. a lot of DRAM is
*stranded*: provisioned on one node while another node is out of
memory.  These helpers compute the quantities the Figure 1 bench
reports.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.hardware.cluster import Cluster


@dataclasses.dataclass(frozen=True)
class ClusterSnapshot:
    """Point-in-time utilization of a cluster."""

    time: float
    memory_used: int
    memory_capacity: int
    per_device_utilization: typing.Mapping[str, float]
    compute_utilization: typing.Mapping[str, float]

    @property
    def memory_utilization(self) -> float:
        if self.memory_capacity == 0:
            return 0.0
        return self.memory_used / self.memory_capacity


def cluster_snapshot(cluster: Cluster) -> ClusterSnapshot:
    """Point-in-time memory/compute utilization of a cluster."""
    used = sum(d.used for d in cluster.memory.values())
    capacity = sum(d.capacity for d in cluster.memory.values())
    now = cluster.engine.now
    return ClusterSnapshot(
        time=now,
        memory_used=used,
        memory_capacity=capacity,
        per_device_utilization={
            name: d.utilization for name, d in cluster.memory.items()
        },
        compute_utilization={
            name: (d.utilization(until=now) if now > 0 else 0.0)
            for name, d in cluster.compute.items()
        },
    )


def stranded_bytes(
    demands: typing.Mapping[str, int], capacities: typing.Mapping[str, int]
) -> int:
    """Bytes of demand unservable locally despite free capacity elsewhere.

    ``demands[node]`` is what each node needs right now;
    ``capacities[node]`` what it was provisioned with.  Under static
    per-node provisioning a node cannot borrow a neighbour's free DRAM,
    so ``min(total_free, total_shortfall)`` bytes are *stranded*: demand
    that a pooled design (Figure 1b) would have served.
    """
    free = sum(max(0, capacities[n] - demands.get(n, 0)) for n in capacities)
    shortfall = sum(max(0, demands[n] - capacities.get(n, 0)) for n in demands)
    return min(free, shortfall)
