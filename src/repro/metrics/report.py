"""Plain-text tables for the benchmark harness.

Every bench prints the rows/series the paper's artifact would contain;
this module keeps that output aligned and consistent.
"""

from __future__ import annotations

import typing


def format_ns(ns: float) -> str:
    """Human-readable duration from nanoseconds."""
    if ns != ns:  # NaN
        return "n/a"
    if ns == float("inf"):
        return "inf"
    for unit, factor in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if abs(ns) >= factor:
            return f"{ns / factor:.2f}{unit}"
    return f"{ns:.0f}ns"


def format_bytes(n: float) -> str:
    """Human-readable size from bytes."""
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or unit == "TiB":
            if unit == "B":
                return f"{value:.0f}{unit}"
            return f"{value:.2f}{unit}"
        value /= 1024.0
    return f"{value:.2f}TiB"  # pragma: no cover - loop always returns


class Table:
    """A minimal aligned-text table."""

    def __init__(self, columns: typing.Sequence[str], title: str = ""):
        if not columns:
            raise ValueError("a table needs at least one column")
        self.title = title
        self.columns = list(columns)
        self.rows: typing.List[typing.List[str]] = []

    def add_row(self, *values) -> None:
        """Append one row (must match the column count)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows.append([str(v) for v in values])

    def render(self) -> str:
        """The table as aligned text."""
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in self.rows))
            if self.rows else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        lines = []
        if self.title:
            lines.append(self.title)
        header = "  ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
