"""Utilization accounting, provisioning economics, and report tables."""

from repro.metrics.utilization import (
    ClusterSnapshot,
    cluster_snapshot,
    stranded_bytes,
)
from repro.metrics.costs import (
    pooling_savings,
    provisioned_memory_cost,
    required_provisioning,
)
from repro.metrics.report import Table, format_bytes, format_ns
from repro.metrics.profiler import PhaseRecord, Profile
from repro.metrics.energy import (
    EnergyBreakdown,
    EnergyMeter,
    provisioned_memory_power,
)

__all__ = [
    "ClusterSnapshot",
    "EnergyBreakdown",
    "EnergyMeter",
    "PhaseRecord",
    "Profile",
    "Table",
    "cluster_snapshot",
    "format_bytes",
    "format_ns",
    "pooling_savings",
    "provisioned_memory_cost",
    "provisioned_memory_power",
    "required_provisioning",
    "stranded_bytes",
]
