"""Multi-level profiling across the abstraction layers.

Paper §3, Challenge 8(1): *"How can we debug, profile, and optimize
dataflow applications with multiple abstraction layers for performance
when the runtime system hides performance-relevant details?"* — and the
paper's answer is that cross-layer profiling is possible (citing
Beischl et al., EuroSys '21).

:class:`Profile` is that tool for this runtime.  From one traced run it
produces aligned views at four abstraction levels:

* **job level** — makespan, critical path, queueing;
* **task level** — per-task compute vs. memory time, split by phase;
* **region level** — which memory regions cost how much, on which
  backing device, per region type;
* **device level** — bytes moved per fabric link, per-device traffic.

Enable the ``profile`` trace category (plus ``memory``) on the cluster,
run a job, then ``Profile.from_run(cluster, stats).render()``.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.hardware.cluster import Cluster
from repro.metrics.report import Table, format_bytes, format_ns
from repro.runtime.rts import JobStats


@dataclasses.dataclass
class PhaseRecord:
    task: str
    kind: str  # 'compute' | 'read' | 'write'
    detail: str  # op class or region name
    backing: str  # device for memory phases, compute device otherwise
    duration: float
    nbytes: float = 0.0
    pattern: str = ""  # 'sequential' | 'random' for memory phases
    access_size: int = 64
    #: Recorded phase start (span begin); None for legacy instant events.
    start: typing.Optional[float] = None


class Profile:
    """One profiled job run, queryable at four levels."""

    def __init__(self, stats: JobStats, phases: typing.List[PhaseRecord]):
        self.stats = stats
        self.phases = phases

    # -- construction -----------------------------------------------------

    @classmethod
    def from_run(cls, cluster: Cluster, stats: JobStats) -> "Profile":
        """Build a profile from the cluster trace of a finished run."""
        prefix = f"{stats.job_name}/"
        phases: typing.List[PhaseRecord] = []
        for event in cluster.trace.by_category("profile"):
            task = str(event.fields.get("task", ""))
            if not task.startswith(prefix):
                continue
            task_name = task[len(prefix):]
            if event.name == "compute_phase":
                phases.append(PhaseRecord(
                    task=task_name, kind="compute",
                    detail=str(event.fields["op"]),
                    backing=str(event.fields["device"]),
                    duration=float(event.fields["duration"]),
                    start=event.begin,
                ))
            elif event.name == "memory_phase":
                phases.append(PhaseRecord(
                    task=task_name, kind=str(event.fields["op"]),
                    detail=str(event.fields["region"]),
                    backing=str(event.fields["backing"]),
                    duration=float(event.fields["duration"]),
                    nbytes=float(event.fields["nbytes"]),
                    pattern=str(event.fields.get("pattern", "")),
                    access_size=int(event.fields.get("access_size", 64)),
                    start=event.begin,
                ))
        return cls(stats, phases)

    # -- queries ----------------------------------------------------------

    def task_breakdown(self, task: str) -> typing.Dict[str, float]:
        """compute/read/write/queue/other time for one task (ns)."""
        task_stats = self.stats.tasks[task]
        breakdown = {"compute": 0.0, "read": 0.0, "write": 0.0}
        for phase in self.phases:
            if phase.task == task:
                breakdown[phase.kind] = breakdown.get(phase.kind, 0.0) + phase.duration
        accounted = sum(breakdown.values())
        breakdown["queue"] = task_stats.queue_delay or 0.0
        breakdown["other"] = max(0.0, task_stats.duration - accounted)
        return breakdown

    def memory_fraction(self, task: str) -> float:
        """Fraction of a task's runtime spent waiting on memory."""
        breakdown = self.task_breakdown(task)
        duration = self.stats.tasks[task].duration
        if duration == 0:
            return 0.0
        return (breakdown["read"] + breakdown["write"]) / duration

    def by_backing_device(self) -> typing.Dict[str, typing.Tuple[float, float]]:
        """device -> (total memory-phase time, total bytes) for the job."""
        out: typing.Dict[str, typing.List[float]] = {}
        for phase in self.phases:
            if phase.kind in ("read", "write"):
                entry = out.setdefault(phase.backing, [0.0, 0.0])
                entry[0] += phase.duration
                entry[1] += phase.nbytes
        return {k: (v[0], v[1]) for k, v in out.items()}

    def by_region(self) -> typing.Dict[str, typing.Tuple[float, float]]:
        """region name -> (total access time, total bytes)."""
        out: typing.Dict[str, typing.List[float]] = {}
        for phase in self.phases:
            if phase.kind in ("read", "write"):
                entry = out.setdefault(phase.detail, [0.0, 0.0])
                entry[0] += phase.duration
                entry[1] += phase.nbytes
        return {k: (v[0], v[1]) for k, v in out.items()}

    def critical_path(self) -> typing.List[str]:
        """Tasks ordered by finish time whose start chained on the
        previous finish (the observed serial spine of the run).
        Never-started tasks (upstream failures) are not on the path."""
        ordered = sorted(
            (t for t in self.stats.tasks.values()
             if t.started_at is not None and t.finished_at is not None),
            key=lambda t: t.finished_at,
        )
        spine = []
        horizon = -1.0
        for task_stats in ordered:
            if task_stats.started_at >= horizon - 1e-6:
                spine.append(task_stats.name)
                horizon = task_stats.finished_at
        return spine

    def hottest_region(self) -> typing.Optional[str]:
        """The region with the largest total access time (None if none)."""
        regions = self.by_region()
        if not regions:
            return None
        return max(regions, key=lambda name: regions[name][0])

    # -- export -----------------------------------------------------------

    def to_chrome_trace(self) -> typing.List[dict]:
        """The run as Chrome trace events (load in chrome://tracing or
        https://ui.perfetto.dev).  Tasks become rows ("threads"); compute
        and memory phases become nested duration events.

        Simulated nanoseconds map to trace microseconds so sub-µs phases
        stay visible in the viewer.
        """
        events: typing.List[dict] = []
        tids = {name: i + 1 for i, name in enumerate(sorted(self.stats.tasks))}
        for name, tid in tids.items():
            task_stats = self.stats.tasks[name]
            events.append({
                "name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
                "args": {"name": f"{name} @ {task_stats.device}"},
            })
            if task_stats.started_at is None:
                continue  # never started (upstream failed): no span to draw
            events.append({
                "name": name, "cat": "task", "ph": "X", "pid": 1, "tid": tid,
                "ts": task_stats.started_at, "dur": task_stats.duration,
                "args": {"device": task_stats.device},
            })
        # Span-complete phase events carry their real start; legacy
        # instant events are laid out back-to-back inside their task's
        # span (they executed sequentially in the default behaviour, so
        # that reconstruction is faithful).
        cursor = {name: self.stats.tasks[name].started_at or 0.0
                  for name in self.stats.tasks}
        for phase in self.phases:
            if phase.task not in tids:
                continue
            start = phase.start if phase.start is not None else cursor[phase.task]
            cursor[phase.task] = start + phase.duration
            args = {"backing": phase.backing}
            if phase.kind != "compute":
                args["bytes"] = phase.nbytes
                args["pattern"] = phase.pattern
            events.append({
                "name": f"{phase.kind}:{phase.detail}",
                "cat": phase.kind, "ph": "X", "pid": 1,
                "tid": tids[phase.task],
                "ts": start, "dur": phase.duration, "args": args,
            })
        return events

    def write_chrome_trace(self, path: str) -> None:
        """Dump the Chrome-trace JSON for chrome://tracing / Perfetto."""
        import json

        with open(path, "w") as handle:
            json.dump({"traceEvents": self.to_chrome_trace(),
                       "displayTimeUnit": "ns"}, handle)

    # -- rendering --------------------------------------------------------

    def render(self) -> str:
        """The four-level profile as aligned text tables."""
        sections = []
        job = Table(["job", "makespan", "tasks", "zero-copy", "copies"],
                    title="Level 1 — job")
        job.add_row(self.stats.job_name, format_ns(self.stats.makespan),
                    len(self.stats.tasks), self.stats.zero_copy_handover,
                    self.stats.copy_handover)
        sections.append(job.render())

        tasks = Table(
            ["task", "device", "total", "compute", "read", "write",
             "queue", "mem%"],
            title="Level 2 — tasks",
        )
        for name, task_stats in self.stats.tasks.items():
            breakdown = self.task_breakdown(name)
            tasks.add_row(
                name, task_stats.device, format_ns(task_stats.duration),
                format_ns(breakdown["compute"]), format_ns(breakdown["read"]),
                format_ns(breakdown["write"]), format_ns(breakdown["queue"]),
                f"{self.memory_fraction(name):.0%}",
            )
        sections.append(tasks.render())

        regions = Table(["region", "access time", "bytes"],
                        title="Level 3 — regions")
        for name, (duration, nbytes) in sorted(
            self.by_region().items(), key=lambda kv: -kv[1][0]
        ):
            regions.add_row(name, format_ns(duration), format_bytes(nbytes))
        sections.append(regions.render())

        devices = Table(["backing device", "stall time", "bytes"],
                        title="Level 4 — devices")
        for name, (duration, nbytes) in sorted(
            self.by_backing_device().items(), key=lambda kv: -kv[1][0]
        ):
            devices.add_row(name, format_ns(duration), format_bytes(nbytes))
        sections.append(devices.render())
        return "\n\n".join(sections)
