"""Energy accounting for the disaggregated rack.

The paper's opening motivation is efficiency under sustainability
pressure (§1, citing Schneider's low-carbon-systems talk): data
movement dominates cost, and overprovisioned DRAM burns static power
around the clock.  This module attaches a simple, calibrated energy
model to a cluster:

* **static power** — every provisioned memory device draws watts
  proportional to capacity (DRAM refresh ~0.35 W/GiB, PMem idles much
  lower, storage lower still); compute devices draw an idle floor,
* **dynamic energy** — every byte through a device port costs
  picojoules (media access), every byte over NIC links costs more
  (serialization), and compute busy-time is charged at the device's
  active power.

The model reads the counters the simulator already keeps
(``port.bytes_carried``, ``ComputeDevice.busy_time``), so a single
:class:`EnergyMeter` snapshot prices any completed run.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.hardware.cluster import Cluster
from repro.hardware.spec import ComputeKind, LinkKind, MemoryKind

GiB = 1024 ** 3
NS_PER_S = 1e9
PJ = 1e-12  # joules per picojoule

#: Static draw per provisioned GiB (watts).
STATIC_W_PER_GIB = {
    MemoryKind.CACHE: 2.0,  # SRAM is power-hungry per byte
    MemoryKind.HBM: 0.8,
    MemoryKind.DRAM: 0.35,
    MemoryKind.GDDR: 0.6,
    MemoryKind.PMEM: 0.10,  # no refresh
    MemoryKind.CXL_DRAM: 0.40,  # DRAM + controller
    MemoryKind.FAR_MEMORY: 0.45,  # DRAM + NIC endpoint share
    MemoryKind.SSD: 0.02,
    MemoryKind.HDD: 0.01,
}

#: Dynamic energy per byte moved through the device media (picojoules).
DYNAMIC_PJ_PER_BYTE = {
    MemoryKind.CACHE: 1.0,
    MemoryKind.HBM: 4.0,
    MemoryKind.DRAM: 20.0,
    MemoryKind.GDDR: 8.0,
    MemoryKind.PMEM: 60.0,
    MemoryKind.CXL_DRAM: 30.0,
    MemoryKind.FAR_MEMORY: 60.0,
    MemoryKind.SSD: 200.0,
    MemoryKind.HDD: 1000.0,
}

#: Extra per-byte cost of crossing fabric links (picojoules).
LINK_PJ_PER_BYTE = {
    LinkKind.DDR: 5.0,
    LinkKind.ONBOARD: 2.0,
    LinkKind.CXL: 15.0,
    LinkKind.PCIE: 25.0,
    LinkKind.NIC: 150.0,
    LinkKind.SATA: 50.0,
}

#: Active power while a compute slot is busy (watts per slot).
COMPUTE_ACTIVE_W = {
    ComputeKind.CPU: 6.0,
    ComputeKind.GPU: 40.0,
    ComputeKind.TPU: 50.0,
    ComputeKind.FPGA: 8.0,
    ComputeKind.DPU: 5.0,
}

#: Idle floor per compute device (watts).
COMPUTE_IDLE_W = {
    ComputeKind.CPU: 40.0,
    ComputeKind.GPU: 60.0,
    ComputeKind.TPU: 70.0,
    ComputeKind.FPGA: 15.0,
    ComputeKind.DPU: 20.0,
}


@dataclasses.dataclass(frozen=True)
class EnergyBreakdown:
    """Joules, split by where they went."""

    memory_static: float
    memory_dynamic: float
    fabric_dynamic: float
    compute_idle: float
    compute_active: float

    @property
    def total(self) -> float:
        return (self.memory_static + self.memory_dynamic
                + self.fabric_dynamic + self.compute_idle
                + self.compute_active)

    @property
    def static_fraction(self) -> float:
        static = self.memory_static + self.compute_idle
        return static / self.total if self.total else 0.0


class EnergyMeter:
    """Prices a simulated interval on one cluster."""

    def __init__(self, cluster: Cluster):
        self.cluster = cluster
        self._baseline = self._snapshot()
        self._start_time = cluster.engine.now

    def _snapshot(self) -> dict:
        return {
            "port_bytes": {
                name: device.port.bytes_carried
                for name, device in self.cluster.memory.items()
            },
            "link_bytes": [
                (data["kind"], data["link"].bytes_carried)
                for _u, _v, data in self.cluster.topology.graph.edges(data=True)
            ],
            "busy": {
                name: device.busy_time
                for name, device in self.cluster.compute.items()
            },
        }

    def reset(self) -> None:
        """Start a fresh measurement window at the current time."""
        self._baseline = self._snapshot()
        self._start_time = self.cluster.engine.now

    def read(self) -> EnergyBreakdown:
        """Energy consumed since construction/reset (joules)."""
        now = self.cluster.engine.now
        elapsed_s = max(0.0, now - self._start_time) / NS_PER_S
        current = self._snapshot()

        memory_static = sum(
            STATIC_W_PER_GIB[device.kind] * device.capacity / GiB
            for device in self.cluster.memory.values()
        ) * elapsed_s

        memory_dynamic = sum(
            (current["port_bytes"][name] - self._baseline["port_bytes"][name])
            * DYNAMIC_PJ_PER_BYTE[device.kind] * PJ
            for name, device in self.cluster.memory.items()
        )

        fabric_dynamic = 0.0
        for (kind, carried), (_k2, carried0) in zip(
            current["link_bytes"], self._baseline["link_bytes"]
        ):
            fabric_dynamic += (carried - carried0) * LINK_PJ_PER_BYTE[kind] * PJ

        compute_idle = sum(
            COMPUTE_IDLE_W[device.kind]
            for device in self.cluster.compute.values()
        ) * elapsed_s

        compute_active = sum(
            (current["busy"][name] - self._baseline["busy"][name]) / NS_PER_S
            * COMPUTE_ACTIVE_W[device.kind]
            for name, device in self.cluster.compute.items()
        )

        return EnergyBreakdown(
            memory_static=memory_static,
            memory_dynamic=memory_dynamic,
            fabric_dynamic=fabric_dynamic,
            compute_idle=compute_idle,
            compute_active=compute_active,
        )


def provisioned_memory_power(cluster: Cluster) -> float:
    """Static watts of all provisioned memory (the overprovisioning tax)."""
    return sum(
        STATIC_W_PER_GIB[device.kind] * device.capacity / GiB
        for device in cluster.memory.values()
    )
