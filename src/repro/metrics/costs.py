"""Provisioning economics: the Figure 1 argument, quantified.

The intro's numbers — memory is 40–50% of server cost, utilization sits
at 50–65% — mean static per-node provisioning pays for peaks that never
coincide.  Given per-node demand *time series*:

* static provisioning must cover the **sum of per-node peaks**, while
* a pooled design (Figure 1b) must cover only the **peak of the summed
  demand** (plus a safety headroom).

:func:`pooling_savings` computes both and the resulting cost reduction.
"""

from __future__ import annotations

import dataclasses
import typing

import numpy as np

from repro.hardware.cluster import Cluster


def provisioned_memory_cost(cluster: Cluster) -> float:
    """Capital cost of all provisioned memory (relative $, per Table 1
    calibration's cost_per_gib)."""
    total = 0.0
    for device in cluster.memory.values():
        gib = device.capacity / (1024 ** 3)
        total += gib * device.spec.cost_per_gib
    return total


@dataclasses.dataclass(frozen=True)
class ProvisioningComparison:
    static_bytes: int  # sum of per-node peaks
    pooled_bytes: int  # peak of summed demand
    headroom: float

    @property
    def savings_fraction(self) -> float:
        if self.static_bytes == 0:
            return 0.0
        return 1.0 - self.pooled_bytes / self.static_bytes


def required_provisioning(
    demand_series: typing.Mapping[str, np.ndarray], headroom: float = 0.0
) -> ProvisioningComparison:
    """Compare static vs pooled provisioning for per-node demand series.

    ``demand_series[node]`` is a 1-D array of bytes demanded over time
    (all series aligned on the same time steps).
    """
    if not demand_series:
        raise ValueError("no demand series given")
    if headroom < 0:
        raise ValueError("headroom must be >= 0")
    lengths = {len(s) for s in demand_series.values()}
    if len(lengths) != 1:
        raise ValueError(f"demand series lengths differ: {sorted(lengths)}")
    scale = 1.0 + headroom
    static = sum(int(np.max(s)) for s in demand_series.values())
    pooled = int(np.max(np.sum(list(demand_series.values()), axis=0)))
    return ProvisioningComparison(
        static_bytes=int(static * scale),
        pooled_bytes=int(pooled * scale),
        headroom=headroom,
    )


def pooling_savings(
    demand_series: typing.Mapping[str, np.ndarray],
    cost_per_byte: float = 1.0,
    headroom: float = 0.0,
) -> typing.Tuple[float, float, float]:
    """(static cost, pooled cost, savings fraction) for the demand set."""
    comparison = required_provisioning(demand_series, headroom)
    return (
        comparison.static_bytes * cost_per_byte,
        comparison.pooled_bytes * cost_per_byte,
        comparison.savings_fraction,
    )
