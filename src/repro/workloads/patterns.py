"""Synthetic access traces over a set of regions/objects.

A trace is a list of :class:`AccessEvent` records ordered by time.
These drive the tiering and interface benchmarks, where the *shape* of
the access stream (skew, locality, read/write mix) is the experimental
variable.
"""

from __future__ import annotations

import dataclasses
import typing

import numpy as np

from repro.workloads.zipf import ZipfSampler


@dataclasses.dataclass(frozen=True)
class AccessEvent:
    time: float
    key: int  # object / region index
    nbytes: int
    is_write: bool


def uniform_trace(
    rng: np.random.Generator,
    n_events: int,
    n_keys: int,
    nbytes: int = 64,
    write_fraction: float = 0.0,
    interarrival_ns: float = 100.0,
) -> typing.List[AccessEvent]:
    """Uniformly-random accesses at a constant mean rate."""
    _check(n_events, n_keys, write_fraction)
    keys = rng.integers(0, n_keys, n_events)
    times = np.cumsum(rng.exponential(interarrival_ns, n_events))
    writes = rng.random(n_events) < write_fraction
    return [
        AccessEvent(float(t), int(k), nbytes, bool(w))
        for t, k, w in zip(times, keys, writes)
    ]


def zipfian_trace(
    rng: np.random.Generator,
    n_events: int,
    n_keys: int,
    skew: float = 0.99,
    nbytes: int = 64,
    write_fraction: float = 0.0,
    interarrival_ns: float = 100.0,
) -> typing.List[AccessEvent]:
    """Skewed accesses: a few keys absorb most of the traffic."""
    _check(n_events, n_keys, write_fraction)
    sampler = ZipfSampler(n_keys, skew)
    keys = sampler.sample(rng, n_events)
    times = np.cumsum(rng.exponential(interarrival_ns, n_events))
    writes = rng.random(n_events) < write_fraction
    return [
        AccessEvent(float(t), int(k), nbytes, bool(w))
        for t, k, w in zip(times, keys, writes)
    ]


def sequential_trace(
    n_events: int,
    n_keys: int,
    nbytes: int = 64,
    interarrival_ns: float = 100.0,
) -> typing.List[AccessEvent]:
    """A scan: keys visited in order, wrapping around."""
    _check(n_events, n_keys, 0.0)
    return [
        AccessEvent(float(i * interarrival_ns), i % n_keys, nbytes, False)
        for i in range(n_events)
    ]


def mixed_trace(
    rng: np.random.Generator,
    n_events: int,
    n_keys: int,
    scan_fraction: float = 0.3,
    skew: float = 0.99,
    nbytes: int = 64,
    write_fraction: float = 0.2,
    interarrival_ns: float = 100.0,
) -> typing.List[AccessEvent]:
    """A blend of scans and skewed point accesses (OLxP-style)."""
    _check(n_events, n_keys, write_fraction)
    if not 0.0 <= scan_fraction <= 1.0:
        raise ValueError(f"scan_fraction must be in [0,1], got {scan_fraction}")
    sampler = ZipfSampler(n_keys, skew)
    times = np.cumsum(rng.exponential(interarrival_ns, n_events))
    events = []
    cursor = 0
    for t in times:
        if rng.random() < scan_fraction:
            key = cursor % n_keys
            cursor += 1
            is_write = False
        else:
            key = int(sampler.sample(rng, 1)[0])
            is_write = bool(rng.random() < write_fraction)
        events.append(AccessEvent(float(t), key, nbytes, is_write))
    return events


def _check(n_events: int, n_keys: int, write_fraction: float) -> None:
    if n_events < 0:
        raise ValueError(f"n_events must be >= 0, got {n_events}")
    if n_keys < 1:
        raise ValueError(f"n_keys must be >= 1, got {n_keys}")
    if not 0.0 <= write_fraction <= 1.0:
        raise ValueError(f"write_fraction must be in [0,1], got {write_fraction}")
