"""Zipfian sampling over a finite key universe.

Used by the tiering benchmarks: hot/cold skew is what makes
hotness-driven migration pay off.  The sampler precomputes the CDF so
draws are O(log n) binary searches, fully deterministic per RNG.
"""

from __future__ import annotations

import numpy as np


class ZipfSampler:
    """Draw ranks in [0, n) with probability proportional to 1/(rank+1)^s."""

    def __init__(self, n: int, skew: float = 0.99):
        if n < 1:
            raise ValueError(f"universe size must be >= 1, got {n}")
        if skew < 0:
            raise ValueError(f"skew must be >= 0, got {skew}")
        self.n = n
        self.skew = skew
        weights = 1.0 / np.power(np.arange(1, n + 1, dtype=np.float64), skew)
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        """Draw ``size`` ranks (0 is the hottest)."""
        u = rng.random(size)
        return np.searchsorted(self._cdf, u).astype(np.int64)

    def probability(self, rank: int) -> float:
        """Exact probability of ``rank``."""
        if rank < 0 or rank >= self.n:
            raise IndexError(f"rank {rank} outside [0, {self.n})")
        low = self._cdf[rank - 1] if rank > 0 else 0.0
        return float(self._cdf[rank] - low)

    def hot_set_coverage(self, k: int) -> float:
        """Fraction of accesses hitting the k hottest keys."""
        if k <= 0:
            return 0.0
        return float(self._cdf[min(k, self.n) - 1])
