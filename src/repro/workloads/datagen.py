"""Synthetic data generators for the example applications.

The paper's hardware we simulate; its *data* we synthesize: relational
tables for the DBMS mapping, tensors for ML, and CCTV-style frame
streams for the hospital job of Figure 2.
"""

from __future__ import annotations

import typing

import numpy as np


def synthetic_table(
    rng: np.random.Generator,
    n_rows: int,
    n_int_cols: int = 4,
    key_cardinality: typing.Optional[int] = None,
) -> np.ndarray:
    """A relational table as a structured array with an id + int columns."""
    if n_rows < 0 or n_int_cols < 1:
        raise ValueError("need n_rows >= 0 and n_int_cols >= 1")
    dtype = [("id", np.int64)] + [(f"c{i}", np.int64) for i in range(n_int_cols)]
    table = np.zeros(n_rows, dtype=dtype)
    table["id"] = np.arange(n_rows)
    cardinality = key_cardinality or max(1, n_rows // 10)
    for i in range(n_int_cols):
        table[f"c{i}"] = rng.integers(0, cardinality, n_rows)
    return table


def synthetic_tensor(
    rng: np.random.Generator, shape: typing.Tuple[int, ...]
) -> np.ndarray:
    """A float32 tensor of training data."""
    return rng.standard_normal(shape).astype(np.float32)


def synthetic_frames(
    rng: np.random.Generator,
    n_frames: int,
    height: int = 72,
    width: int = 128,
) -> np.ndarray:
    """A CCTV-style frame stream: (n, h, w) uint8 grayscale."""
    if n_frames < 0:
        raise ValueError("n_frames must be >= 0")
    return rng.integers(0, 256, (n_frames, height, width)).astype(np.uint8)
