"""Workload generators: access patterns, skew, arrivals, synthetic data."""

from repro.workloads.zipf import ZipfSampler
from repro.workloads.llm import LLMRequest, llm_request_stream
from repro.workloads.patterns import (
    AccessEvent,
    mixed_trace,
    sequential_trace,
    uniform_trace,
    zipfian_trace,
)
from repro.workloads.arrivals import bursty_arrivals, poisson_arrivals
from repro.workloads.datagen import (
    synthetic_frames,
    synthetic_table,
    synthetic_tensor,
)

__all__ = [
    "AccessEvent",
    "LLMRequest",
    "ZipfSampler",
    "bursty_arrivals",
    "llm_request_stream",
    "mixed_trace",
    "poisson_arrivals",
    "sequential_trace",
    "synthetic_frames",
    "synthetic_table",
    "synthetic_tensor",
    "uniform_trace",
    "zipfian_trace",
]
