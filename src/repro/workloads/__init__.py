"""Workload generators: access patterns, skew, arrivals, synthetic data."""

from repro.workloads.zipf import ZipfSampler
from repro.workloads.patterns import (
    AccessEvent,
    mixed_trace,
    sequential_trace,
    uniform_trace,
    zipfian_trace,
)
from repro.workloads.arrivals import bursty_arrivals, poisson_arrivals
from repro.workloads.datagen import (
    synthetic_frames,
    synthetic_table,
    synthetic_tensor,
)

__all__ = [
    "AccessEvent",
    "ZipfSampler",
    "bursty_arrivals",
    "mixed_trace",
    "poisson_arrivals",
    "sequential_trace",
    "synthetic_frames",
    "synthetic_table",
    "synthetic_tensor",
    "uniform_trace",
    "zipfian_trace",
]
