"""Job arrival processes for multi-job experiments."""

from __future__ import annotations

import typing

import numpy as np


def poisson_arrivals(
    rng: np.random.Generator, rate_per_ns: float, horizon_ns: float
) -> typing.List[float]:
    """Memoryless arrival times in [0, horizon)."""
    if rate_per_ns <= 0:
        raise ValueError(f"rate must be positive, got {rate_per_ns}")
    if horizon_ns < 0:
        raise ValueError(f"horizon must be >= 0, got {horizon_ns}")
    times = []
    t = 0.0
    while True:
        t += float(rng.exponential(1.0 / rate_per_ns))
        if t >= horizon_ns:
            return times
        times.append(t)


def bursty_arrivals(
    rng: np.random.Generator,
    rate_per_ns: float,
    horizon_ns: float,
    burst_length_ns: float,
    idle_length_ns: float,
) -> typing.List[float]:
    """On/off arrivals: Poisson at ``rate`` during bursts, silent between."""
    if rate_per_ns <= 0:
        raise ValueError(f"rate must be positive, got {rate_per_ns}")
    if horizon_ns < 0:
        raise ValueError(f"horizon must be >= 0, got {horizon_ns}")
    if burst_length_ns <= 0 or idle_length_ns < 0:
        raise ValueError("burst length must be positive, idle length >= 0")
    times = []
    window_start = 0.0
    while window_start < horizon_ns:
        window_end = min(window_start + burst_length_ns, horizon_ns)
        t = window_start
        while True:
            t += float(rng.exponential(1.0 / rate_per_ns))
            if t >= window_end:
                break
            times.append(t)
        window_start = window_end + idle_length_ns
    return times
