"""LLM serving request streams: Zipf-popular prefixes, mixed lengths.

Models the request mix production LLM routers see: every prompt starts
with a shared system preamble, most continue with one of a small set of
popular templates (few-shot preambles, tool schemas, per-persona system
prompts) whose popularity is Zipf-distributed, and each ends with a
unique user tail.  Prompt and output lengths are drawn from wide ranges
so the stream mixes short interactive turns with long-context requests.

The shared span is expressed as a tuple of *block ids* (each covering
``block_tokens`` tokens): two requests that share a template share the
leading blocks of their sequences, which is exactly what a prefix-trie
KV cache can deduplicate (see :mod:`repro.apps.llm_exec`).
"""

from __future__ import annotations

import dataclasses
import typing

import numpy as np

from repro.workloads.zipf import ZipfSampler


@dataclasses.dataclass(frozen=True)
class LLMRequest:
    """One serving request: arrival, lengths, and its prefix blocks."""

    index: int
    #: Arrival offset from the start of the trace (open-loop streams).
    arrival_ns: float
    tenant: typing.Optional[str]
    #: Total prompt length, including the shared prefix span.
    prompt_tokens: int
    #: Tokens to generate (the decode phase's length).
    output_tokens: int
    #: Ids of the shareable prefix blocks, outermost first.  Two
    #: requests sharing a template share a leading run of these.
    blocks: typing.Tuple[str, ...] = ()
    #: Tokens per entry of ``blocks``.
    block_tokens: int = 32

    @property
    def name(self) -> str:
        """The job name this request submits under."""
        return f"llm-req{self.index}"

    @property
    def prefix_tokens(self) -> int:
        """Tokens covered by the shareable prefix blocks."""
        return len(self.blocks) * self.block_tokens

    @property
    def unique_tokens(self) -> int:
        """Prompt tokens outside the shareable span (the user tail)."""
        return max(0, self.prompt_tokens - self.prefix_tokens)


def llm_request_stream(
    n_requests: int,
    *,
    seed: int = 0,
    n_templates: int = 12,
    zipf_skew: float = 0.99,
    system_blocks: int = 2,
    template_blocks: typing.Tuple[int, int] = (2, 8),
    block_tokens: int = 32,
    prompt_tail_tokens: typing.Tuple[int, int] = (16, 256),
    output_tokens: typing.Tuple[int, int] = (8, 192),
    mean_interarrival_ns: float = 60_000.0,
    tenant: typing.Optional[str] = "chat",
    batch_tenant: typing.Optional[str] = None,
    batch_fraction: float = 0.0,
) -> typing.List[LLMRequest]:
    """Generate a mixed open-loop request stream.

    Every request's prompt is ``system blocks + template blocks + a
    unique tail``: templates are drawn from a :class:`~repro.workloads.
    zipf.ZipfSampler` over ``n_templates`` (hot templates recur, so
    their KV blocks are worth caching), template depth varies per
    template within ``template_blocks``, tail and output lengths are
    uniform over the given ranges, and arrivals are Poisson with the
    given mean gap.  With ``batch_tenant`` set, ``batch_fraction`` of
    requests (the long-output tail of the mix) are attributed to it —
    the interactive/batch split the tenancy layer schedules between.

    Deterministic for a given ``seed``.  Closed-loop use: ignore
    ``arrival_ns`` and feed the list to a concurrency-bounded driver
    (``LLMEngine.serve(..., mode="closed")``).
    """
    if n_requests < 1:
        raise ValueError(f"need at least one request, got {n_requests}")
    if block_tokens < 1:
        raise ValueError(f"block_tokens must be >= 1, got {block_tokens}")
    if not 0.0 <= batch_fraction <= 1.0:
        raise ValueError(f"batch_fraction must be in [0, 1], got {batch_fraction}")
    lo_t, hi_t = template_blocks
    if lo_t < 0 or hi_t < lo_t:
        raise ValueError(f"bad template_blocks range {template_blocks}")
    rng = np.random.default_rng(seed)
    sampler = ZipfSampler(n_templates, skew=zipf_skew)
    ranks = sampler.sample(rng, n_requests)
    # Each template has a fixed depth, so repeats share identical block
    # runs (depth re-randomized per template, not per request).
    depths = rng.integers(lo_t, hi_t + 1, size=n_templates)
    gaps = rng.exponential(mean_interarrival_ns, size=n_requests)
    tails = rng.integers(prompt_tail_tokens[0], prompt_tail_tokens[1] + 1,
                         size=n_requests)
    outputs = rng.integers(output_tokens[0], output_tokens[1] + 1,
                           size=n_requests)
    # Long-output requests are the batch-y part of the mix.
    batch_cut = (
        float(np.quantile(outputs, 1.0 - batch_fraction))
        if batch_fraction > 0.0 else float("inf")
    )

    system = tuple(f"sys{i}" for i in range(system_blocks))
    requests: typing.List[LLMRequest] = []
    now = 0.0
    for i in range(n_requests):
        template = int(ranks[i])  # rank 0 is the hottest template
        blocks = system + tuple(
            f"t{template}b{j}" for j in range(int(depths[template]))
        )
        out = int(outputs[i])
        prompt = len(blocks) * block_tokens + int(tails[i])
        now += float(gaps[i])
        who = tenant
        if batch_tenant is not None and out >= batch_cut:
            who = batch_tenant
        requests.append(LLMRequest(
            index=i, arrival_ns=now, tenant=who,
            prompt_tokens=prompt, output_tokens=out,
            blocks=blocks, block_tokens=block_tokens,
        ))
    return requests


__all__ = ["LLMRequest", "llm_request_stream"]
