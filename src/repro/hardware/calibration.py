"""Calibrated device parameters reproducing the paper's Table 1.

The paper characterizes devices qualitatively (``++``/``+``/``o``/``-``/
``--``).  We pin concrete numbers consistent with public measurements of
the corresponding real hardware (Sapphire Rapids-era parts, CXL 1.1
expanders, Optane PMem, datacenter NVMe/RDMA), chosen so that the
*orderings* of Table 1 hold by construction and remain visible after the
interconnect path costs are added:

=============  =========  ==========  ============  ==========
device         bandwidth  latency     granularity   persistent
=============  =========  ==========  ============  ==========
Cache          ++ 1000    ++ 2 ns     1 B           no
HBM            ++ 400     +  120 ns   64 B          no
DRAM           +  100     +  90 ns    64 B          no
GDDR           ++ 500     +  180 ns   64 B          no
PMem           o  8       o  320 ns   256 B         yes
CXL-DRAM       o  40      o  150 ns   64 B          configurable
Disagg. Mem.   o  12      -  1.2 us   256 B         configurable
SSD            -  3       -  20 us    4 KiB         yes
HDD            -- 0.2     -- 4 ms     4 KiB         yes
=============  =========  ==========  ============  ==========

Fabric links (added on top when routing):
DDR bus ~ 1 ns, on-board ~ 1 ns, CXL hop ~ 70 ns, PCIe hop ~ 400 ns,
NIC/RDMA hop ~ 1.5 us, SATA ~ 10 us.
"""

from __future__ import annotations

from repro.hardware.spec import (
    Attachment,
    ComputeDeviceSpec,
    ComputeKind,
    GiB,
    KiB,
    LinkKind,
    LinkSpec,
    MemoryDeviceSpec,
    MemoryKind,
    MiB,
    MS,
    OpClass,
    US,
)

# --------------------------------------------------------------------------
# Memory device templates.  ``make_*`` functions stamp named instances so a
# cluster can hold several devices of the same kind.
# --------------------------------------------------------------------------


def make_cache(name: str, capacity: int = 64 * MiB) -> MemoryDeviceSpec:
    return MemoryDeviceSpec(
        name=name, kind=MemoryKind.CACHE, capacity=capacity,
        latency=2.0, bandwidth=1000.0, granularity=1,
        attachment=Attachment.ON_CHIP, supports_sync=True,
        persistent=False, coherent=True, cost_per_gib=500.0,
    )


def make_hbm(name: str, capacity: int = 16 * GiB) -> MemoryDeviceSpec:
    return MemoryDeviceSpec(
        name=name, kind=MemoryKind.HBM, capacity=capacity,
        latency=120.0, bandwidth=400.0, granularity=64,
        attachment=Attachment.CPU, supports_sync=True,
        persistent=False, coherent=True, cost_per_gib=30.0,
    )


def make_dram(name: str, capacity: int = 128 * GiB) -> MemoryDeviceSpec:
    return MemoryDeviceSpec(
        name=name, kind=MemoryKind.DRAM, capacity=capacity,
        latency=90.0, bandwidth=100.0, granularity=64,
        attachment=Attachment.CPU, supports_sync=True,
        persistent=False, coherent=True, cost_per_gib=8.0,
    )


def make_gddr(name: str, capacity: int = 24 * GiB) -> MemoryDeviceSpec:
    return MemoryDeviceSpec(
        name=name, kind=MemoryKind.GDDR, capacity=capacity,
        latency=180.0, bandwidth=500.0, granularity=64,
        attachment=Attachment.ACCELERATOR, supports_sync=True,
        persistent=False, coherent=False, cost_per_gib=20.0,
    )


def make_pmem(name: str, capacity: int = 512 * GiB) -> MemoryDeviceSpec:
    return MemoryDeviceSpec(
        name=name, kind=MemoryKind.PMEM, capacity=capacity,
        latency=320.0, bandwidth=8.0, granularity=256,
        attachment=Attachment.CPU, supports_sync=True,
        persistent=True, coherent=True, write_penalty=3.0, cost_per_gib=4.0,
    )


def make_cxl_dram(
    name: str, capacity: int = 256 * GiB, persistent: bool = False
) -> MemoryDeviceSpec:
    """CXL memory expander.  Table 1 marks sync and persistence '✓/✗':
    the device is load/store capable, persistence depends on the module."""
    return MemoryDeviceSpec(
        name=name, kind=MemoryKind.CXL_DRAM, capacity=capacity,
        latency=150.0, bandwidth=40.0, granularity=64,
        attachment=Attachment.PCIE, supports_sync=True,
        persistent=persistent, coherent=True, cost_per_gib=7.0,
    )


def make_far_memory(
    name: str, capacity: int = 1024 * GiB, persistent: bool = False
) -> MemoryDeviceSpec:
    """NIC-attached disaggregated memory; no sync load/store (Table 1)."""
    return MemoryDeviceSpec(
        name=name, kind=MemoryKind.FAR_MEMORY, capacity=capacity,
        latency=1.2 * US, bandwidth=12.0, granularity=256,
        attachment=Attachment.NIC, supports_sync=False,
        persistent=persistent, coherent=False, cost_per_gib=5.0,
    )


def make_ssd(name: str, capacity: int = 4096 * GiB) -> MemoryDeviceSpec:
    return MemoryDeviceSpec(
        name=name, kind=MemoryKind.SSD, capacity=capacity,
        latency=20.0 * US, bandwidth=3.0, granularity=4 * KiB,
        attachment=Attachment.PCIE, supports_sync=False,
        persistent=True, coherent=False, byte_addressable=False,
        write_penalty=2.0, cost_per_gib=0.3,
    )


def make_hdd(name: str, capacity: int = 16384 * GiB) -> MemoryDeviceSpec:
    return MemoryDeviceSpec(
        name=name, kind=MemoryKind.HDD, capacity=capacity,
        latency=4.0 * MS, bandwidth=0.2, granularity=4 * KiB,
        attachment=Attachment.SATA, supports_sync=False,
        persistent=True, coherent=False, byte_addressable=False,
        cost_per_gib=0.05,
    )


MEMORY_FACTORIES = {
    MemoryKind.CACHE: make_cache,
    MemoryKind.HBM: make_hbm,
    MemoryKind.DRAM: make_dram,
    MemoryKind.GDDR: make_gddr,
    MemoryKind.PMEM: make_pmem,
    MemoryKind.CXL_DRAM: make_cxl_dram,
    MemoryKind.FAR_MEMORY: make_far_memory,
    MemoryKind.SSD: make_ssd,
    MemoryKind.HDD: make_hdd,
}


# --------------------------------------------------------------------------
# Compute device templates (ops/ns per op class).
# --------------------------------------------------------------------------


def make_cpu(name: str, slots: int = 32) -> ComputeDeviceSpec:
    return ComputeDeviceSpec(
        name=name, kind=ComputeKind.CPU, slots=slots,
        throughput={
            OpClass.SCALAR: 8.0,
            OpClass.VECTOR: 64.0,
            OpClass.MATMUL: 128.0,
            OpClass.CRYPTO: 16.0,
            OpClass.COMPRESS: 8.0,
        },
    )


def make_gpu(name: str, local_memory: str, slots: int = 8) -> ComputeDeviceSpec:
    return ComputeDeviceSpec(
        name=name, kind=ComputeKind.GPU, slots=slots,
        throughput={
            OpClass.SCALAR: 2.0,
            OpClass.VECTOR: 2000.0,
            OpClass.MATMUL: 8000.0,
            OpClass.CRYPTO: 200.0,
            OpClass.COMPRESS: 100.0,
        },
        local_memory=local_memory,
    )


def make_tpu(name: str, local_memory: str, slots: int = 4) -> ComputeDeviceSpec:
    return ComputeDeviceSpec(
        name=name, kind=ComputeKind.TPU, slots=slots,
        throughput={
            OpClass.VECTOR: 1000.0,
            OpClass.MATMUL: 20000.0,
        },
        local_memory=local_memory,
    )


def make_fpga(name: str, slots: int = 4) -> ComputeDeviceSpec:
    return ComputeDeviceSpec(
        name=name, kind=ComputeKind.FPGA, slots=slots,
        throughput={
            OpClass.SCALAR: 1.0,
            OpClass.VECTOR: 200.0,
            OpClass.CRYPTO: 2000.0,
            OpClass.COMPRESS: 1000.0,
        },
    )


def make_dpu(name: str, slots: int = 8) -> ComputeDeviceSpec:
    return ComputeDeviceSpec(
        name=name, kind=ComputeKind.DPU, slots=slots,
        throughput={
            OpClass.SCALAR: 2.0,
            OpClass.VECTOR: 50.0,
            OpClass.CRYPTO: 500.0,
            OpClass.COMPRESS: 400.0,
        },
    )


# --------------------------------------------------------------------------
# Fabric link templates.
# --------------------------------------------------------------------------


def make_link(name: str, kind: LinkKind) -> LinkSpec:
    """Stamp a link of the given technology with calibrated parameters."""
    params = {
        LinkKind.DDR: (150.0, 1.0),
        LinkKind.ONBOARD: (600.0, 1.0),
        LinkKind.CXL: (50.0, 70.0),
        LinkKind.PCIE: (30.0, 400.0),
        LinkKind.NIC: (25.0, 1.5 * US),
        LinkKind.SATA: (0.6, 10.0 * US),
    }
    bandwidth, latency = params[kind]
    return LinkSpec(name=name, kind=kind, bandwidth=bandwidth, latency=latency)
