"""Live compute-device objects.

A :class:`ComputeDevice` pairs a
:class:`~repro.hardware.spec.ComputeDeviceSpec` with simulation state: a
slot pool limiting concurrent tasks, failure state, and busy-time
accounting used for the utilization metrics the paper's Figure 1
economics argument relies on.
"""

from __future__ import annotations

import typing

from repro.hardware.spec import ComputeDeviceSpec, ComputeKind, OpClass
from repro.sim.engine import Engine
from repro.sim.resources import Request, Resource
from repro.sim.trace import MetricRecorder


class ComputeDevice:
    """A compute device with a bounded number of execution slots."""

    def __init__(self, spec: ComputeDeviceSpec, engine: Engine):
        self.spec = spec
        self.engine = engine
        self.failed = False
        #: Gray-failure (fail-slow) speed multiplier: 0.1 = ten times
        #: slower.  Only the *physical* execution time scales with it;
        #: :meth:`nominal_compute_time` keeps advertising spec speed so
        #: cost models stay blind and must detect slowness from evidence.
        self.slow_factor = 1.0
        self._slots = Resource(engine, capacity=spec.slots)
        self.busy_slots = MetricRecorder()
        self.tasks_completed = 0
        self.busy_time = 0.0

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def kind(self) -> ComputeKind:
        return self.spec.kind

    @property
    def slots(self) -> int:
        return self.spec.slots

    @property
    def slots_in_use(self) -> int:
        return self._slots.in_use

    @property
    def queue_length(self) -> int:
        return self._slots.queue_length

    def supports(self, op: OpClass) -> bool:
        """Whether this device can execute the given op class."""
        return self.spec.supports(op)

    def nominal_compute_time(self, op: OpClass, ops: float) -> float:
        """Spec-sheet compute time (ns), ignoring any fail-slow state.

        This is what cost models and schedulers estimate with — the
        advertised speed.  The gap between this and observed duration is
        the health monitor's degradation evidence.
        """
        if ops < 0:
            raise ValueError(f"negative op count: {ops}")
        return ops / self.spec.ops_per_ns(op)

    def compute_time(self, op: OpClass, ops: float) -> float:
        """Physical compute time (ns), including any fail-slow slowdown."""
        return self.nominal_compute_time(op, ops) / self.slow_factor

    def acquire_slot(self) -> Request:
        """Request one execution slot (yieldable event, context manager)."""
        request = self._slots.request()
        request.add_callback(lambda _e: self.busy_slots.adjust(self.engine.now, +1))
        return request

    def release_slot(self, request: Request) -> None:
        """Return a held execution slot (pairs with acquire_slot)."""
        self._slots.release(request)
        self.busy_slots.adjust(self.engine.now, -1)

    def cancel_slot(self, request: Request) -> None:
        """Withdraw a slot request, granted or still queued.

        Interrupted waiters cannot tell whether their request was ever
        granted; this resolves either case without skewing the
        busy-slots metric (which only counts granted requests).
        """
        if request.triggered:
            self.release_slot(request)
        else:
            self._slots.release(request)

    def execute(self, op: OpClass, ops: float):
        """Generator: occupy one slot for the compute time of ``ops``.

        Yields from inside a simulation process::

            yield from device.execute(OpClass.VECTOR, 1e6)
        """
        request = self.acquire_slot()
        yield request
        started = self.engine.now
        try:
            yield self.engine.timeout(self.compute_time(op, ops))
            self.tasks_completed += 1
        finally:
            self.busy_time += self.engine.now - started
            self.release_slot(request)

    def utilization(self, until: typing.Optional[float] = None) -> float:
        """Time-weighted mean fraction of busy slots."""
        mean_busy = self.busy_slots.time_weighted_mean(until)
        return mean_busy / self.spec.slots

    def fail(self) -> None:
        """Mark the device failed (no new tasks are scheduled onto it)."""
        self.failed = True

    def recover(self) -> None:
        """Clear the failure flag after a repair/restart."""
        self.failed = False

    def __repr__(self) -> str:
        return (
            f"<ComputeDevice {self.name} ({self.kind.value}) "
            f"{self.slots_in_use}/{self.slots} slots{' FAILED' if self.failed else ''}>"
        )
