"""Simulated disaggregated hardware substrate.

This package models the hardware landscape of the paper's Table 1 and
Figure 1: heterogeneous memory devices (cache, HBM, DRAM, GDDR, PMem,
CXL-DRAM, NIC-attached far memory, SSD, HDD), heterogeneous compute
devices (CPU, GPU, TPU, FPGA, DPU), and the interconnect fabric joining
them (DDR bus, PCIe/CXL, NIC, SATA).  A :class:`~repro.hardware.cluster.Cluster`
bundles devices + topology + the simulation engine, and
:mod:`repro.hardware.presets` provides the two canonical architectures of
Figure 1 — the compute-centric design (1a) and the memory-centric pooled
design (1b) — plus smaller fixtures used in tests and benchmarks.
"""

from repro.hardware.spec import (
    Attachment,
    ComputeDeviceSpec,
    ComputeKind,
    LinkKind,
    MemoryDeviceSpec,
    MemoryKind,
    OpClass,
)
from repro.hardware.devices import MemoryDevice
from repro.hardware.compute import ComputeDevice
from repro.hardware.interconnect import Topology, NoRouteError
from repro.hardware.cluster import Cluster
from repro.hardware import calibration, presets

__all__ = [
    "Attachment",
    "Cluster",
    "ComputeDevice",
    "ComputeDeviceSpec",
    "ComputeKind",
    "LinkKind",
    "MemoryDevice",
    "MemoryDeviceSpec",
    "MemoryKind",
    "NoRouteError",
    "OpClass",
    "Topology",
    "calibration",
    "presets",
]
