"""Hardware specification dataclasses.

Specs are immutable descriptions; live state (allocations, failures,
queues) lives on the device objects in :mod:`repro.hardware.devices` and
:mod:`repro.hardware.compute`.

Unit conventions (uniform across the code base):

* time: nanoseconds
* bandwidth: bytes/ns (numerically equal to GB/s with GB = 1e9)
* capacity/size: bytes
"""

from __future__ import annotations

import dataclasses
import enum
import typing

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB
TiB = 1024 * GiB

US = 1_000.0  # microsecond in ns
MS = 1_000_000.0  # millisecond in ns


class MemoryKind(enum.Enum):
    """Memory technology classes — the rows of the paper's Table 1."""

    CACHE = "cache"
    HBM = "hbm"
    DRAM = "dram"
    GDDR = "gddr"
    PMEM = "pmem"
    CXL_DRAM = "cxl_dram"
    FAR_MEMORY = "far_memory"  # 'Disagg. Mem.' in Table 1
    SSD = "ssd"
    HDD = "hdd"


class Attachment(enum.Enum):
    """How a memory device is physically attached (Table 1 'Attached')."""

    ON_CHIP = "on_chip"  # cache
    CPU = "cpu"  # DDR bus / on-package (HBM, DRAM, PMem)
    ACCELERATOR = "accelerator"  # on-board accelerator memory (GDDR)
    PCIE = "pcie"  # PCIe / CXL expansion
    NIC = "nic"  # network-attached (far memory)
    SATA = "sata"  # spinning rust


class ComputeKind(enum.Enum):
    """Compute device classes of the disaggregated pool."""
    CPU = "cpu"
    GPU = "gpu"
    TPU = "tpu"
    FPGA = "fpga"
    DPU = "dpu"


class OpClass(enum.Enum):
    """Coarse operation classes used by the compute-throughput model."""

    SCALAR = "scalar"  # branchy pointer-chasing work
    VECTOR = "vector"  # data-parallel streaming math
    MATMUL = "matmul"  # dense linear algebra
    CRYPTO = "crypto"  # encryption / hashing
    COMPRESS = "compress"  # (de)compression


class LinkKind(enum.Enum):
    """Fabric link technologies."""

    DDR = "ddr"  # CPU memory bus
    ONBOARD = "onboard"  # accelerator <-> its on-board memory
    PCIE = "pcie"
    CXL = "cxl"
    NIC = "nic"  # RDMA-capable datacenter network
    SATA = "sata"


#: Link kinds over which ordinary cache-coherent load/store is possible.
COHERENT_LINK_KINDS = frozenset({LinkKind.DDR, LinkKind.ONBOARD, LinkKind.CXL})

#: Link kinds a load/store path may traverse at all (NIC/SATA need messages).
ADDRESSABLE_LINK_KINDS = frozenset(
    {LinkKind.DDR, LinkKind.ONBOARD, LinkKind.CXL, LinkKind.PCIE}
)


@dataclasses.dataclass(frozen=True)
class MemoryDeviceSpec:
    """Immutable description of one memory device (a Table 1 row)."""

    name: str
    kind: MemoryKind
    capacity: int  # bytes
    latency: float  # media access latency, ns
    bandwidth: float  # bytes/ns
    granularity: int  # smallest efficient access, bytes
    attachment: Attachment
    supports_sync: bool  # can be used with a synchronous ld/st interface
    persistent: bool
    coherent: bool  # participates in the host coherence domain
    byte_addressable: bool = True
    #: Multiplier on latency for writes (PMem writes are slower, etc.).
    write_penalty: float = 1.0
    #: Relative $/GiB provisioning cost (used by the Fig. 1 economics bench).
    cost_per_gib: float = 1.0

    def __post_init__(self):
        if self.capacity <= 0:
            raise ValueError(f"{self.name}: capacity must be positive")
        if self.latency < 0 or self.bandwidth <= 0:
            raise ValueError(f"{self.name}: invalid latency/bandwidth")
        if self.granularity <= 0:
            raise ValueError(f"{self.name}: granularity must be positive")
        if self.write_penalty < 1.0:
            raise ValueError(f"{self.name}: write_penalty must be >= 1")


@dataclasses.dataclass(frozen=True)
class ComputeDeviceSpec:
    """Immutable description of one compute device."""

    name: str
    kind: ComputeKind
    slots: int  # concurrently executing tasks (cores / SM groups)
    throughput: typing.Mapping[OpClass, float]  # ops/ns per op class
    #: Name of the memory device that is this device's local/on-board tier
    #: (e.g. a GPU's GDDR).  Empty string when there is none.
    local_memory: str = ""

    def __post_init__(self):
        if self.slots < 1:
            raise ValueError(f"{self.name}: slots must be >= 1")
        for op, rate in self.throughput.items():
            if rate <= 0:
                raise ValueError(f"{self.name}: non-positive throughput for {op}")

    def ops_per_ns(self, op: OpClass) -> float:
        """Throughput for ``op``; devices cannot run unsupported classes."""
        if op not in self.throughput:
            raise KeyError(f"{self.name} ({self.kind.value}) cannot execute {op.value}")
        return self.throughput[op]

    def supports(self, op: OpClass) -> bool:
        """Whether the spec lists a throughput for the given op class."""
        return op in self.throughput


@dataclasses.dataclass(frozen=True)
class LinkSpec:
    """Immutable description of a fabric link."""

    name: str
    kind: LinkKind
    bandwidth: float  # bytes/ns
    latency: float  # ns

    def __post_init__(self):
        if self.bandwidth <= 0 or self.latency < 0:
            raise ValueError(f"{self.name}: invalid bandwidth/latency")
