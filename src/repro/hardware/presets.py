"""Canonical cluster configurations.

Four presets are provided:

``table1-host``
    One CPU with every Table 1 device attached the way the table's
    'Attached' column says.  Used by the Table 1 reproduction bench.

``compute-centric``
    Figure 1a: two conventional servers, each over-provisioned with its
    own DRAM/PMem, plus accelerator cards with on-board memory, joined
    by a datacenter network.  Memory is stranded per node.

``pooled-rack``
    Figure 1b: a memory-centric rack — compute devices on a CXL switch
    in front of a shared pool of DRAM/CXL-DRAM/PMem, with NIC-attached
    far memory and storage behind it.  This is the architecture the
    paper's runtime system targets.

``two-socket-numa``
    A two-socket NUMA box (local vs. remote DRAM across a UPI-style
    coherent link) for the §1 'NUMA can cost 3x' claim.
"""

from __future__ import annotations

import typing

from repro.hardware import calibration as cal
from repro.hardware.cluster import Cluster
from repro.hardware.spec import GiB, LinkKind, LinkSpec


def build(name: str, **kwargs) -> Cluster:
    try:
        factory = _PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown preset {name!r}; available: {sorted(_PRESETS)}"
        ) from None
    trace_categories = kwargs.pop("trace_categories", None)
    cluster = factory(**kwargs)
    if trace_categories is not None:
        cluster.trace.enabled = set(trace_categories)
    return cluster


def table1_host(seed: int = 0, engine=None) -> Cluster:
    """Single host exposing one device of every Table 1 kind."""
    cluster = Cluster(seed=seed, engine=engine)
    cluster.add_compute(cal.make_cpu("cpu0"), node="host")

    cluster.add_memory(cal.make_cache("cache0"), node="host")
    cluster.connect("cpu0", "cache0", LinkKind.ONBOARD,
                    LinkSpec("cpu0--cache0", LinkKind.ONBOARD, 2000.0, 0.0))

    for maker, dev in ((cal.make_hbm, "hbm0"), (cal.make_dram, "dram0"),
                       (cal.make_pmem, "pmem0")):
        cluster.add_memory(maker(dev), node="host")
        cluster.connect("cpu0", dev, LinkKind.DDR)

    cluster.add_memory(cal.make_cxl_dram("cxl0"), node="host")
    cluster.connect("cpu0", "cxl0", LinkKind.CXL)

    cluster.add_memory(cal.make_far_memory("far0"), node="memnode")
    cluster.connect("cpu0", "far0", LinkKind.NIC)

    cluster.add_memory(cal.make_ssd("ssd0"), node="host")
    cluster.connect("cpu0", "ssd0", LinkKind.PCIE)

    cluster.add_memory(cal.make_hdd("hdd0"), node="host")
    cluster.connect("cpu0", "hdd0", LinkKind.SATA)
    return cluster


def compute_centric(
    seed: int = 0, dram_per_node: int = 128 * GiB, engine=None
) -> Cluster:
    """Figure 1a: per-server memory, accelerators as PCIe peripherals."""
    cluster = Cluster(seed=seed, engine=engine)

    for i in (1, 2):
        node = f"server{i}"
        cpu = f"cpu{i}"
        cluster.add_compute(cal.make_cpu(cpu), node=node)
        cluster.add_memory(cal.make_dram(f"dram{i}", capacity=dram_per_node), node=node)
        cluster.connect(cpu, f"dram{i}", LinkKind.DDR)
        cluster.add_memory(cal.make_pmem(f"pmem{i}"), node=node)
        cluster.connect(cpu, f"pmem{i}", LinkKind.DDR)

        gpu = f"gpu{i}"
        gddr = f"gddr{i}"
        cluster.add_memory(cal.make_gddr(gddr), node=node)
        cluster.add_compute(cal.make_gpu(gpu, local_memory=gddr), node=node)
        cluster.connect(gpu, gddr, LinkKind.ONBOARD)
        cluster.connect(cpu, gpu, LinkKind.PCIE)

    # Accelerator cards on server1.
    cluster.add_memory(cal.make_hbm("hbm_tpu", capacity=32 * GiB), node="server1")
    cluster.add_compute(cal.make_tpu("tpu1", local_memory="hbm_tpu"), node="server1")
    cluster.connect("tpu1", "hbm_tpu", LinkKind.ONBOARD)
    cluster.connect("cpu1", "tpu1", LinkKind.PCIE)
    cluster.add_compute(cal.make_fpga("fpga1"), node="server1")
    cluster.connect("cpu1", "fpga1", LinkKind.PCIE)

    # Storage on server2, network between servers.
    cluster.add_memory(cal.make_ssd("ssd2"), node="server2")
    cluster.connect("cpu2", "ssd2", LinkKind.PCIE)
    cluster.connect("cpu1", "cpu2", LinkKind.NIC)
    return cluster


def pooled_rack(
    seed: int = 0,
    dram_pool_devices: int = 2,
    dram_pool_capacity: int = 128 * GiB,
    engine=None,
) -> Cluster:
    """Figure 1b: memory-centric rack with a CXL-switched shared pool."""
    cluster = Cluster(seed=seed, engine=engine)
    cluster.add_switch("cxl-switch", node="fabric")

    # Compute pool (Fig. 1b bottom): CPUs, GPUs, TPU, FPGA.
    for i in (1, 2):
        cpu = f"cpu{i}"
        cluster.add_compute(cal.make_cpu(cpu), node=f"blade-cpu{i}")
        # Each CPU keeps a small local DRAM (boot/OS) but the pool is shared.
        local = f"dram-local{i}"
        cluster.add_memory(cal.make_dram(local, capacity=16 * GiB), node=f"blade-cpu{i}")
        cluster.connect(cpu, local, LinkKind.DDR)
        cluster.connect(cpu, "cxl-switch", LinkKind.CXL)

    for i in (1, 2):
        gpu, gddr = f"gpu{i}", f"gddr{i}"
        cluster.add_memory(cal.make_gddr(gddr), node=f"blade-gpu{i}")
        cluster.add_compute(cal.make_gpu(gpu, local_memory=gddr), node=f"blade-gpu{i}")
        cluster.connect(gpu, gddr, LinkKind.ONBOARD)
        cluster.connect(gpu, "cxl-switch", LinkKind.CXL)

    cluster.add_memory(cal.make_hbm("hbm_tpu", capacity=32 * GiB), node="blade-tpu")
    cluster.add_compute(cal.make_tpu("tpu1", local_memory="hbm_tpu"), node="blade-tpu")
    cluster.connect("tpu1", "hbm_tpu", LinkKind.ONBOARD)
    cluster.connect("tpu1", "cxl-switch", LinkKind.CXL)

    cluster.add_compute(cal.make_fpga("fpga1"), node="blade-fpga")
    cluster.connect("fpga1", "cxl-switch", LinkKind.CXL)

    # Memory pool (Fig. 1b top): shared DRAM, CXL-DRAM, PMem behind the switch.
    for i in range(dram_pool_devices):
        dev = f"dram-pool{i}"
        cluster.add_memory(cal.make_dram(dev, capacity=dram_pool_capacity),
                           node="mem-shelf")
        cluster.connect(dev, "cxl-switch", LinkKind.CXL)
    cluster.add_memory(cal.make_cxl_dram("cxl-exp0"), node="mem-shelf")
    cluster.connect("cxl-exp0", "cxl-switch", LinkKind.CXL)
    cluster.add_memory(cal.make_pmem("pmem-pool0"), node="mem-shelf")
    cluster.connect("pmem-pool0", "cxl-switch", LinkKind.CXL)

    # Far memory + storage behind the datacenter network.
    cluster.add_switch("tor", node="fabric")
    cluster.connect("cxl-switch", "tor", LinkKind.NIC)
    cluster.add_memory(cal.make_far_memory("far0"), node="memnode0")
    cluster.connect("far0", "tor", LinkKind.NIC)
    cluster.add_memory(cal.make_ssd("ssd0"), node="stornode0")
    cluster.connect("ssd0", "tor", LinkKind.NIC)
    cluster.add_memory(cal.make_hdd("hdd0"), node="stornode0")
    cluster.connect("hdd0", "tor", LinkKind.SATA)
    return cluster


def two_socket_numa(seed: int = 0, engine=None) -> Cluster:
    """Two NUMA sockets with local DRAM and a coherent inter-socket link."""
    cluster = Cluster(seed=seed, engine=engine)
    upi = LinkSpec("upi", LinkKind.CXL, bandwidth=60.0, latency=60.0)
    for i in (0, 1):
        cluster.add_compute(cal.make_cpu(f"cpu{i}"), node=f"socket{i}")
        cluster.add_memory(cal.make_dram(f"dram{i}"), node=f"socket{i}")
        cluster.connect(f"cpu{i}", f"dram{i}", LinkKind.DDR)
    cluster.topology.connect("cpu0", "cpu1", upi)
    return cluster


def far_memory_rack(
    seed: int = 0, n_nodes: int = 8, node_capacity: int = 64 * GiB, engine=None
) -> Cluster:
    """A compute host plus ``n_nodes`` far-memory nodes behind a ToR switch
    — the Carbink-style substrate for the fault-tolerance experiments."""
    cluster = Cluster(seed=seed, engine=engine)
    cluster.add_compute(cal.make_cpu("cpu0"), node="host")
    cluster.add_memory(cal.make_dram("dram0"), node="host")
    cluster.connect("cpu0", "dram0", LinkKind.DDR)
    cluster.add_switch("tor", node="fabric")
    cluster.connect("cpu0", "tor", LinkKind.NIC)
    for i in range(n_nodes):
        name = f"far{i}"
        cluster.add_memory(
            cal.make_far_memory(name, capacity=node_capacity), node=f"memnode{i}"
        )
        cluster.connect(name, "tor", LinkKind.NIC)
    return cluster


def dual_plane_rack(seed: int = 0, engine=None) -> Cluster:
    """A pooled rack with two independent CXL planes.

    Every compute device and every pool device connects to *both*
    switches, so any single switch (or link) failure leaves all routes
    intact — the fixture for the fault-aware-routing tests.
    """
    cluster = Cluster(seed=seed, engine=engine)
    for plane in ("plane-a", "plane-b"):
        cluster.add_switch(plane, node=plane)
    for i in (1, 2):
        cpu = f"cpu{i}"
        cluster.add_compute(cal.make_cpu(cpu), node=f"blade{i}")
        local = f"dram-local{i}"
        cluster.add_memory(cal.make_dram(local, capacity=16 * GiB),
                           node=f"blade{i}")
        cluster.connect(cpu, local, LinkKind.DDR)
        cluster.connect(cpu, "plane-a", LinkKind.CXL)
        cluster.connect(cpu, "plane-b", LinkKind.CXL,
                        LinkSpec(f"{cpu}--plane-b", LinkKind.CXL, 50.0, 75.0))
    for i in range(2):
        dev = f"dram-pool{i}"
        cluster.add_memory(cal.make_dram(dev), node="mem-shelf")
        cluster.connect(dev, "plane-a", LinkKind.CXL)
        cluster.connect(dev, "plane-b", LinkKind.CXL,
                        LinkSpec(f"{dev}--plane-b", LinkKind.CXL, 50.0, 75.0))
    return cluster


_PRESETS: typing.Dict[str, typing.Callable[..., Cluster]] = {
    "dual-plane-rack": dual_plane_rack,
    "far-memory-rack": far_memory_rack,
    "table1-host": table1_host,
    "compute-centric": compute_centric,
    "pooled-rack": pooled_rack,
    "two-socket-numa": two_socket_numa,
}


def available() -> typing.List[str]:
    return sorted(_PRESETS)
