"""Interconnect fabric: topology graph + routing.

The fabric is an undirected multigraph-free graph whose vertices are
device or switch names and whose edges carry live
:class:`~repro.sim.flows.Link` objects.  Routing uses latency-weighted
shortest paths (networkx Dijkstra) with caching; routes answer the three
questions the runtime keeps asking:

* which links does a transfer between A and B cross (→ contention),
* can compute device A issue loads/stores to memory B at all
  (:meth:`Topology.addressable` — PCIe/CXL yes, NIC/SATA no), and
* is that path cache-coherent (:meth:`Topology.coherent`), which decides
  whether B can back a *shared* memory region for A (paper §2.2).
"""

from __future__ import annotations

import typing

import networkx as nx

from repro.hardware.spec import (
    ADDRESSABLE_LINK_KINDS,
    COHERENT_LINK_KINDS,
    LinkKind,
    LinkSpec,
)
from repro.sim.flows import Link


class NoRouteError(Exception):
    """There is no path between the requested endpoints."""


class Topology:
    """The interconnect graph of a cluster."""

    def __init__(self):
        self.graph = nx.Graph()
        self._route_cache: dict = {}

    # -- construction ----------------------------------------------------

    def add_node(self, name: str, role: str = "switch") -> None:
        """Add a vertex.  ``role`` is 'compute', 'memory' or 'switch'."""
        if role not in ("compute", "memory", "switch"):
            raise ValueError(f"unknown node role {role!r}")
        if name in self.graph:
            raise ValueError(f"duplicate topology node {name!r}")
        self.graph.add_node(name, role=role)

    def connect(self, a: str, b: str, spec: LinkSpec) -> Link:
        """Create a live link between existing nodes ``a`` and ``b``."""
        for endpoint in (a, b):
            if endpoint not in self.graph:
                raise KeyError(f"unknown topology node {endpoint!r}")
        if self.graph.has_edge(a, b):
            raise ValueError(f"nodes {a!r} and {b!r} are already connected")
        link = Link(spec.name, bandwidth=spec.bandwidth, latency=spec.latency)
        self.graph.add_edge(a, b, link=link, kind=spec.kind)
        self._route_cache.clear()
        return link

    # -- queries -----------------------------------------------------------

    def nodes(self, role: typing.Optional[str] = None) -> list:
        """Vertex names, optionally filtered by role."""
        if role is None:
            return list(self.graph.nodes)
        return [n for n, data in self.graph.nodes(data=True) if data["role"] == role]

    def links(self) -> list:
        """All live Link objects in the fabric."""
        return [data["link"] for _, _, data in self.graph.edges(data=True)]

    def link_between(self, a: str, b: str) -> Link:
        """The link directly connecting two adjacent vertices."""
        return self.graph.edges[a, b]["link"]

    def route(self, src: str, dst: str) -> typing.List[Link]:
        """Latency-minimal path from ``src`` to ``dst`` as a list of links.

        Down links are routed around when an alternative exists — a
        redundant fabric (e.g. the ``dual-plane-rack`` preset) keeps
        working through single-plane failures.  Remember to call
        :meth:`invalidate_routes` after flipping link state by hand; the
        cluster's fault handlers already do.
        """
        key = (src, dst)
        if key in self._route_cache:
            return self._route_cache[key]
        if src == dst:
            self._route_cache[key] = []
            return []
        try:
            # weight=None makes Dijkstra skip the edge entirely.
            path = nx.shortest_path(
                self.graph, src, dst,
                weight=lambda a, b, data: (
                    data["link"].latency + 1e-9 if data["link"].up else None
                ),
            )
        except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
            raise NoRouteError(f"no route from {src!r} to {dst!r}") from exc
        links = [self.graph.edges[u, v]["link"] for u, v in zip(path, path[1:])]
        self._route_cache[key] = links
        self._route_cache[(dst, src)] = list(reversed(links))
        return links

    def route_kinds(self, src: str, dst: str) -> typing.List[LinkKind]:
        """The link technologies along the live route from src to dst."""
        if src == dst:
            return []
        path = nx.shortest_path(
            self.graph, src, dst,
            weight=lambda a, b, data: (
                data["link"].latency + 1e-9 if data["link"].up else None
            ),
        )
        return [self.graph.edges[u, v]["kind"] for u, v in zip(path, path[1:])]

    def path_latency(self, src: str, dst: str) -> float:
        """One-way propagation latency along the route (ns)."""
        return sum(link.latency for link in self.route(src, dst))

    def path_bandwidth(self, src: str, dst: str) -> float:
        """Uncontended bottleneck bandwidth along the route (bytes/ns)."""
        links = self.route(src, dst)
        if not links:
            return float("inf")
        return min(link.bandwidth for link in links)

    def addressable(self, src: str, dst: str) -> bool:
        """True when ``src`` can issue loads/stores that reach ``dst``
        directly (the path never crosses a message-based link)."""
        try:
            kinds = self.route_kinds(src, dst)
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            return False
        return all(kind in ADDRESSABLE_LINK_KINDS for kind in kinds)

    def coherent(self, src: str, dst: str) -> bool:
        """True when the path is entirely cache-coherent (DDR/CXL/on-board)."""
        try:
            kinds = self.route_kinds(src, dst)
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            return False
        return all(kind in COHERENT_LINK_KINDS for kind in kinds)

    def invalidate_routes(self) -> None:
        """Drop the route cache (after topology or link-state changes)."""
        self._route_cache.clear()

    def __repr__(self) -> str:
        return (
            f"<Topology {self.graph.number_of_nodes()} nodes, "
            f"{self.graph.number_of_edges()} links>"
        )
