"""The Cluster: devices + fabric + simulation engine in one handle.

A :class:`Cluster` is the substrate everything above runs on.  It owns
the discrete-event :class:`~repro.sim.engine.Engine`, the flow network
that moves bytes, the topology, and the device inventories, and it
groups devices into *nodes* so that fault injection can take out a whole
failure domain at once (paper §3, Challenge 8).
"""

from __future__ import annotations

import typing

from repro.hardware import calibration
from repro.hardware.compute import ComputeDevice
from repro.hardware.devices import MemoryDevice
from repro.hardware.interconnect import Topology
from repro.hardware.spec import (
    ComputeDeviceSpec,
    LinkKind,
    LinkSpec,
    MemoryDeviceSpec,
    MemoryKind,
)
from repro.obs import Observability
from repro.sim.engine import Engine
from repro.sim.events import Event
from repro.sim.faults import FaultEvent, FaultInjector, FaultKind
from repro.sim.flows import FlowNetwork, Link
from repro.sim.rand import RandomStreams
from repro.sim.trace import TraceLog


class Cluster:
    """A simulated rack of disaggregated compute and memory."""

    def __init__(
        self,
        seed: int = 0,
        trace_categories: typing.Optional[typing.Iterable[str]] = None,
        engine: typing.Optional[Engine] = None,
    ):
        #: Passing an existing ``engine`` composes several clusters onto
        #: one simulated clock — how :mod:`repro.federation` builds a
        #: datacenter of racks that share a timeline but keep separate
        #: fabrics, device inventories, and fault streams.
        self.engine = engine if engine is not None else Engine()
        self.streams = RandomStreams(seed)
        self.trace = TraceLog(enabled=trace_categories)
        self.obs = Observability(trace=self.trace, engine=self.engine)
        self.obs.registry.add_collector(self._collect_hardware_metrics)
        self.flownet = FlowNetwork(self.engine, trace=self.trace)
        # Default hub watchers: per-window event/traffic rates and queue
        # depth, folded on every telemetry poll (admission sampler,
        # federation heartbeat, or an explicit hub.pump process).
        telem = self.obs.telemetry
        telem.watch("engine.events", lambda: self.engine.events_processed,
                    kind="rate")
        telem.watch("engine.queue_depth", lambda: self.engine.queue_depth,
                    kind="level")
        telem.watch("flow.bytes", lambda: self.flownet.bytes_completed,
                    kind="rate")
        telem.watch("flow.transfers",
                    lambda: self.flownet.completed_transfers, kind="rate")
        telem.watch("util.compute", self._compute_busy_total, kind="rate")
        self.topology = Topology()
        self.memory: typing.Dict[str, MemoryDevice] = {}
        self.compute: typing.Dict[str, ComputeDevice] = {}
        #: node name -> set of device names in that failure domain
        self.nodes: typing.Dict[str, set] = {}
        self.faults = FaultInjector(self.engine, self.streams, self.trace)
        self.faults.on(FaultKind.NODE_CRASH, self._on_node_crash)
        self.faults.on(FaultKind.NODE_RESTART, self._on_node_restart)
        self.faults.on(FaultKind.NODE_REBOOT, self._on_node_reboot)
        self.faults.on(FaultKind.LINK_DOWN, self._on_link_down)
        self.faults.on(FaultKind.LINK_UP, self._on_link_up)
        self.faults.on(FaultKind.LINK_DEGRADED, self._on_link_degraded)
        self.faults.on(FaultKind.LINK_RESTORED, self._on_link_restored)
        self.faults.on(FaultKind.DEVICE_SLOW, self._on_device_slow)
        self.faults.on(FaultKind.DEVICE_RESTORED, self._on_device_restored)
        #: Optional :class:`repro.runtime.health.HealthMonitor`; when
        #: attached it owns restart draining and health-aware filtering.
        self.health_monitor = None
        #: Named compute pools (:meth:`define_pool`): a task whose
        #: properties carry ``device_pool=<name>`` may only be scheduled
        #: on the pool's members.  How disaggregated phases (e.g. LLM
        #: prefill vs decode) keep paired tasks on *different* devices
        #: without ever naming a device in the job itself.
        self.device_pools: typing.Dict[str, typing.Tuple[str, ...]] = {}

    # -- construction ------------------------------------------------------

    def add_memory(
        self, spec: MemoryDeviceSpec, node: typing.Optional[str] = None
    ) -> MemoryDevice:
        """Register a memory device (optionally in a failure domain)."""
        if spec.name in self.memory or spec.name in self.compute:
            raise ValueError(f"duplicate device name {spec.name!r}")
        device = MemoryDevice(spec)
        self.memory[spec.name] = device
        self.topology.add_node(spec.name, role="memory")
        self._register_node_member(node, spec.name)
        return device

    def add_compute(
        self, spec: ComputeDeviceSpec, node: typing.Optional[str] = None
    ) -> ComputeDevice:
        """Register a compute device (optionally in a failure domain)."""
        if spec.name in self.memory or spec.name in self.compute:
            raise ValueError(f"duplicate device name {spec.name!r}")
        device = ComputeDevice(spec, self.engine)
        self.compute[spec.name] = device
        self.topology.add_node(spec.name, role="compute")
        self._register_node_member(node, spec.name)
        return device

    def define_pool(self, name: str, devices: typing.Iterable[str]) -> None:
        """Name a compute pool for ``TaskProperties(device_pool=...)``.

        ``devices`` must be registered compute devices.  Re-defining a
        pool replaces its membership.  Pools partition *scheduling*, not
        hardware: the same device may belong to several pools.
        """
        members = tuple(dict.fromkeys(devices))
        if not members:
            raise ValueError(f"pool {name!r} needs at least one device")
        for device in members:
            if device not in self.compute:
                raise KeyError(
                    f"pool {name!r} names unknown compute device {device!r}"
                )
        self.device_pools[name] = members

    def add_switch(self, name: str, node: typing.Optional[str] = None) -> None:
        """Register a fabric switch vertex in the topology."""
        self.topology.add_node(name, role="switch")
        self._register_node_member(node, name)

    def connect(
        self,
        a: str,
        b: str,
        kind: LinkKind,
        spec: typing.Optional[LinkSpec] = None,
    ) -> Link:
        """Connect two topology nodes with a calibrated link of ``kind``
        (or an explicit ``spec`` overriding the calibration)."""
        if spec is None:
            spec = calibration.make_link(f"{a}--{b}", kind)
        return self.topology.connect(a, b, spec)

    def _register_node_member(self, node: typing.Optional[str], name: str) -> None:
        if node is not None:
            self.nodes.setdefault(node, set()).add(name)

    # -- device lookups ------------------------------------------------------

    def device(self, name: str):
        """Either kind of device by name."""
        if name in self.memory:
            return self.memory[name]
        if name in self.compute:
            return self.compute[name]
        raise KeyError(f"no device named {name!r}")

    def memory_devices(
        self, kind: typing.Optional[MemoryKind] = None, alive_only: bool = True
    ) -> typing.List[MemoryDevice]:
        """Memory devices, optionally filtered by kind and liveness."""
        devices = list(self.memory.values())
        if kind is not None:
            devices = [d for d in devices if d.kind == kind]
        if alive_only:
            devices = [d for d in devices if not d.failed]
        return devices

    def compute_devices(self, alive_only: bool = True) -> typing.List[ComputeDevice]:
        """Compute devices, optionally including failed ones."""
        devices = list(self.compute.values())
        if alive_only:
            devices = [d for d in devices if not d.failed]
        return devices

    def node_of(self, device_name: str) -> typing.Optional[str]:
        """The failure domain a device belongs to (None if unassigned)."""
        for node, members in self.nodes.items():
            if device_name in members:
                return node
        return None

    # -- data movement ---------------------------------------------------

    def access_route(self, endpoint: str, memory_name: str) -> typing.List[Link]:
        """Route for an access from ``endpoint`` (compute or memory device)
        to ``memory_name``, including the target device's port link."""
        device = self.memory[memory_name]
        route = list(self.topology.route(endpoint, memory_name))
        route.append(device.port)
        return route

    def transfer_route(
        self, src_memory: str, dst_memory: str, nbytes: float
    ) -> typing.Tuple[typing.List[Link], float]:
        """Route and effective payload for a device-to-device copy.

        A device-internal copy moves bytes in *and* out of the same
        media, so it crosses the lone port link with twice the payload.
        """
        src = self.memory[src_memory]
        if src_memory == dst_memory:
            return [src.port], 2 * nbytes
        route = [src.port] + list(self.topology.route(src_memory, dst_memory))
        route.append(self.memory[dst_memory].port)
        return route, nbytes

    def estimate_transfer_ns(
        self, route: typing.Sequence[Link], nbytes: float
    ) -> float:
        """Nominal uncontended duration of a copy over ``route`` (ns).

        Uses the links' *advertised* bandwidth, never the physical
        degrade factor — this is the expectation the health monitor
        compares observed timings against.
        """
        if not route:
            return 0.0
        latency = sum(link.latency for link in route)
        bandwidth = min(link.bandwidth for link in route)
        return latency + nbytes / bandwidth

    def transfer(self, src_memory: str, dst_memory: str, nbytes: float) -> Event:
        """Move ``nbytes`` from one memory device to another through the
        fabric, contending with all other traffic.  Both device ports are
        on the route, so both media bandwidths throttle the copy."""
        route, nbytes = self.transfer_route(src_memory, dst_memory, nbytes)
        self.trace.emit(
            self.engine.now, "transfer", "start",
            src=src_memory, dst=dst_memory, nbytes=nbytes,
        )
        return self.flownet.transfer(route, nbytes)

    def _observe_transfer_evidence(
        self, src_memory: str, dst_memory: str, nbytes: float, duration: float
    ) -> None:
        """Feed one finished (or abandoned) copy's timing to the monitor.

        The expectation is the nominal uncontended estimate, so the
        recorded ratio folds in both contention and fail-slow state; the
        monitor's peer-relative outlier test separates the two.  No-op
        without an attached monitor running degradation detection.
        """
        monitor = self.health_monitor
        if monitor is None or getattr(monitor, "degradation", None) is None:
            return
        try:
            route, effective = self.transfer_route(src_memory, dst_memory, nbytes)
        except Exception:
            return  # route gone (link died since); nothing to attribute
        expected = self.estimate_transfer_ns(route, effective)
        monitor.observe_transfer(route, duration, expected)

    def reliable_transfer(
        self,
        src_memory: str,
        dst_memory: str,
        nbytes: float,
        *,
        retries: int = 2,
        backoff_ns: float = 10_000.0,
        backoff_factor: float = 2.0,
        timeout_ns: typing.Optional[float] = None,
        report: typing.Optional[list] = None,
        hedge_delay_ns: typing.Optional[float] = None,
        hedge_source: typing.Optional[str] = None,
    ):
        """Generator: :meth:`transfer` with timeout, retry-with-backoff,
        and reroute semantics for faults landing mid-flight.

        Each attempt recomputes the route (so repaired or alternate
        paths are picked up automatically), races the transfer against
        an optional deadline, and backs off exponentially between
        attempts.  Recoverable errors are :class:`LinkDown`,
        :class:`TransferTimeout`, and
        :class:`~repro.hardware.interconnect.NoRouteError`; after
        ``retries`` re-attempts the last error propagates to the caller.
        Yields from a simulation process; returns the transfer duration
        of the successful attempt.

        **Hedging** (the gray-failure mitigation): when both
        ``hedge_delay_ns`` and ``hedge_source`` are given and the
        primary attempt has not finished after the delay, a backup copy
        of the same bytes is launched from ``hedge_source`` (a replica
        holder) and the two race; the first finisher wins and the loser
        is cancelled with its partial progress charged to the
        ``hedge.wasted_bytes`` counter.

        ``report``, when given, receives one dict describing the
        successful attempt — bytes, duration, retry count, the actual
        ``source`` the bytes came from, whether the ``hedged`` copy won,
        and the bottleneck link the waterfill froze the flow at
        (``None`` when causal tracing is off or the transfer never
        contended).
        """
        from repro.hardware.interconnect import NoRouteError
        from repro.sim.flows import LinkDown, TransferTimeout

        hedging = (
            hedge_delay_ns is not None
            and hedge_source is not None
            and hedge_source != src_memory
            and hedge_source in self.memory
        )
        attempt = 0
        while True:
            try:
                if hedging:
                    duration, used_src, hedged, winner = yield from (
                        self._hedged_attempt(
                            src_memory, dst_memory, nbytes,
                            hedge_source, hedge_delay_ns, timeout_ns,
                        )
                    )
                else:
                    done = self.transfer(src_memory, dst_memory, nbytes)
                    if timeout_ns is None:
                        duration = yield done
                    else:
                        timer = self.engine.timeout(timeout_ns)
                        yield self.engine.any_of([done, timer])
                        if not done.triggered:
                            self.flownet.cancel(
                                done, TransferTimeout(nbytes, timeout_ns)
                            )
                            raise TransferTimeout(nbytes, timeout_ns)
                        if not done._ok:  # lost a same-timestamp race
                            raise done._value
                        duration = done._value
                    used_src, hedged, winner = src_memory, False, done
                self._observe_transfer_evidence(
                    used_src, dst_memory, nbytes, duration
                )
                if report is not None:
                    report.append({
                        "src": src_memory, "dst": dst_memory,
                        "bytes": nbytes, "duration": duration,
                        "attempts": attempt + 1,
                        "source": used_src, "hedged": hedged,
                        "link": getattr(winner, "_bottleneck", None),
                    })
                return duration
            except (LinkDown, TransferTimeout, NoRouteError) as exc:
                if attempt >= retries:
                    raise
                attempt += 1
                self.obs.counter("transfer.retries").inc()
                self.trace.emit(
                    self.engine.now, "transfer", "retry",
                    src=src_memory, dst=dst_memory, nbytes=nbytes,
                    attempt=attempt, error=type(exc).__name__,
                )
                delay = min(backoff_ns * backoff_factor ** (attempt - 1), 1e7)
                yield self.engine.timeout(delay)

    def _hedged_attempt(
        self,
        src_memory: str,
        dst_memory: str,
        nbytes: float,
        hedge_source: str,
        hedge_delay_ns: float,
        timeout_ns: typing.Optional[float],
    ):
        """One transfer attempt raced against a hedge from a replica.

        Returns ``(duration, used_source, hedge_won, winner_event)``;
        raises the primary's error when every copy fails, or
        :class:`TransferTimeout` when the overall deadline fires first.
        The loser of a decided race is cancelled and its settled partial
        progress — exact bytes, via ``FlowNetwork.cancel`` — is charged
        to ``hedge.wasted_bytes``.
        """
        from repro.sim.flows import TransferTimeout

        started = self.engine.now
        done = self.transfer(src_memory, dst_memory, nbytes)
        deadline = (
            self.engine.timeout(timeout_ns) if timeout_ns is not None else None
        )
        hedge = None
        # Phase 1: give the primary its hedge delay to finish alone.
        if not done.triggered:
            waits = [done, self.engine.timeout(hedge_delay_ns)]
            if deadline is not None:
                waits.append(deadline)
            yield self.engine.any_of(waits)
        if not done.triggered and (deadline is None or not deadline.triggered):
            hedge = self.transfer(hedge_source, dst_memory, nbytes)
            self.obs.counter("hedge.launched").inc()
            self.trace.emit(
                self.engine.now, "transfer", "hedge",
                src=hedge_source, dst=dst_memory, nbytes=nbytes,
            )
        # Phase 2: race primary, hedge, and deadline to a verdict.
        winner = None
        while True:
            if done.triggered and done._ok:
                winner = done  # primary wins same-tick ties
                break
            if hedge is not None and hedge.triggered and hedge._ok:
                winner = hedge
                break
            if done.triggered and (hedge is None or hedge.triggered):
                break  # every copy failed
            if deadline is not None and deadline.triggered:
                break  # out of time
            waits = [
                event for event in (done, hedge)
                if event is not None and not event.triggered
            ]
            if deadline is not None:
                waits.append(deadline)
            yield self.engine.any_of(waits)

        if winner is None:
            for event in (done, hedge):
                if event is not None and not event.triggered:
                    self.flownet.cancel(
                        event,
                        TransferTimeout(
                            nbytes,
                            timeout_ns if timeout_ns is not None
                            else hedge_delay_ns,
                        ),
                    )
                    if event is hedge:
                        self.obs.counter("hedge.wasted_bytes").inc(
                            getattr(event, "_progress", 0.0)
                        )
            if deadline is not None and deadline.triggered:
                raise TransferTimeout(nbytes, timeout_ns)
            raise done._value  # primary (and any hedge) failed outright

        loser = hedge if winner is done else done
        if loser is not None and not loser.triggered:
            self.flownet.cancel(
                loser, TransferTimeout(nbytes, self.engine.now - started)
            )
            self.obs.counter("hedge.wasted_bytes").inc(
                getattr(loser, "_progress", 0.0)
            )
            if loser is done:
                # The abandoned primary ran the whole race without
                # finishing: its elapsed time is a lower bound on its
                # true duration — honest fail-slow evidence.
                self._observe_transfer_evidence(
                    src_memory, dst_memory, nbytes, self.engine.now - started
                )
        if winner is hedge:
            self.obs.counter("hedge.won").inc()
            self.trace.emit(
                self.engine.now, "transfer", "hedge_won",
                src=hedge_source, dst=dst_memory, nbytes=nbytes,
            )
            return winner._value, hedge_source, True, winner
        return winner._value, src_memory, False, winner

    # -- fault handling ----------------------------------------------------

    def crash_node(self, node: str) -> None:
        """Inject an unplanned crash of a whole failure domain now."""
        self.faults.inject_now(FaultKind.NODE_CRASH, node)

    def _on_node_crash(self, fault: FaultEvent) -> None:
        members = self.nodes.get(fault.target, set())
        for name in members:
            if name in self.memory:
                device = self.memory[name]
                device.fail()
                self.flownet.fail_link(device.port)
            elif name in self.compute:
                self.compute[name].fail()
        # Take down all fabric links touching the node's devices.
        for u, v, data in self.topology.graph.edges(data=True):
            if u in members or v in members:
                self.flownet.fail_link(data["link"])
        self.topology.invalidate_routes()

    def _on_node_restart(self, fault: FaultEvent) -> None:
        """A restart *request*.  With a health monitor attached and the
        node healthy, the monitor drains it gracefully and injects
        ``NODE_REBOOT`` once idle; otherwise (no monitor, or the node
        already crashed so there is nothing left to drain) the node
        power-cycles immediately and synchronously."""
        monitor = self.health_monitor
        if monitor is not None and monitor.begin_drain(fault.target):
            return
        self.faults.inject_now(FaultKind.NODE_REBOOT, fault.target)

    def _on_node_reboot(self, fault: FaultEvent) -> None:
        """The power-cycle instant: devices come back, every attached
        link bounces (killing in-flight flows), and volatile contents
        are wiped by the :class:`~repro.memory.manager.MemoryManager`'s
        own ``NODE_REBOOT`` handler."""
        members = self.nodes.get(fault.target, set())
        for name in members:
            if name in self.memory:
                self.memory[name].recover(preserve_contents=True)
            elif name in self.compute:
                self.compute[name].recover()
        for name in members:
            if name in self.memory:
                port = self.memory[name].port
                self.flownet.fail_link(port)
                self.flownet.restore_link(port)
        for u, v, data in self.topology.graph.edges(data=True):
            if u in members or v in members:
                self.flownet.fail_link(data["link"])
                self.flownet.restore_link(data["link"])
        self.topology.invalidate_routes()

    def _on_link_down(self, fault: FaultEvent) -> None:
        for link in self.topology.links():
            if link.name == fault.target:
                self.flownet.fail_link(link)
        self.topology.invalidate_routes()

    def _on_link_up(self, fault: FaultEvent) -> None:
        for link in self.topology.links():
            if link.name == fault.target:
                self.flownet.restore_link(link)
        self.topology.invalidate_routes()

    def _on_link_degraded(self, fault: FaultEvent) -> None:
        """Fail-slow a fabric link: ``detail['factor']`` is the speed
        multiplier (0.1 = ten times slower).  The link stays up, routes
        are unchanged, and the nominal bandwidth the control plane sees
        is untouched — only observed transfer timings reveal it."""
        factor = float(fault.detail.get("factor", 0.1))
        for link in self.topology.links():
            if link.name == fault.target:
                self.flownet.degrade_link(link, factor)

    def _on_link_restored(self, fault: FaultEvent) -> None:
        for link in self.topology.links():
            if link.name == fault.target:
                self.flownet.restore_link_speed(link)

    def _on_device_slow(self, fault: FaultEvent) -> None:
        """Fail-slow a device.  Compute devices stretch execution time;
        memory devices throttle their port link, which physically slows
        both transfers and far-memory accesses through it."""
        factor = float(fault.detail.get("factor", 0.1))
        if fault.target in self.compute:
            self.compute[fault.target].slow_factor = factor
        elif fault.target in self.memory:
            self.flownet.degrade_link(self.memory[fault.target].port, factor)

    def _on_device_restored(self, fault: FaultEvent) -> None:
        if fault.target in self.compute:
            self.compute[fault.target].slow_factor = 1.0
        elif fault.target in self.memory:
            self.flownet.restore_link_speed(self.memory[fault.target].port)

    # -- observability ----------------------------------------------------

    def _compute_busy_total(self) -> float:
        """Total compute busy-time (ns), cumulative across devices.

        Watched as a ``rate`` series: each telemetry window's total is
        busy-ns accrued that window, so ``total / (width * n_compute)``
        is the fleet utilization fraction for the window.
        """
        return sum(d.busy_time for d in self.compute.values())

    def _collect_hardware_metrics(self):
        """Hardware-layer metric readings for the obs registry snapshot."""
        yield "engine.events_processed", self.engine.events_processed
        yield "engine.queue_depth", self.engine.queue_depth
        yield "flow.completed_transfers", self.flownet.completed_transfers
        yield "flow.bytes_completed", self.flownet.bytes_completed
        yield "flow.peak_active", self.flownet.peak_active_flows
        yield "flow.rebalances", self.flownet.rebalances
        yield "flow.flows_resolved", self.flownet.flows_resolved
        yield "flow.resolves_coalesced", self.flownet.resolves_coalesced
        yield "flow.settle_skipped", self.flownet.settle_skipped
        # Flow progress is settled lazily (only when a flow's rate
        # changes); bring every in-flight flow current so the per-link
        # byte counters below are exact as of this snapshot.
        self.flownet.settle_all()
        for link in self.topology.links():
            yield f"link.bytes/{link.name}", link.bytes_carried
        for name, device in self.compute.items():
            yield f"device.busy_time/{name}", device.busy_time
            yield f"device.tasks_completed/{name}", device.tasks_completed
        for name, device in self.memory.items():
            yield f"device.mem_used/{name}", device.used

    # -- presets ---------------------------------------------------------

    @classmethod
    def preset(cls, name: str, **kwargs) -> "Cluster":
        """Build a canonical cluster; see :mod:`repro.hardware.presets`."""
        from repro.hardware import presets

        return presets.build(name, **kwargs)

    def __repr__(self) -> str:
        return (
            f"<Cluster {len(self.compute)} compute, {len(self.memory)} memory, "
            f"{len(self.nodes)} nodes, t={self.engine.now:.0f}ns>"
        )
