"""Live memory-device objects.

A :class:`MemoryDevice` pairs an immutable
:class:`~repro.hardware.spec.MemoryDeviceSpec` with mutable simulation
state: capacity accounting, a *port link* that throttles all traffic
into/out of the device at the device's own media bandwidth (so device
bandwidth participates in the max–min fair flow model exactly like fabric
links), failure state, and a utilization recorder.

Offset-level allocation lives in :mod:`repro.memory.allocator`; the
device only tracks aggregate bytes so the hardware layer stays below the
memory-management layer.
"""

from __future__ import annotations

import typing

from repro.hardware.spec import MemoryDeviceSpec, MemoryKind
from repro.sim.flows import Link
from repro.sim.trace import MetricRecorder


class CapacityError(Exception):
    """Raised when a reservation exceeds the device's remaining capacity."""


class DeviceFailed(Exception):
    """Raised when interacting with a failed device."""


class MemoryDevice:
    """A physical memory device in the disaggregated pool."""

    def __init__(self, spec: MemoryDeviceSpec):
        self.spec = spec
        self.used = 0
        self.failed = False
        #: Throttles all traffic touching the device media; routes through
        #: the fabric append this link so contention on the device itself
        #: is modeled uniformly with link contention.
        self.port = Link(
            name=f"{spec.name}.port",
            bandwidth=spec.bandwidth,
            latency=spec.latency,
        )
        self.occupancy = MetricRecorder()
        #: Bytes read/written through access interfaces (telemetry).
        self.bytes_read = 0.0
        self.bytes_written = 0.0

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def kind(self) -> MemoryKind:
        return self.spec.kind

    @property
    def capacity(self) -> int:
        return self.spec.capacity

    @property
    def free(self) -> int:
        return self.spec.capacity - self.used

    @property
    def utilization(self) -> float:
        return self.used / self.spec.capacity

    def reserve(self, nbytes: int, time: float = 0.0) -> None:
        """Account ``nbytes`` as used; raises :class:`CapacityError` if full."""
        if self.failed:
            raise DeviceFailed(f"{self.name} has failed")
        if nbytes < 0:
            raise ValueError(f"cannot reserve negative bytes: {nbytes}")
        if self.used + nbytes > self.spec.capacity:
            raise CapacityError(
                f"{self.name}: requested {nbytes} B but only {self.free} B free"
            )
        self.used += nbytes
        self.occupancy.record(time, self.used)

    def release(self, nbytes: int, time: float = 0.0) -> None:
        """Return ``nbytes`` to the free pool."""
        if nbytes < 0:
            raise ValueError(f"cannot release negative bytes: {nbytes}")
        if nbytes > self.used:
            raise ValueError(
                f"{self.name}: releasing {nbytes} B but only {self.used} B in use"
            )
        self.used -= nbytes
        self.occupancy.record(time, self.used)

    def fail(self) -> None:
        """Mark the device failed (node crash / module failure)."""
        self.failed = True
        self.port.up = False

    def recover(self, preserve_contents: bool = False) -> None:
        """Bring the device back.  Volatile devices lose contents on
        recovery unless ``preserve_contents`` — capacity accounting is the
        caller's (memory manager's) responsibility."""
        self.failed = False
        self.port.up = True
        if not preserve_contents and not self.spec.persistent:
            self.used = 0

    def effective_bytes(self, nbytes: int) -> int:
        """Bytes actually moved for a payload of ``nbytes`` given the
        device's access granularity (read–modify–write amplification)."""
        gran = self.spec.granularity
        if gran <= 1:
            return nbytes
        return ((nbytes + gran - 1) // gran) * gran

    def __repr__(self) -> str:
        return (
            f"<MemoryDevice {self.name} ({self.kind.value}) "
            f"{self.used}/{self.capacity} B{' FAILED' if self.failed else ''}>"
        )


def total_capacity(devices: typing.Iterable[MemoryDevice]) -> int:
    return sum(d.capacity for d in devices)


def total_used(devices: typing.Iterable[MemoryDevice]) -> int:
    return sum(d.used for d in devices)
