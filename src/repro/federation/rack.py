"""One rack's full stack, packaged for the federation layer.

A :class:`Rack` bundles the pieces a single-rack deployment already has
— cluster, runtime system, QoS admission driver, health monitor — under
one name, plus the :class:`StatsWindow` of recent load samples the
router's ``least_loaded`` policy decides over.  All racks in a
federation share one :class:`~repro.sim.engine.Engine` (one simulated
clock) but keep separate fabrics, device inventories, observability
hubs, and fault streams.
"""

from __future__ import annotations

import collections
import typing

from repro.hardware.cluster import Cluster
from repro.runtime.admission import RackDriver
from repro.runtime.health import HealthMonitor
from repro.runtime.rts import RuntimeSystem


class StatsWindow:
    """A bounded sliding window of ``(time, value)`` load samples.

    Routing decisions read the *recent* load, not the lifetime mean: a
    rack that was saturated an hour ago but is idle now must look idle.
    Samples older than ``window_ns`` are evicted on read; ``maxlen``
    bounds memory regardless of sampling rate.
    """

    def __init__(self, window_ns: float = 500_000.0, maxlen: int = 128):
        if window_ns <= 0:
            raise ValueError(f"window must be positive, got {window_ns}")
        self.window_ns = float(window_ns)
        self.samples: typing.Deque[typing.Tuple[float, float]] = (
            collections.deque(maxlen=maxlen)
        )

    def observe(self, time: float, value: float) -> None:
        """Append one sample at ``time``."""
        self.samples.append((float(time), float(value)))

    def _evict(self, now: float) -> None:
        horizon = now - self.window_ns
        while self.samples and self.samples[0][0] < horizon:
            self.samples.popleft()

    def mean(self, now: float) -> float:
        """Mean of the samples still inside the window (0.0 when empty)."""
        self._evict(now)
        if not self.samples:
            return 0.0
        return sum(v for _t, v in self.samples) / len(self.samples)

    def latest(self) -> float:
        """The most recent sample's value (0.0 when empty)."""
        return self.samples[-1][1] if self.samples else 0.0

    def __len__(self) -> int:
        return len(self.samples)


class Rack:
    """One rack (cluster + RTS + admission + health) inside a federation."""

    def __init__(
        self,
        name: str,
        cluster: Cluster,
        rts: RuntimeSystem,
        driver: RackDriver,
        monitor: HealthMonitor,
        window_ns: float = 500_000.0,
    ):
        self.name = name
        self.cluster = cluster
        self.rts = rts
        self.driver = driver
        self.monitor = monitor
        self.window = StatsWindow(window_ns=window_ns)
        #: Set by the registry while the rack is being drained out.
        self.draining = False
        #: Total devices at registration time (health-fraction base).
        self._device_total = len(cluster.memory) + len(cluster.compute)

    # -- live signals ------------------------------------------------------

    @property
    def obs(self):
        return self.cluster.obs

    @property
    def queued(self) -> int:
        """Jobs waiting in this rack's admission queues."""
        return self.driver.queued_count

    @property
    def running(self) -> int:
        """Jobs admitted on this rack and not yet finished."""
        return self.driver.running_count

    @property
    def slots(self) -> int:
        return self.driver.max_concurrent

    def health_fraction(self) -> float:
        """Fraction of this rack's devices the control plane may use.

        Devices the monitor has flagged fail-slow (DEGRADED) count half:
        they still serve, but a rack full of slow devices should read as
        degraded to the federation registry so the router spills around
        it before jobs start missing deadlines there.
        """
        if not self._device_total:
            return 0.0
        healthy = len(self.monitor.up_devices())
        if hasattr(self.monitor, "degraded_devices"):
            healthy -= 0.5 * len(self.monitor.degraded_devices())
        return max(0.0, healthy) / self._device_total

    def load(self) -> float:
        """Instantaneous load: jobs in the system per admission slot."""
        return (self.queued + self.running) / max(1, self.slots)

    def sample(self, now: float) -> float:
        """Record the current load into the stats window; returns it.

        Also feeds the rack's continuous telemetry: the load level and
        a watcher poll, so federated racks get per-window series and
        burn-rate sweeps at the heartbeat cadence even without a local
        trace-driver sampler running.
        """
        load = self.load()
        self.window.observe(now, load)
        telem = self.obs.telemetry
        telem.record_level("fed.load", now, load)
        telem.poll(now)
        return load

    def load_score(self, now: float) -> float:
        """What ``least_loaded`` compares: the current load blended with
        the windowed recent mean, so one momentarily idle slot on a
        recently-slammed rack does not immediately re-attract traffic."""
        return self.sample(now) + self.window.mean(now)

    def idle(self) -> bool:
        """No queued or running jobs on this rack."""
        return self.queued == 0 and self.running == 0

    def __repr__(self) -> str:
        return (
            f"<Rack {self.name} queued={self.queued} running={self.running} "
            f"health={self.health_fraction():.0%}>"
        )
