"""Service discovery for a federation of racks.

The :class:`RackRegistry` is the federation's source of truth for *which
racks exist* and *which may take traffic*.  Racks register and
deregister dynamically (elastic join/drain); liveness is **derived from
each rack's own** :class:`~repro.runtime.health.HealthMonitor` — the
registry never probes devices itself.  A heartbeat process samples every
rack's health fraction and load on a fixed cadence (feeding the routing
stats windows), and monitor ``on_change`` callbacks refresh a rack's
state between heartbeats so a crash is visible to the router at the
instant the rack's own control plane sees it.

State ladder (per rack)::

    UP        health fraction >= degraded_below
    DEGRADED  down_below <= health fraction < degraded_below
              (still routable: capacity is reduced, not gone)
    DRAINING  being removed; no new traffic, in-flight work finishes
    DOWN      health fraction < down_below; not routable
"""

from __future__ import annotations

import dataclasses
import enum
import typing

from repro.federation.rack import Rack

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import Observability
    from repro.sim.engine import Engine


class RackState(enum.Enum):
    """Registry view of one rack (order matters: gauges export the index)."""

    UP = "up"
    DEGRADED = "degraded"
    DRAINING = "draining"
    DOWN = "down"


#: Gauge encoding: ``fed.rack.state/<name>`` exports the index here.
STATE_ORDER = (
    RackState.UP, RackState.DEGRADED, RackState.DRAINING, RackState.DOWN,
)


@dataclasses.dataclass
class RegistryStats:
    registered: int = 0
    deregistered: int = 0
    transitions: int = 0
    heartbeats: int = 0
    drains_started: int = 0
    drains_completed: int = 0


class RackRegistry:
    """Rack membership + heartbeat-driven liveness for one federation."""

    def __init__(
        self,
        engine: "Engine",
        obs: "Observability",
        heartbeat_ns: float = 50_000.0,
        degraded_below: float = 0.7,
        down_below: float = 0.3,
    ):
        if heartbeat_ns <= 0:
            raise ValueError(f"heartbeat must be positive, got {heartbeat_ns}")
        if not 0.0 <= down_below <= degraded_below <= 1.0:
            raise ValueError(
                "need 0 <= down_below <= degraded_below <= 1, got "
                f"{down_below} / {degraded_below}"
            )
        self.engine = engine
        self.obs = obs
        self.heartbeat_ns = float(heartbeat_ns)
        self.degraded_below = float(degraded_below)
        self.down_below = float(down_below)
        self.stats = RegistryStats()
        self._racks: typing.Dict[str, Rack] = {}
        self._state: typing.Dict[str, RackState] = {}
        self._heartbeat_proc = None
        obs.registry.add_collector(self._collect_metrics)

    # -- membership --------------------------------------------------------

    def register(self, rack: Rack) -> Rack:
        """Add a rack to the federation; liveness tracking starts now."""
        if rack.name in self._racks:
            raise ValueError(f"duplicate rack name {rack.name!r}")
        self._racks[rack.name] = rack
        self._state[rack.name] = self._derive_state(rack)
        self.stats.registered += 1
        self.obs.counter("fed.racks_registered").inc()
        self.obs.event("federation", "register", rack=rack.name,
                       state=self._state[rack.name].value)
        # Health transitions inside the rack refresh its federation
        # state immediately — the router never routes to a rack its own
        # control plane already knows is gone.
        rack.monitor.on_change(lambda name=rack.name: self._refresh(name))
        return rack

    def deregister(self, name: str) -> Rack:
        """Remove a rack (it keeps simulating; the router forgets it)."""
        rack = self._racks.pop(name)
        self._state.pop(name)
        self.stats.deregistered += 1
        self.obs.counter("fed.racks_deregistered").inc()
        self.obs.event("federation", "deregister", rack=name)
        return rack

    def get(self, name: str) -> Rack:
        """Look up a registered rack by name (KeyError if absent)."""
        return self._racks[name]

    def __contains__(self, name: str) -> bool:
        return name in self._racks

    def racks(self) -> typing.List[Rack]:
        """All registered racks, in name order (deterministic scans)."""
        return [self._racks[name] for name in sorted(self._racks)]

    def state(self, name: str) -> RackState:
        """The registry's current view of one rack."""
        return self._state[name]

    def routable_racks(self) -> typing.List[Rack]:
        """Racks new jobs may be routed to, in name order."""
        return [
            rack for rack in self.racks()
            if self._state[rack.name] in (RackState.UP, RackState.DEGRADED)
        ]

    # -- liveness ----------------------------------------------------------

    def _derive_state(self, rack: Rack) -> RackState:
        if rack.draining:
            return RackState.DRAINING
        fraction = rack.health_fraction()
        if fraction < self.down_below:
            return RackState.DOWN
        if fraction < self.degraded_below:
            return RackState.DEGRADED
        return RackState.UP

    def _refresh(self, name: str) -> None:
        rack = self._racks.get(name)
        if rack is None:
            return  # a late health callback from a deregistered rack
        new = self._derive_state(rack)
        old = self._state[name]
        if new is old:
            return
        self._state[name] = new
        self.stats.transitions += 1
        self.obs.counter(f"fed.rack_to_{new.value}").inc()
        self.obs.event("federation", "transition", rack=name,
                       state=new.value, was=old.value,
                       health=rack.health_fraction())

    def begin_drain(self, name: str) -> None:
        """Mark a rack DRAINING: no new routes; in-flight work finishes."""
        rack = self._racks[name]
        if rack.draining:
            return
        rack.draining = True
        self.stats.drains_started += 1
        self.obs.counter("fed.rack_drains").inc()
        self._refresh(name)

    def pulse(self) -> None:
        """One heartbeat: sample every rack's load window and re-derive
        its state from its health monitor."""
        now = self.engine.now
        self.stats.heartbeats += 1
        for rack in self.racks():
            rack.sample(now)
            self._refresh(rack.name)

    def start_heartbeat(self):
        """Spawn (or return) the periodic heartbeat process.

        The process runs forever; callers driving the simulation to
        quiescence must :meth:`stop_heartbeat` once drained (the
        federated session's drive loop does this automatically).
        """
        if self._heartbeat_proc is not None and self._heartbeat_proc.is_alive:
            return self._heartbeat_proc

        def beat():
            while True:
                self.pulse()
                yield self.engine.timeout(self.heartbeat_ns)

        self._heartbeat_proc = self.engine.process(
            beat(), name="federation:heartbeat"
        )
        return self._heartbeat_proc

    def stop_heartbeat(self) -> None:
        """Kill the heartbeat process (lets the event queue drain)."""
        if self._heartbeat_proc is not None and self._heartbeat_proc.is_alive:
            self._heartbeat_proc.kill()
        self._heartbeat_proc = None

    # -- observability -----------------------------------------------------

    def _collect_metrics(self):
        """Per-rack gauges for the federation obs snapshot."""
        for rack in self.racks():
            name = rack.name
            yield f"fed.rack.state/{name}", float(
                STATE_ORDER.index(self._state[name])
            )
            yield f"fed.rack.health/{name}", rack.health_fraction()
            yield f"fed.rack.queued/{name}", float(rack.queued)
            yield f"fed.rack.running/{name}", float(rack.running)
            yield f"fed.rack.load/{name}", rack.load()
            yield f"fed.rack.alerts/{name}", float(
                len(rack.obs.telemetry.alerts.active)
            )
