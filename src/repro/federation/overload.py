"""Overload detection for federated routing.

Mirrors the router/overload-detector split in production LLM serving
stacks: the *policy* decides where a job would best run; the
*overload detector* decides whether that rack can take it at all right
now.  When the preferred rack is overloaded the router first tries to
**spill** to the least-loaded non-overloaded sibling, and only **sheds**
(rejects at the front door) when every routable rack is saturated —
per-rack admission control never sees jobs the federation already knows
it cannot serve.

Two watermarks, either trips the detector:

* ``queue_watermark`` — jobs waiting in the rack's admission queues.
  A deep queue means new arrivals wait regardless of policy choice.
* ``burn_watermark`` — worst SLO burn rate across the rack's tracked
  workloads.  A rack may have short queues yet be missing deadlines
  (stragglers, degraded devices); burn rate catches that.
"""

from __future__ import annotations

import typing

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.federation.rack import Rack


class OverloadDetector:
    """Watermark-based per-rack overload predicate."""

    def __init__(
        self,
        queue_watermark: int = 8,
        burn_watermark: float = 2.0,
    ):
        if queue_watermark < 1:
            raise ValueError(
                f"queue watermark must be >= 1, got {queue_watermark}"
            )
        if burn_watermark <= 0:
            raise ValueError(
                f"burn watermark must be positive, got {burn_watermark}"
            )
        self.queue_watermark = int(queue_watermark)
        self.burn_watermark = float(burn_watermark)

    def is_overloaded(self, rack: "Rack") -> bool:
        """Should the router route *around* this rack right now?"""
        return self.reason(rack) is not None

    def reason(self, rack: "Rack") -> typing.Optional[str]:
        """Why the rack is overloaded, or ``None`` if it is not."""
        if rack.queued >= self.queue_watermark:
            return "queue"
        if self.max_burn(rack) >= self.burn_watermark:
            return "slo_burn"
        return None

    @staticmethod
    def max_burn(rack: "Rack") -> float:
        """Worst SLO burn rate across the rack's tracked workloads."""
        workloads = rack.obs.slo.workloads.values()
        burns = [
            slo.burn_rate for slo in workloads if slo.burn_rate is not None
        ]
        return max(burns, default=0.0)


__all__ = ["OverloadDetector"]
