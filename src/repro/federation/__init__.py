"""Federated multi-rack serving: one engine, N racks, one front door.

The paper scopes its runtime to one disaggregated rack; real
deployments run fleets of them.  This package adds the tier production
serving stacks put in front of replicated backends — service discovery
(:mod:`~repro.federation.registry`), pluggable routing
(:mod:`~repro.federation.router`), overload-aware spill/shed
(:mod:`~repro.federation.overload`), and elastic join/drain
(:mod:`~repro.federation.session`) — on top of the existing per-rack
QoS admission and health machinery.  Entry point:
``repro.api.connect(..., racks=N)`` or :func:`federate`.
"""

from repro.federation.overload import OverloadDetector
from repro.federation.rack import Rack, StatsWindow
from repro.federation.registry import RackRegistry, RackState, RegistryStats
from repro.federation.router import (
    POLICIES,
    AffinityPolicy,
    LeastLoadedPolicy,
    PrefixAffinityPolicy,
    RoundRobinPolicy,
    RoutedJob,
    Router,
    RouterStats,
)
from repro.federation.session import FederatedSession, federate

__all__ = [
    "AffinityPolicy",
    "FederatedSession",
    "LeastLoadedPolicy",
    "OverloadDetector",
    "POLICIES",
    "PrefixAffinityPolicy",
    "Rack",
    "RackRegistry",
    "RackState",
    "RegistryStats",
    "RoundRobinPolicy",
    "RoutedJob",
    "Router",
    "RouterStats",
    "StatsWindow",
    "federate",
]
