"""The federation's front door: route each job to a rack.

Modeled on the router tier of production LLM serving stacks (a thin
process in front of N engine replicas, split into service discovery +
routing logic + overload detection).  Here the replicas are whole
racks: the :class:`Router` asks the :class:`~repro.federation.registry.
RackRegistry` for routable racks, lets a pluggable policy pick one,
and consults the :class:`~repro.federation.overload.OverloadDetector`
to spill or shed before the rack's own admission queues ever see the
job.

Policies (``repro.api.connect(racks=N, routing=...)``):

``round_robin``
    Cycle through routable racks in name order.  The baseline.
``least_loaded``
    Pick the rack with the lowest :meth:`Rack.load_score` — current
    load blended with the heartbeat-sampled sliding-window mean.
``affinity``
    Route a session's jobs to the rack already holding its pinned
    dataset, falling back to least-loaded (and sticking there) when no
    replica exists.  Cross-rack placement pays an explicit simulated
    fetch: ``interrack_latency_ns + bytes / interrack_bandwidth`` on
    the shared clock, after which the destination rack holds a replica
    (fetch-once, then local).
``prefix_affinity``
    Affinity over hierarchical session keys (``"/"``-separated block
    paths, as the LLM app's prompt prefixes).  A key with no replica
    of its own routes to the rack holding its *longest resident
    ancestor* — the rack whose KV prefix cache covers the most of the
    prompt — before falling back to the sticky least-loaded choice.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.federation.overload import OverloadDetector
from repro.federation.rack import Rack
from repro.federation.registry import RackRegistry, RackState


@dataclasses.dataclass
class RoutedJob:
    """The federation-level handle for one submitted job."""

    name: str
    session: typing.Optional[str] = None
    #: Destination rack name (None when shed at the front door).
    rack: typing.Optional[str] = None
    #: Shed by the federation: every routable rack was overloaded (or
    #: none existed).  Distinct from rack-level admission shedding.
    shed: bool = False
    #: The policy's first choice was overloaded; we went elsewhere.
    spilled: bool = False
    #: Bytes pulled across the inter-rack fabric before submission.
    fetched_bytes: float = 0.0
    #: The rack-level admission handle.  Filled at route time for local
    #: jobs, after the simulated fetch for cross-rack ones.
    admitted: typing.Any = dataclasses.field(default=None, repr=False)

    @property
    def accounted(self) -> bool:
        """Terminal at the routing layer: shed, or handed to a rack."""
        return self.shed or self.admitted is not None


class RoundRobinPolicy:
    """Cycle through routable racks in name order."""

    name = "round_robin"

    def __init__(self):
        self._turn = 0

    def choose(
        self,
        candidates: typing.List[Rack],
        now: float,
        session: typing.Optional[str],
        resident: typing.Set[str],
    ) -> Rack:
        """The next rack in rotation."""
        rack = candidates[self._turn % len(candidates)]
        self._turn += 1
        return rack


class LeastLoadedPolicy:
    """Pick the rack with the lowest recent-window load score."""

    name = "least_loaded"

    def choose(
        self,
        candidates: typing.List[Rack],
        now: float,
        session: typing.Optional[str],
        resident: typing.Set[str],
    ) -> Rack:
        """The candidate with the lowest (load score, name) key."""
        return min(candidates, key=lambda r: (r.load_score(now), r.name))


class AffinityPolicy:
    """Follow the data: route a session to the rack holding its bytes.

    ``resident`` is the set of rack names currently holding the
    session's pinned dataset (maintained by the router's catalog).  A
    session with no replica anywhere picks the least-loaded rack and
    sticks to it, so its *next* job finds the replica the first fetch
    created.
    """

    name = "affinity"

    def __init__(self):
        self._fallback = LeastLoadedPolicy()
        #: Sticky choice for sessions with no pinned dataset at all.
        self._pins: typing.Dict[str, str] = {}

    def choose(
        self,
        candidates: typing.List[Rack],
        now: float,
        session: typing.Optional[str],
        resident: typing.Set[str],
    ) -> Rack:
        """A rack holding the session's data, else a sticky fallback."""
        by_name = {rack.name: rack for rack in candidates}
        if resident:
            local = sorted(name for name in resident if name in by_name)
            if local:
                # Several replicas: least-loaded among them.
                if len(local) > 1:
                    return min(
                        (by_name[name] for name in local),
                        key=lambda r: (r.load_score(now), r.name),
                    )
                return by_name[local[0]]
        if session is not None:
            pinned = self._pins.get(session)
            if pinned in by_name:
                return by_name[pinned]
        rack = self._fallback.choose(candidates, now, session, resident)
        if session is not None:
            self._pins[session] = rack.name
        return rack


class PrefixAffinityPolicy(AffinityPolicy):
    """Affinity over hierarchical keys: longest resident ancestor wins.

    Session keys are ``"/"``-separated paths (the LLM app submits each
    request under its prompt's block path).  When no rack holds the
    exact key, the policy consults the router's dataset catalog for the
    key's ancestors — longest first — and routes to a rack holding one:
    that rack's prefix cache covers the most of the prompt, so decode
    reuses the most KV state.  With no resident ancestor either, the
    sticky least-loaded fallback of :class:`AffinityPolicy` applies.
    """

    name = "prefix_affinity"

    def __init__(self):
        super().__init__()
        self._router = None

    def bind_router(self, router: "Router") -> None:
        """Give the policy catalog access (called by the router)."""
        self._router = router

    def choose(
        self,
        candidates: typing.List[Rack],
        now: float,
        session: typing.Optional[str],
        resident: typing.Set[str],
    ) -> Rack:
        """A rack holding the longest resident prefix of ``session``."""
        if (
            not resident and session is not None
            and self._router is not None and "/" in session
        ):
            parts = session.split("/")
            for depth in range(len(parts) - 1, 0, -1):
                holders = self._router.resident_racks("/".join(parts[:depth]))
                if holders:
                    resident = holders
                    break
        return super().choose(candidates, now, session, resident)


POLICIES: typing.Dict[str, typing.Callable[[], object]] = {
    "round_robin": RoundRobinPolicy,
    "least_loaded": LeastLoadedPolicy,
    "affinity": AffinityPolicy,
    "prefix_affinity": PrefixAffinityPolicy,
}


@dataclasses.dataclass
class RouterStats:
    routed: int = 0
    spills: int = 0
    sheds: int = 0
    cross_rack_fetches: int = 0
    cross_rack_bytes: float = 0.0
    #: Routings where a DEGRADED rack was routable but an UP rack won.
    degraded_avoided: int = 0


class Router:
    """Routes jobs onto racks through a policy + overload detector."""

    def __init__(
        self,
        registry: RackRegistry,
        obs,
        policy: typing.Union[str, object] = "round_robin",
        overload: typing.Optional[OverloadDetector] = None,
        interrack_bandwidth: float = 5.0,
        interrack_latency_ns: float = 2_000.0,
    ):
        if isinstance(policy, str):
            try:
                policy = POLICIES[policy]()
            except KeyError:
                raise ValueError(
                    f"unknown routing policy {policy!r}; "
                    f"pick one of {sorted(POLICIES)}"
                ) from None
        if interrack_bandwidth <= 0:
            raise ValueError(
                f"inter-rack bandwidth must be positive, got "
                f"{interrack_bandwidth}"
            )
        if interrack_latency_ns < 0:
            raise ValueError(
                f"inter-rack latency must be >= 0, got {interrack_latency_ns}"
            )
        self.registry = registry
        self.engine = registry.engine
        self.obs = obs
        self.policy = policy
        self.overload = overload if overload is not None else OverloadDetector()
        #: Inter-rack fabric model: bytes per ns, plus a flat latency.
        self.interrack_bandwidth = float(interrack_bandwidth)
        self.interrack_latency_ns = float(interrack_latency_ns)
        self.stats = RouterStats()
        self.jobs: typing.List[RoutedJob] = []
        #: dataset key -> rack names holding a replica
        self._residency: typing.Dict[str, typing.Set[str]] = {}
        #: dataset key -> replica size in bytes
        self._dataset_bytes: typing.Dict[str, float] = {}
        self._fetches_in_flight = 0
        bind = getattr(self.policy, "bind_router", None)
        if bind is not None:
            bind(self)

    # -- dataset catalog ---------------------------------------------------

    def pin_dataset(self, key: str, rack_name: str, nbytes: float) -> None:
        """Declare that ``key``'s hot data lives on ``rack_name``.

        Affinity routing sends the session's jobs there; any other rack
        must first fetch ``nbytes`` across the inter-rack fabric.
        """
        if nbytes < 0:
            raise ValueError(f"dataset size must be >= 0, got {nbytes}")
        if rack_name not in self.registry:
            raise KeyError(f"unknown rack {rack_name!r}")
        self._residency.setdefault(key, set()).add(rack_name)
        self._dataset_bytes[key] = float(nbytes)

    def resident_racks(self, key: typing.Optional[str]) -> typing.Set[str]:
        """Rack names currently holding a replica of ``key``'s data."""
        if key is None:
            return set()
        return set(self._residency.get(key, ()))

    @property
    def fetches_in_flight(self) -> int:
        return self._fetches_in_flight

    # -- routing -----------------------------------------------------------

    def route(
        self,
        name: str,
        source,
        *,
        tenant: typing.Optional[str] = None,
        priority=None,
        cost: float = 1.0,
        session: typing.Optional[str] = None,
    ) -> RoutedJob:
        """Pick a rack for one job and submit it there.

        Returns the federation handle immediately; for a cross-rack
        placement the rack-level submission happens after the simulated
        dataset fetch, so ``routed.admitted`` fills in later on the
        shared clock.
        """
        routed = RoutedJob(name=name, session=session)
        self.jobs.append(routed)
        candidates = self.registry.routable_racks()
        if not candidates:
            return self._shed(routed, reason="no_routable_rack")
        # Racks the registry derives as DEGRADED (fail-slow members)
        # stay routable, but only as a last resort: spill around them
        # while any fully-UP rack can take the job.
        fresh = [
            r for r in candidates
            if self.registry.state(r.name) is RackState.UP
        ]
        if fresh and len(fresh) < len(candidates):
            candidates = fresh
            self.stats.degraded_avoided += 1
            self.obs.counter("fed.degraded_avoided").inc()
        now = self.engine.now
        resident = self.resident_racks(session)
        rack = self.policy.choose(candidates, now, session, resident)
        if self.overload.is_overloaded(rack):
            relief = [
                r for r in candidates
                if r is not rack and not self.overload.is_overloaded(r)
            ]
            if not relief:
                return self._shed(routed, reason="all_overloaded")
            spill_to = min(relief, key=lambda r: (r.load_score(now), r.name))
            routed.spilled = True
            self.stats.spills += 1
            self.obs.counter("fed.spills").inc()
            self.obs.event(
                "federation", "spill", job=name, wanted=rack.name,
                got=spill_to.name, reason=self.overload.reason(rack),
            )
            rack = spill_to
        routed.rack = rack.name
        self.stats.routed += 1
        self.obs.counter("fed.routed").inc()
        self.obs.counter(f"fed.routed/{rack.name}").inc()
        need = self._fetch_bytes(session, rack.name)
        if need > 0:
            self._start_fetch(routed, rack, source, tenant, priority, cost,
                              session, need)
        else:
            routed.admitted = rack.driver.submit_job(
                name, source, tenant=tenant, priority=priority, cost=cost,
            )
        return routed

    def _shed(self, routed: RoutedJob, reason: str) -> RoutedJob:
        routed.shed = True
        self.stats.sheds += 1
        self.obs.counter("fed.sheds").inc()
        self.obs.event("federation", "shed", job=routed.name, reason=reason)
        return routed

    def _fetch_bytes(
        self, session: typing.Optional[str], rack_name: str
    ) -> float:
        """Bytes the destination rack must pull before it can start."""
        if session is None or session not in self._residency:
            return 0.0
        if rack_name in self._residency[session]:
            return 0.0
        return self._dataset_bytes.get(session, 0.0)

    def _start_fetch(
        self, routed: RoutedJob, rack: Rack, source, tenant, priority,
        cost: float, session: str, nbytes: float,
    ) -> None:
        self._fetches_in_flight += 1
        self.stats.cross_rack_fetches += 1
        self.stats.cross_rack_bytes += nbytes
        self.obs.counter("fed.cross_rack_fetches").inc()
        self.obs.counter("fed.cross_rack_bytes").inc(nbytes)
        delay = (
            self.interrack_latency_ns + nbytes / self.interrack_bandwidth
        )
        self.obs.event(
            "federation", "cross_rack_fetch", job=routed.name,
            session=session, rack=rack.name, bytes=nbytes, delay=delay,
        )

        def fetch():
            yield self.engine.timeout(delay)
            # Fetch-once: the destination now holds a replica, so this
            # session's next jobs routed here start immediately.
            self._residency[session].add(rack.name)
            routed.fetched_bytes = nbytes
            routed.admitted = rack.driver.submit_job(
                routed.name, source, tenant=tenant, priority=priority,
                cost=cost,
            )
            self._fetches_in_flight -= 1

        self.engine.process(fetch(), name=f"federation:fetch:{routed.name}")


__all__ = [
    "AffinityPolicy",
    "LeastLoadedPolicy",
    "POLICIES",
    "PrefixAffinityPolicy",
    "RoundRobinPolicy",
    "RoutedJob",
    "Router",
    "RouterStats",
]
