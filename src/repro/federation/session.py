"""Build and drive a federation: one engine, N racks, one front door.

:func:`federate` stands up N independent rack stacks — each with its
own cluster, runtime system, QoS admission driver, and health monitor —
on **one shared simulation clock**, registers them with a
:class:`~repro.federation.registry.RackRegistry`, and fronts them with
a :class:`~repro.federation.router.Router`.  The returned
:class:`FederatedSession` mirrors the single-rack
:class:`repro.api.Session` API (``register_tenant`` / ``submit`` /
``run`` / ``run_trace`` / ``dashboard``) so code written against one
rack scales to N by changing the connect call::

    import repro.api as api

    fed = api.connect("pooled-rack", racks=3, routing="affinity")
    fed.register_tenant("web", weight=2.0)
    fed.pin_dataset("user-7", "rack0", nbytes=64 * 2**20)
    handle = fed.submit(job, tenant="web", session="user-7")
    fed.run()

Elasticity: :meth:`FederatedSession.add_rack` joins a new rack mid-run
(existing tenants are replayed onto it); :meth:`FederatedSession.
drain_rack` removes one *without job-level failures* — routing stops
immediately, in-flight work (including cross-rack fetches already
destined there) completes, then each node goes through the health
monitor's graceful DRAINING machinery before the rack leaves the
registry.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.federation.overload import OverloadDetector
from repro.federation.rack import Rack
from repro.federation.registry import RackRegistry
from repro.federation.router import RoutedJob, Router
from repro.hardware.cluster import Cluster
from repro.obs import Observability
from repro.runtime.admission import RackDriver
from repro.runtime.health import HealthMonitor, HealthState
from repro.runtime.rts import JobStats, RuntimeSystem
from repro.runtime.tenancy import PriorityClass, TenantQuota
from repro.sim.engine import Engine
from repro.sim.trace import TraceLog

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dataflow.graph import Job


def federate(
    racks: int = 2,
    cluster_preset: str = "pooled-rack",
    *,
    seed: int = 0,
    routing: typing.Union[str, object] = "round_robin",
    scheduler=None,
    placement=None,
    recovery=None,
    heartbeat_ns: float = 50_000.0,
    degraded_below: float = 0.7,
    down_below: float = 0.3,
    queue_watermark: int = 8,
    burn_watermark: float = 2.0,
    interrack_bandwidth: float = 5.0,
    interrack_latency_ns: float = 2_000.0,
    detection_delay_ns: float = 10_000.0,
    window_ns: float = 500_000.0,
    **rack_options,
) -> "FederatedSession":
    """Stand up ``racks`` rack stacks on one clock behind a router.

    Rack ``i`` is ``cluster_preset`` seeded with ``seed + i`` and named
    ``rack<i>``.  ``scheduler``/``placement``/``recovery`` forward to
    every rack's :class:`~repro.runtime.rts.RuntimeSystem`; leftover
    keyword arguments forward to each rack's
    :class:`~repro.runtime.admission.RackDriver` (``max_concurrent``,
    ``policy``, ...).
    """
    if racks < 1:
        raise ValueError(f"need at least one rack, got {racks}")
    engine = Engine()
    obs = Observability(trace=TraceLog(), engine=engine)
    registry = RackRegistry(
        engine, obs, heartbeat_ns=heartbeat_ns,
        degraded_below=degraded_below, down_below=down_below,
    )
    router = Router(
        registry, obs, policy=routing,
        overload=OverloadDetector(
            queue_watermark=queue_watermark, burn_watermark=burn_watermark,
        ),
        interrack_bandwidth=interrack_bandwidth,
        interrack_latency_ns=interrack_latency_ns,
    )

    def rack_factory(name: str, rack_seed: int) -> Rack:
        cluster = Cluster.preset(cluster_preset, seed=rack_seed, engine=engine)
        monitor = HealthMonitor(
            cluster, detection_delay_ns=detection_delay_ns,
        )
        rts = RuntimeSystem(
            cluster, scheduler=scheduler, placement=placement,
            recovery=recovery,
        )
        driver = RackDriver(rts, **rack_options)
        return Rack(name, cluster, rts, driver, monitor, window_ns=window_ns)

    session = FederatedSession(engine, registry, router, obs, rack_factory)
    for i in range(racks):
        session.add_rack(name=f"rack{i}", seed=seed + i)
    return session


class FederatedSession:
    """N connected racks behind one router, driven on one clock."""

    def __init__(
        self,
        engine: Engine,
        registry: RackRegistry,
        router: Router,
        obs: Observability,
        rack_factory: typing.Callable[[str, int], Rack],
    ):
        self.engine = engine
        self.registry = registry
        self.router = router
        self.obs = obs
        self._rack_factory = rack_factory
        #: Tenant registrations to replay onto racks that join later.
        self._tenant_specs: typing.Dict[str, dict] = {}
        #: Every rack ever built — deregistered racks keep simulating
        #: (their reboots, repairs) and still count for quiescence.
        self._all_racks: typing.List[Rack] = []
        self._active_drains = 0
        self._next_seed = 0
        #: True once :meth:`close` has finalized the run.
        self.closed = False
        #: The end-of-run dashboard rendered by :meth:`close`.
        self.final_dashboard: typing.Optional[str] = None

    # -- membership --------------------------------------------------------

    @property
    def racks(self) -> typing.List[Rack]:
        """Currently registered racks, in name order."""
        return self.registry.racks()

    def rack(self, name: str) -> Rack:
        """One registered rack by name."""
        return self.registry.get(name)

    def add_rack(
        self, name: typing.Optional[str] = None,
        seed: typing.Optional[int] = None,
    ) -> Rack:
        """Build and join one more rack (elastic scale-out).

        Already-registered tenants (and their SLO policies) are
        replayed onto the newcomer so routing there is transparent.
        """
        if name is None:
            name = f"rack{len(self._all_racks)}"
        if seed is None:
            seed = self._next_seed
        self._next_seed = max(self._next_seed, seed + 1)
        rack = self._rack_factory(name, seed)
        for tenant_name, spec in self._tenant_specs.items():
            self._register_tenant_on(rack, tenant_name, spec)
        self.registry.register(rack)
        self._all_racks.append(rack)
        return rack

    def drain_rack(self, name: str):
        """Elastically remove a rack with zero job-level failures.

        Routing to the rack stops immediately (it turns DRAINING in the
        registry); queued and running jobs — including cross-rack
        fetches already destined there — finish normally; then every
        node goes through the health monitor's graceful drain
        (``NODE_REBOOT`` once idle) and the rack leaves the registry.

        Returns an :class:`~repro.sim.events.Event` that succeeds with
        the rack name once the drain completes; drive the clock (e.g.
        the surrounding ``run_trace``) to make progress.
        """
        rack = self.registry.get(name)
        self.registry.begin_drain(name)
        self._active_drains += 1
        done = self.engine.event()
        poll = self.registry.heartbeat_ns
        devices = list(rack.cluster.memory) + list(rack.cluster.compute)

        def drain():
            # Phase 1: let routed work land and finish.  Covers jobs in
            # the rack's admission queues, running jobs, and fetches in
            # flight toward this rack (they submit on arrival).
            while not rack.idle() or self._pending_for(name):
                yield self.engine.timeout(poll)
            # Phase 2: gracefully power-cycle each node through the
            # health monitor (reboots fire once nodes are idle).
            for node in sorted(rack.cluster.nodes):
                rack.monitor.begin_drain(node)
            while any(
                rack.monitor.state(d) is HealthState.DRAINING
                for d in devices
            ):
                yield self.engine.timeout(poll)
            # Phase 3: forget the rack.
            self.registry.deregister(name)
            self.registry.stats.drains_completed += 1
            self._active_drains -= 1
            self.obs.event("federation", "drain_complete", rack=name)
            done.succeed(name)

        self.engine.process(drain(), name=f"federation:drain:{name}")
        return done

    def _pending_for(self, rack_name: str) -> bool:
        """Any routed job bound for this rack not yet landed there?"""
        return any(
            job.rack == rack_name and not job.accounted
            for job in self.router.jobs
        )

    # -- tenancy -----------------------------------------------------------

    def register_tenant(
        self,
        name: str,
        *,
        weight: float = 1.0,
        priority: typing.Union[PriorityClass, str, int] = PriorityClass.BATCH,
        quota: typing.Optional[TenantQuota] = None,
        slo_target_ns: typing.Optional[float] = None,
        slo_objective: float = 0.99,
    ) -> None:
        """Register a tenant on every rack (current and future)."""
        spec = dict(
            weight=weight, priority=priority, quota=quota,
            slo_target_ns=slo_target_ns, slo_objective=slo_objective,
        )
        self._tenant_specs[name] = spec
        for rack in self._all_racks:
            self._register_tenant_on(rack, name, spec)

    @staticmethod
    def _register_tenant_on(rack: Rack, name: str, spec: dict) -> None:
        rack.driver.tenants.register(
            name, weight=spec["weight"], priority=spec["priority"],
            quota=spec["quota"],
        )
        if spec["slo_target_ns"] is not None:
            rack.obs.slo.set_policy(
                f"tenant:{name}", spec["slo_target_ns"],
                objective=spec["slo_objective"],
            )
            # Per-rack burn-rate rule: the alert names which rack is
            # burning this tenant's budget, not just that someone is.
            from repro.obs.telemetry import BurnRateRule

            window = rack.obs.telemetry.window_ns
            rack.obs.telemetry.alerts.add_rule(BurnRateRule(
                f"tenant:{name}", fast_ns=5 * window, slow_ns=30 * window,
                scope=f"rack {rack.name}",
            ))

    # -- data placement ----------------------------------------------------

    def pin_dataset(self, key: str, rack_name: str, nbytes: float) -> None:
        """Declare ``key``'s hot data resident on ``rack_name`` (the
        affinity policy routes ``session=key`` jobs there)."""
        self.router.pin_dataset(key, rack_name, nbytes)

    # -- submission / execution --------------------------------------------

    def submit(
        self,
        job: "Job",
        *,
        tenant: typing.Optional[str] = None,
        priority: typing.Union[PriorityClass, str, int, None] = None,
        cost: float = 1.0,
        session: typing.Optional[str] = None,
    ) -> RoutedJob:
        """Route one job through the federation front door.

        ``session`` is the affinity key: jobs sharing it share a pinned
        dataset and (under the affinity policy) a preferred rack.
        """
        return self.router.route(
            job.name, job, tenant=tenant, priority=priority, cost=cost,
            session=session,
        )

    def submit_app(
        self,
        app: str,
        spec: typing.Optional[typing.Mapping[str, object]] = None,
        *,
        tenant: typing.Optional[str] = None,
        priority: typing.Union[PriorityClass, str, int, None] = None,
        cost: float = 1.0,
        session: typing.Optional[str] = None,
        **spec_kwargs,
    ) -> RoutedJob:
        """Route one app-class job by name (the federated twin of
        :meth:`repro.api.Session.submit_app`).

        ``app`` names a class from :data:`repro.apps.APP_BUILDERS`;
        ``spec``/keyword arguments forward to its builder; ``session``
        is the affinity key as in :meth:`submit`.
        """
        from repro.apps import build_app_job

        merged = dict(spec or {})
        merged.update(spec_kwargs)
        job = build_app_job(app, **merged)
        return self.submit(
            job, tenant=tenant, priority=priority, cost=cost,
            session=session,
        )

    def run(
        self,
        *jobs: "Job",
        tenant: typing.Optional[str] = None,
        priority: typing.Union[PriorityClass, str, int, None] = None,
        session: typing.Optional[str] = None,
    ):
        """Submit ``jobs`` (if any) and drive the federation to
        quiescence.

        Returns one :class:`~repro.runtime.rts.JobStats` for a single
        job, a list for several (``None`` for shed jobs), or the
        federation report when called with no arguments (drain mode).
        """
        handles = [
            self.submit(job, tenant=tenant, priority=priority,
                        session=session)
            for job in jobs
        ]
        self._drive()
        if not jobs:
            return self.report()
        results = [self._result(handle) for handle in handles]
        return results[0] if len(jobs) == 1 else results

    def run_trace(self, arrivals) -> typing.List[RoutedJob]:
        """Run ``(time, name, job_factory[, tenant[, priority
        [, session]]])`` arrivals through the router to completion.

        Returns the federation-level handles in arrival order.
        """
        ordered = sorted(arrivals, key=lambda a: a[0])
        handles: typing.List[RoutedJob] = []

        def arrival_process():
            for arrival in ordered:
                time, name, factory = arrival[0], arrival[1], arrival[2]
                tenant = arrival[3] if len(arrival) > 3 else None
                priority = arrival[4] if len(arrival) > 4 else None
                session = arrival[5] if len(arrival) > 5 else None
                if time > self.engine.now:
                    yield self.engine.timeout(time - self.engine.now)
                handles.append(self.router.route(
                    name, factory, tenant=tenant, priority=priority,
                    session=session,
                ))

        self.engine.process(arrival_process(), name="federation:arrivals")
        self._drive(expect_jobs=len(ordered))
        return handles

    def result(self, handle: RoutedJob) -> typing.Optional[JobStats]:
        """Finished stats for a ``submit``/``submit_app`` handle.

        ``None`` for a job shed at the front door or by its rack;
        raises the job's error if it failed on-rack.
        """
        return self._result(handle)

    def _result(self, handle: RoutedJob) -> typing.Optional[JobStats]:
        """Finished stats for a routed job (None if shed anywhere)."""
        if handle.shed:
            return None
        admitted = handle.admitted
        if admitted is None:
            raise RuntimeError(
                f"job {handle.name!r} never landed on rack "
                f"{handle.rack!r}; was the clock driven to quiescence?"
            )
        if admitted.shed:
            return None
        execution = admitted.execution
        if execution is None:
            raise RuntimeError(
                f"job {handle.name!r} was never admitted on rack "
                f"{handle.rack!r} (queued behind a quota?)"
            )
        if execution.stats.error is not None:
            raise execution.stats.error
        return execution.stats

    # -- the drive loop ----------------------------------------------------

    def _drained(self, expect_jobs: typing.Optional[int] = None) -> bool:
        if self._active_drains:
            return False
        if self.router.fetches_in_flight:
            return False
        if expect_jobs is not None and len(self.router.jobs) < expect_jobs:
            return False
        if not all(job.accounted for job in self.router.jobs):
            return False
        return all(rack.idle() for rack in self._all_racks)

    def _drive(self, expect_jobs: typing.Optional[int] = None) -> None:
        """Advance the shared clock until the federation is quiescent.

        The registry heartbeat runs forever, so ``engine.run()`` alone
        would never return; instead we run in heartbeat-sized windows
        until every routed job is accounted for and every rack is idle,
        then kill the heartbeat and drain the remaining schedule
        (node reboots, repairs)."""
        self.registry.start_heartbeat()
        step = self.registry.heartbeat_ns
        while not self._drained(expect_jobs):
            self.engine.run(until=self.engine.now + step)
        self.registry.stop_heartbeat()
        self.engine.run()

    # -- reporting ---------------------------------------------------------

    @property
    def jobs(self) -> typing.List[RoutedJob]:
        """Every job routed so far, in submission order."""
        return self.router.jobs

    def job_failures(self) -> typing.List[RoutedJob]:
        """Routed jobs that did not complete successfully: shed at the
        front door, shed by a rack, or failed during execution."""
        failures = []
        for job in self.router.jobs:
            if job.shed:
                failures.append(job)
                continue
            admitted = job.admitted
            if admitted is None or admitted.shed or not admitted.completed:
                failures.append(job)
        return failures

    def report(self) -> dict:
        """Federation-level accounting: router + per-rack summaries."""
        racks = {}
        for rack in self._all_racks:
            stats = rack.driver.stats
            racks[rack.name] = {
                "registered": rack.name in self.registry,
                "state": (
                    self.registry.state(rack.name).value
                    if rack.name in self.registry else "removed"
                ),
                "jobs": len(stats.jobs),
                "completed": stats.completed,
                "shed": stats.shed,
                "mean_queue_wait": stats.mean_queue_wait,
                "health": rack.health_fraction(),
            }
        return {
            "router": dataclasses.asdict(self.router.stats),
            "registry": dataclasses.asdict(self.registry.stats),
            "racks": racks,
        }

    def tenant_report(self) -> typing.Dict[str, typing.Dict[str, dict]]:
        """Per-rack tenant accounting (rack name -> tenant report)."""
        return {
            rack.name: rack.driver.tenant_report()
            for rack in self._all_racks
        }

    def dashboard(self) -> str:
        """The federation's text dashboard (routing + per-rack gauges)."""
        from repro.obs.dashboard import render_dashboard

        return render_dashboard(self.obs.data())

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Finalize the run on every rack and the federation hub.

        Each rack's telemetry hub takes its final poll and closes its
        open alert spans, then the federation-level hub does the same;
        the end-of-run dashboard lands on :attr:`final_dashboard`.
        Idempotent.
        """
        if self.closed:
            return
        for rack in self._all_racks:
            rack.obs.telemetry.finalize(self.engine.now)
        self.obs.telemetry.finalize(self.engine.now)
        self.final_dashboard = self.dashboard()
        self.closed = True

    def __enter__(self) -> "FederatedSession":
        """``with api.connect(..., racks=N) as fed:`` support."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Close the session when the ``with`` block ends."""
        self.close()


__all__ = ["FederatedSession", "federate"]
