"""The metrics half of the observability substrate.

Counters, gauges, time-weighted histograms, and bounded utilization
timelines, held in a :class:`MetricsRegistry` so exporters and the text
dashboard can walk everything a run recorded.  All metric types are
bounded in memory by construction: counters/gauges are scalars,
histograms accumulate per-bucket elapsed time, and timelines keep a ring
of samples (plus exact time-weighted aggregates via
:class:`~repro.sim.trace.MetricRecorder`).
"""

from __future__ import annotations

import collections
import typing

from repro.sim.trace import MetricRecorder

#: Default histogram bucket upper bounds (open-ended final bucket).
DEFAULT_BOUNDS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)

#: Log-scale latency bucket bounds in nanoseconds: 1µs .. ~17.6min in
#: powers of two (open-ended final bucket).  Wide enough for anything a
#: simulated job can take, cheap enough to keep per workload.
LATENCY_BOUNDS_NS = tuple(float(2 ** k) for k in range(10, 41))


class Counter:
    """A monotonically increasing scalar."""

    __slots__ = ("name", "value")

    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        self.value += n

    def snapshot(self) -> dict:
        return {"type": self.kind, "value": self.value}


class Gauge:
    """A point-in-time scalar, set directly or read through a callback."""

    __slots__ = ("name", "_value", "fn")

    kind = "gauge"

    def __init__(self, name: str, fn: typing.Optional[typing.Callable[[], float]] = None):
        self.name = name
        self._value = 0.0
        self.fn = fn

    def set(self, value: float) -> None:
        self._value = float(value)

    @property
    def value(self) -> float:
        if self.fn is not None:
            return float(self.fn())
        return self._value

    def snapshot(self) -> dict:
        return {"type": self.kind, "value": self.value}


class TimeWeightedHistogram:
    """How long a piecewise-constant signal dwelt in each level bucket.

    ``observe(time, level)`` records a level change; the histogram
    accumulates the *time spent* at each level band rather than a count
    of observations — the right statistic for queue depths and
    utilization signals in a discrete-event world.
    """

    __slots__ = ("name", "bounds", "elapsed_in", "_level", "_last_time", "recorder")

    kind = "histogram"

    def __init__(
        self,
        name: str,
        bounds: typing.Sequence[float] = DEFAULT_BOUNDS,
        start_time: float = 0.0,
    ):
        if list(bounds) != sorted(bounds):
            raise ValueError(f"histogram bounds must be ascending: {bounds}")
        self.name = name
        self.bounds = tuple(bounds)
        #: elapsed ns per bucket; index len(bounds) is the overflow bucket.
        self.elapsed_in = [0.0] * (len(self.bounds) + 1)
        self._level = 0.0
        self._last_time = float(start_time)
        self.recorder = MetricRecorder(start_time=start_time)

    def _bucket(self, level: float) -> int:
        for i, bound in enumerate(self.bounds):
            if level <= bound:
                return i
        return len(self.bounds)

    def observe(self, time: float, level: float) -> None:
        """The signal changes to ``level`` at ``time``."""
        dt = time - self._last_time
        if dt < 0:
            raise ValueError(f"time went backwards: {time} < {self._last_time}")
        self.elapsed_in[self._bucket(self._level)] += dt
        self._last_time = time
        self._level = float(level)
        self.recorder.record(time, level)

    def adjust(self, time: float, delta: float) -> None:
        self.observe(time, self._level + delta)

    @property
    def level(self) -> float:
        return self._level

    def time_in_buckets(self) -> typing.Dict[str, float]:
        """``{"<=bound": elapsed, ..., ">last": elapsed}``."""
        out = {}
        for bound, elapsed in zip(self.bounds, self.elapsed_in):
            out[f"<={bound:g}"] = elapsed
        out[f">{self.bounds[-1]:g}"] = self.elapsed_in[-1]
        return out

    def quantile(self, q: float) -> float:
        """The level below which the signal dwelt for a ``q`` fraction of
        observed time, linearly interpolated within its bucket.

        Bucket ``i`` spans ``(bounds[i-1], bounds[i]]``; the first bucket
        starts at the lowest level ever recorded and the overflow bucket
        ends at the highest.  With no elapsed time yet, returns the
        current level.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        total = sum(self.elapsed_in)
        if total <= 0.0:
            return self._level
        floor = min(self.recorder.minimum, self.bounds[0])
        ceiling = max(self.recorder.maximum, self.bounds[-1])
        target = q * total
        cumulative = 0.0
        for i, elapsed in enumerate(self.elapsed_in):
            if elapsed <= 0.0:
                continue
            lo = floor if i == 0 else self.bounds[i - 1]
            hi = self.bounds[i] if i < len(self.bounds) else ceiling
            if cumulative + elapsed >= target:
                frac = (target - cumulative) / elapsed
                return lo + (hi - lo) * max(0.0, min(1.0, frac))
            cumulative += elapsed
        return ceiling

    def snapshot(self) -> dict:
        return {
            "type": self.kind,
            "buckets": self.time_in_buckets(),
            "mean": self.recorder.time_weighted_mean(),
            "max": self.recorder.maximum,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class LatencyHistogram:
    """Count-based histogram of observed durations (log-scale buckets).

    Unlike :class:`TimeWeightedHistogram` (which tracks how long a
    *signal* dwelt at each level), this counts discrete observations —
    the right statistic for per-job/per-request latencies — and answers
    ``quantile(q)`` by linear interpolation within the winning bucket.
    """

    __slots__ = ("name", "bounds", "counts", "total", "_sum", "_min", "_max")

    kind = "latency"

    def __init__(self, name: str,
                 bounds: typing.Sequence[float] = LATENCY_BOUNDS_NS):
        if list(bounds) != sorted(bounds):
            raise ValueError(f"histogram bounds must be ascending: {bounds}")
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        #: observations per bucket; index len(bounds) is the overflow.
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = 0.0

    def observe(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"latency cannot be negative: {value}")
        lo, hi = 0, len(self.bounds)
        while lo < hi:  # first bucket whose bound >= value
            mid = (lo + hi) // 2
            if self.bounds[mid] < value:
                lo = mid + 1
            else:
                hi = mid
        self.counts[lo] += 1
        self.total += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    @property
    def mean(self) -> float:
        return self._sum / self.total if self.total else 0.0

    @property
    def minimum(self) -> float:
        return self._min if self.total else 0.0

    @property
    def maximum(self) -> float:
        return self._max

    def quantile(self, q: float) -> float:
        """The latency below which a ``q`` fraction of observations fall,
        linearly interpolated within its bucket (clamped to the observed
        min/max so tiny samples do not report bucket-edge artifacts)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.total == 0:
            return 0.0
        target = q * self.total
        cumulative = 0
        for i, n in enumerate(self.counts):
            if n == 0:
                continue
            if cumulative + n >= target:
                lo = self.bounds[i - 1] if i > 0 else min(self._min, self.bounds[0])
                hi = self.bounds[i] if i < len(self.bounds) else self._max
                frac = (target - cumulative) / n
                value = lo + (hi - lo) * max(0.0, min(1.0, frac))
                return max(self._min, min(self._max, value))
            cumulative += n
        return self._max

    def snapshot(self) -> dict:
        return {
            "type": self.kind,
            "count": self.total,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class Timeline:
    """A bounded time-series of a piecewise-constant signal.

    Keeps the last ``max_samples`` ``(time, level)`` change points in a
    ring (older ones are dropped and counted) *and* exact time-weighted
    aggregates over the whole run via :class:`MetricRecorder` — so the
    dashboard can draw a recent-history sparkline while reporting exact
    lifetime mean/max utilization.
    """

    __slots__ = ("name", "samples", "dropped", "recorder")

    kind = "timeline"

    def __init__(self, name: str, max_samples: int = 1024, start_time: float = 0.0):
        if max_samples < 2:
            raise ValueError("a timeline needs at least 2 samples of history")
        self.name = name
        self.samples: typing.Deque[typing.Tuple[float, float]] = collections.deque(
            maxlen=max_samples
        )
        self.dropped = 0
        self.recorder = MetricRecorder(start_time=start_time)

    def record(self, time: float, level: float) -> None:
        """The signal changes to ``level`` at ``time``."""
        self.recorder.record(time, level)
        if len(self.samples) == self.samples.maxlen:
            self.dropped += 1
        self.samples.append((time, float(level)))

    def adjust(self, time: float, delta: float) -> None:
        """Shift the signal by ``delta`` at ``time`` (occupancy counting)."""
        self.record(time, self.recorder.level + delta)

    @property
    def level(self) -> float:
        return self.recorder.level

    def mean(self, until: typing.Optional[float] = None) -> float:
        return self.recorder.time_weighted_mean(until)

    @property
    def maximum(self) -> float:
        return self.recorder.maximum

    def snapshot(self) -> dict:
        return {
            "type": self.kind,
            "samples": [[t, v] for t, v in self.samples],
            "dropped": self.dropped,
            "mean": self.recorder.time_weighted_mean(),
            "max": self.recorder.maximum,
            "level": self.recorder.level,
        }


class MetricsRegistry:
    """Name → metric instrument map with get-or-create accessors.

    Subsystems that already keep their own counters (handover stats,
    placement counters, link byte counts, ...) register a *collector* —
    a zero-argument callable yielding ``(name, value)`` pairs — instead
    of double-counting on the hot path; collectors are evaluated only at
    snapshot/export time.
    """

    def __init__(self):
        self._metrics: typing.Dict[str, object] = {}
        self._collectors: typing.List[typing.Callable] = []

    def _get(self, name: str, factory, kind) -> object:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = factory()
            return metric
        if metric.kind != kind:
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"requested {kind}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, lambda: Counter(name), "counter")

    def gauge(self, name: str, fn=None) -> Gauge:
        gauge = self._get(name, lambda: Gauge(name, fn), "gauge")
        if fn is not None:
            gauge.fn = fn
        return gauge

    def histogram(self, name: str, bounds=DEFAULT_BOUNDS, start_time: float = 0.0):
        return self._get(
            name, lambda: TimeWeightedHistogram(name, bounds, start_time),
            "histogram",
        )

    def timeline(self, name: str, max_samples: int = 1024, start_time: float = 0.0):
        return self._get(
            name, lambda: Timeline(name, max_samples, start_time), "timeline"
        )

    def latency(self, name: str, bounds=LATENCY_BOUNDS_NS) -> LatencyHistogram:
        return self._get(
            name, lambda: LatencyHistogram(name, bounds), "latency"
        )

    def add_collector(self, fn: typing.Callable) -> None:
        """Register ``fn() -> iterable[(name, value)]`` read at snapshot."""
        self._collectors.append(fn)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __getitem__(self, name: str):
        return self._metrics[name]

    def names(self) -> typing.List[str]:
        return sorted(self._metrics)

    # -- snapshot / report -------------------------------------------------

    def snapshot(self) -> typing.Dict[str, dict]:
        """Every metric (and collector reading) as plain data."""
        out = {name: metric.snapshot() for name, metric in self._metrics.items()}
        for collector in self._collectors:
            for name, value in collector():
                out[name] = {"type": "gauge", "value": float(value)}
        return out

    def report(self, title: str = "metrics") -> str:
        """All scalar metrics as an aligned text table."""
        # Deferred: repro.metrics pulls in the cluster (import cycle).
        from repro.metrics.report import Table

        table = Table(["metric", "kind", "value"], title=title)
        for name, snap in sorted(self.snapshot().items()):
            if snap["type"] in ("counter", "gauge"):
                value = f"{snap['value']:g}"
            elif snap["type"] == "timeline":
                value = (f"mean={snap['mean']:.3g} max={snap['max']:g} "
                         f"now={snap['level']:g}")
            elif snap["type"] == "latency":
                value = (f"n={snap['count']} p50={snap['p50']:.3g} "
                         f"p95={snap['p95']:.3g} p99={snap['p99']:.3g}")
            else:  # histogram
                value = (f"mean={snap['mean']:.3g} max={snap['max']:g} "
                         f"p95={snap['p95']:.3g}")
            table.add_row(name, snap["type"], value)
        return table.render()
