"""SLO tracking: per-workload latency distributions with error budgets.

A *workload* is a stream of job completions sharing a name (everything
submitted as ``training``, say).  For each workload the tracker keeps a
count-based log-scale :class:`~repro.obs.metrics.LatencyHistogram`
(p50/p95/p99 via linear interpolation within buckets) and — once a
:class:`SloPolicy` is attached — classic error-budget accounting:

* an observation *misses* when the job failed or its latency exceeds
  the policy target;
* the **budget** is the tolerable miss fraction, ``1 - objective``;
* **burn rate** is ``miss_fraction / budget``: 1.0 means misses arrive
  exactly as fast as the budget allows, >1.0 means the budget is being
  consumed early (the standard multi-window burn-rate alert input);
* **budget remaining** is the fraction of the budget still unspent
  (negative once the SLO is blown).

The tracker is registered on :class:`~repro.obs.Observability` as
``obs.slo``; the RTS records every job completion, and the admission
layer records end-to-end (arrival → finish) latencies under
``<workload>@e2e``.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.obs.metrics import LATENCY_BOUNDS_NS, LatencyHistogram


@dataclasses.dataclass(frozen=True)
class SloPolicy:
    """A latency objective: ``objective`` of jobs under ``target_ns``."""

    target_ns: float
    objective: float = 0.99

    def __post_init__(self):
        if self.target_ns <= 0:
            raise ValueError(f"SLO target must be positive: {self.target_ns}")
        if not 0.0 < self.objective < 1.0:
            raise ValueError(
                f"SLO objective must be in (0, 1): {self.objective}"
            )

    @property
    def budget(self) -> float:
        """The tolerable miss fraction."""
        return 1.0 - self.objective


class WorkloadSlo:
    """One workload's latency distribution and budget state."""

    __slots__ = ("workload", "policy", "histogram", "total", "failures",
                 "missed", "worst_ns")

    def __init__(self, workload: str,
                 policy: typing.Optional[SloPolicy] = None):
        self.workload = workload
        self.policy = policy
        self.histogram = LatencyHistogram(f"slo.latency/{workload}")
        self.total = 0
        self.failures = 0
        self.missed = 0
        self.worst_ns = 0.0

    def record(self, latency_ns: float, ok: bool = True) -> None:
        self.total += 1
        self.histogram.observe(latency_ns)
        if latency_ns > self.worst_ns:
            self.worst_ns = latency_ns
        if not ok:
            self.failures += 1
        if self.policy is not None and (
            not ok or latency_ns > self.policy.target_ns
        ):
            self.missed += 1

    @property
    def miss_fraction(self) -> float:
        return self.missed / self.total if self.total else 0.0

    @property
    def burn_rate(self) -> typing.Optional[float]:
        if self.policy is None:
            return None
        return self.miss_fraction / self.policy.budget

    @property
    def budget_remaining(self) -> typing.Optional[float]:
        if self.policy is None:
            return None
        return 1.0 - self.miss_fraction / self.policy.budget

    def snapshot(self) -> dict:
        snap = {
            "workload": self.workload,
            "total": self.total,
            "failures": self.failures,
            "worst_ns": self.worst_ns,
            "p50": self.histogram.quantile(0.50),
            "p95": self.histogram.quantile(0.95),
            "p99": self.histogram.quantile(0.99),
            "mean": self.histogram.mean,
        }
        if self.policy is not None:
            snap.update({
                "target_ns": self.policy.target_ns,
                "objective": self.policy.objective,
                "missed": self.missed,
                "miss_fraction": self.miss_fraction,
                "burn_rate": self.burn_rate,
                "budget_remaining": self.budget_remaining,
            })
        return snap


class SloTracker:
    """All workloads' SLO state for one run (``obs.slo``)."""

    def __init__(self):
        self.workloads: typing.Dict[str, WorkloadSlo] = {}

    def set_policy(self, workload: str, target_ns: float,
                   objective: float = 0.99) -> WorkloadSlo:
        """Attach (or replace) the latency objective for a workload.

        Misses are classified at record time, so set policies before
        running; observations recorded earlier only feed percentiles.
        """
        state = self._state(workload)
        state.policy = SloPolicy(target_ns=target_ns, objective=objective)
        return state

    def record(self, workload: str, latency_ns: float, ok: bool = True) -> None:
        self._state(workload).record(latency_ns, ok=ok)

    def _state(self, workload: str) -> WorkloadSlo:
        state = self.workloads.get(workload)
        if state is None:
            state = self.workloads[workload] = WorkloadSlo(workload)
        return state

    def __contains__(self, workload: str) -> bool:
        return workload in self.workloads

    def __getitem__(self, workload: str) -> WorkloadSlo:
        return self.workloads[workload]

    def snapshot(self) -> typing.Dict[str, dict]:
        return {
            name: state.snapshot()
            for name, state in sorted(self.workloads.items())
        }


__all__ = ["LATENCY_BOUNDS_NS", "SloPolicy", "SloTracker", "WorkloadSlo"]
