"""SLO tracking: per-workload latency distributions with error budgets.

A *workload* is a stream of job completions sharing a name (everything
submitted as ``training``, say).  For each workload the tracker keeps a
count-based log-scale :class:`~repro.obs.metrics.LatencyHistogram`
(p50/p95/p99 via linear interpolation within buckets) and — once a
:class:`SloPolicy` is attached — classic error-budget accounting:

* an observation *misses* when the job failed or its latency exceeds
  the policy target;
* the **budget** is the tolerable miss fraction, ``1 - objective``;
* **burn rate** is ``miss_fraction / budget``: 1.0 means misses arrive
  exactly as fast as the budget allows, >1.0 means the budget is being
  consumed early (the standard multi-window burn-rate alert input);
* **budget remaining** is the fraction of the budget still unspent
  (negative once the SLO is blown).

The tracker is registered on :class:`~repro.obs.Observability` as
``obs.slo``; the RTS records every job completion, and the admission
layer records end-to-end (arrival → finish) latencies under
``<workload>@e2e``.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.obs.metrics import LATENCY_BOUNDS_NS, LatencyHistogram


@dataclasses.dataclass(frozen=True)
class SloPolicy:
    """A latency objective: ``objective`` of jobs under ``target_ns``."""

    target_ns: float
    objective: float = 0.99

    def __post_init__(self):
        if self.target_ns <= 0:
            raise ValueError(f"SLO target must be positive: {self.target_ns}")
        if not 0.0 < self.objective < 1.0:
            raise ValueError(
                f"SLO objective must be in (0, 1): {self.objective}"
            )

    @property
    def budget(self) -> float:
        """The tolerable miss fraction."""
        return 1.0 - self.objective


class WorkloadSlo:
    """One workload's latency distribution and budget state."""

    __slots__ = ("workload", "policy", "histogram", "total", "failures",
                 "missed", "worst_ns")

    def __init__(self, workload: str,
                 policy: typing.Optional[SloPolicy] = None):
        self.workload = workload
        self.policy = policy
        self.histogram = LatencyHistogram(f"slo.latency/{workload}")
        self.total = 0
        self.failures = 0
        self.missed = 0
        self.worst_ns = 0.0

    def record(self, latency_ns: float, ok: bool = True) -> None:
        self.total += 1
        self.histogram.observe(latency_ns)
        if latency_ns > self.worst_ns:
            self.worst_ns = latency_ns
        if not ok:
            self.failures += 1
        if self.policy is not None and (
            not ok or latency_ns > self.policy.target_ns
        ):
            self.missed += 1

    def retro_classify(self) -> int:
        """Re-derive the miss count from the recorded histogram.

        Called when a policy is attached after observations already
        landed: the exact per-observation latencies are gone, but the
        log-bucket counts bound how many exceeded the target.  Buckets
        entirely above ``target_ns`` count in full; the bucket straddling
        the target contributes a linearly interpolated share (the same
        interpolation the quantile estimator uses).  Failures always
        count as misses.  Returns the new miss count.
        """
        if self.policy is None:
            return self.missed
        target = self.policy.target_ns
        bounds = self.histogram.bounds
        above = 0.0
        for i, n in enumerate(self.histogram.counts):
            if n == 0:
                continue
            lo = bounds[i - 1] if i > 0 else 0.0
            hi = bounds[i] if i < len(bounds) else max(
                self.histogram.maximum, lo
            )
            if lo >= target:
                above += n
            elif hi > target and hi > lo:
                above += n * (hi - target) / (hi - lo)
        # Failures are misses regardless of latency; the histogram share
        # may already include some of them, so take the max rather than
        # the sum to stay a defensible estimate, then clamp to total.
        self.missed = min(self.total, int(round(max(above, self.failures))))
        return self.missed

    @property
    def miss_fraction(self) -> float:
        return self.missed / self.total if self.total else 0.0

    @property
    def burn_rate(self) -> typing.Optional[float]:
        if self.policy is None:
            return None
        return self.miss_fraction / self.policy.budget

    @property
    def budget_remaining(self) -> typing.Optional[float]:
        if self.policy is None:
            return None
        return 1.0 - self.miss_fraction / self.policy.budget

    def snapshot(self) -> dict:
        snap = {
            "workload": self.workload,
            "total": self.total,
            "failures": self.failures,
            "worst_ns": self.worst_ns,
            "p50": self.histogram.quantile(0.50),
            "p95": self.histogram.quantile(0.95),
            "p99": self.histogram.quantile(0.99),
            "mean": self.histogram.mean,
        }
        if self.policy is not None:
            snap.update({
                "target_ns": self.policy.target_ns,
                "objective": self.policy.objective,
                "missed": self.missed,
                "miss_fraction": self.miss_fraction,
                "burn_rate": self.burn_rate,
                "budget_remaining": self.budget_remaining,
            })
        return snap


class SloTracker:
    """All workloads' SLO state for one run (``obs.slo``)."""

    def __init__(self):
        self.workloads: typing.Dict[str, WorkloadSlo] = {}
        #: Optional :class:`~repro.obs.telemetry.TelemetryHub` fed on
        #: every record (set by :class:`~repro.obs.Observability`).
        self.telemetry = None
        #: Workloads whose policy arrived after observations did, and
        #: whose miss count was therefore re-derived from bucket counts
        #: (an estimate, not an exact classification).
        self.retro_classified: typing.Dict[str, int] = {}

    def set_policy(self, workload: str, target_ns: float,
                   objective: float = 0.99) -> WorkloadSlo:
        """Attach (or replace) the latency objective for a workload.

        Misses are classified exactly at record time; when observations
        landed *before* the policy, the miss count is retro-classified
        from the recorded log-bucket histogram (interpolated within the
        bucket straddling the target) so the budget accounting reflects
        the whole run.  Retro-classified workloads are flagged in the
        snapshot and counted under ``telemetry.slo_retro_classified``
        because the derived count is an estimate, not a replay.
        """
        state = self._state(workload)
        state.policy = SloPolicy(target_ns=target_ns, objective=objective)
        if state.total:
            state.retro_classify()
            self.retro_classified[workload] = state.total
            if self.telemetry is not None and self.telemetry.obs is not None:
                self.telemetry.obs.counter(
                    "telemetry.slo_retro_classified"
                ).inc()
        return state

    def record(self, workload: str, latency_ns: float, ok: bool = True) -> None:
        state = self._state(workload)
        state.record(latency_ns, ok=ok)
        if self.telemetry is not None:
            self.telemetry.slo_observation(workload, latency_ns, ok, state)

    def _state(self, workload: str) -> WorkloadSlo:
        state = self.workloads.get(workload)
        if state is None:
            state = self.workloads[workload] = WorkloadSlo(workload)
        return state

    def __contains__(self, workload: str) -> bool:
        return workload in self.workloads

    def __getitem__(self, workload: str) -> WorkloadSlo:
        return self.workloads[workload]

    def snapshot(self) -> typing.Dict[str, dict]:
        out = {}
        for name, state in sorted(self.workloads.items()):
            snap = state.snapshot()
            if name in self.retro_classified:
                snap["retro_classified"] = self.retro_classified[name]
            out[name] = snap
        return out


__all__ = ["LATENCY_BOUNDS_NS", "SloPolicy", "SloTracker", "WorkloadSlo"]
