"""Continuous telemetry: windowed series, burn-rate alerts, sampled hotness.

The rest of :mod:`repro.obs` answers questions *after* a run (critical
paths, lifetime SLO budgets, utilization timelines).  This module is
the *during*-the-run half the capacity-planning and adaptive-tiering
roadmap items need — three primitives, all bounded in memory by
construction and all priced honestly via self-metering:

* :class:`WindowedSeries` folds any signal — discrete samples, a
  piecewise-constant level, or a cumulative counter — into fixed
  sim-time windows with deterministic boundaries (window ``i`` covers
  ``[i*width, (i+1)*width)``; two runs with the same events produce the
  same windows).  Each window keeps count/sum/min/max (plus log-bucket
  counts for in-window percentiles of sampled values); a bounded deque
  of closed windows gives recent history, older windows are dropped and
  counted.
* :class:`AlertEngine` evaluates multi-window SLO **burn-rate** rules
  (:class:`BurnRateRule`: a fast and a slow trailing window must both
  burn above the open threshold; a lower close threshold provides
  hysteresis) over the windowed miss/total series the
  :class:`~repro.obs.slo.SloTracker` feeds on every observation.
  Alert open/close pairs are recorded as ``alert``-category spans and
  counted, so they land in exports and on the dashboard.
* :class:`SampledHotness` tracks per-region and per-device access heat
  from a deterministic 1-in-N sample of accesses, with space-saving
  top-k estimation so memory stays O(k) no matter how many regions a
  run touches.  It is query-compatible with
  :class:`repro.memory.pointers.HotnessTracker` (``record`` /
  ``hotness`` / ``ranked`` / ``forget``), so the tiering layer can
  consume either.

Everything the telemetry layer costs is accounted under
``obs.telemetry.*`` metrics (samples taken, windows retained, wall
seconds spent inside telemetry code, estimated resident bytes), and
``scripts/perf_report.py --check`` gates the end-to-end overhead of an
instrumented run at 1.10x of the uninstrumented one — MIND's lesson
that tracking cost must be priced, applied to the tracker itself.
"""

from __future__ import annotations

import collections
import dataclasses
import time as _time
import typing

from repro.obs.metrics import LATENCY_BOUNDS_NS

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs import Observability
    from repro.obs.slo import WorkloadSlo

#: Default fixed window width (sim ns).  Runs with very different time
#: scales should size this via ``TelemetryHub.configure``.
DEFAULT_WINDOW_NS = 100_000.0
#: Default closed windows retained per series.
DEFAULT_MAX_WINDOWS = 256
#: Nominal resident bytes per retained window (slots + floats); used by
#: the self-metering estimate, deliberately on the generous side.
_WINDOW_NOMINAL_BYTES = 160
_BUCKET_NOMINAL_BYTES = 8

_KINDS = ("sample", "level", "rate")


class _Window:
    """One closed or open aggregation window."""

    __slots__ = ("index", "count", "total", "vmin", "vmax", "weighted",
                 "buckets")

    def __init__(self, index: int, buckets: typing.Optional[int] = None):
        self.index = index
        self.count = 0
        self.total = 0.0
        self.vmin = float("inf")
        self.vmax = float("-inf")
        #: Time-weighted level integral (level kind only).
        self.weighted = 0.0
        self.buckets = [0] * buckets if buckets else None


class WindowedSeries:
    """A bounded fixed-window aggregation of one signal.

    ``kind`` selects the folding semantics:

    * ``"sample"`` — discrete observations (latencies, sizes):
      per-window count, mean, min/max, and — when ``bounds`` is set —
      an in-window log-bucket histogram answering :meth:`quantile`.
    * ``"level"`` — a piecewise-constant signal (queue depth,
      utilization): per-window time-weighted mean and max; dwell time is
      split exactly at window boundaries, so boundaries are
      deterministic functions of sim time alone.
    * ``"rate"`` — deltas of a cumulative counter: per-window sum, with
      ``rate = sum / width``.

    Memory is bounded: at most ``max_windows`` closed windows are
    retained (older ones are dropped and counted in :attr:`dropped`),
    and a far time jump materializes at most ``max_windows`` empty gap
    windows (the rest are counted dropped without being built).
    """

    __slots__ = ("name", "kind", "width", "max_windows", "bounds",
                 "closed", "dropped", "_cur", "_level", "_last_time")

    def __init__(
        self,
        name: str,
        width_ns: float,
        kind: str = "sample",
        max_windows: int = DEFAULT_MAX_WINDOWS,
        bounds: typing.Optional[typing.Sequence[float]] = None,
        start_time: float = 0.0,
    ):
        if width_ns <= 0:
            raise ValueError(f"window width must be positive: {width_ns}")
        if kind not in _KINDS:
            raise ValueError(f"unknown series kind {kind!r}; one of {_KINDS}")
        if max_windows < 1:
            raise ValueError("max_windows must be >= 1")
        self.name = name
        self.kind = kind
        self.width = float(width_ns)
        self.max_windows = max_windows
        self.bounds = tuple(bounds) if bounds is not None else None
        self.closed: typing.Deque[_Window] = collections.deque(
            maxlen=max_windows
        )
        self.dropped = 0
        self._cur: typing.Optional[_Window] = None
        self._level = 0.0
        self._last_time = float(start_time)

    # -- window bookkeeping ----------------------------------------------

    def window_index(self, t: float) -> int:
        """The deterministic window an instant belongs to."""
        return int(t // self.width)

    def _new_window(self, index: int) -> _Window:
        return _Window(index, len(self.bounds) + 1 if self.bounds else None)

    def _close(self, window: _Window) -> None:
        if len(self.closed) == self.closed.maxlen:
            self.dropped += 1
        self.closed.append(window)

    def _roll_to(self, index: int) -> _Window:
        """Make ``index`` the open window, closing/synthesizing the gap.

        Gap windows are synthesized so the retained sequence stays
        contiguous (a per-window rate table must show the zero-traffic
        windows); only the last ``max_windows`` of a huge jump are
        materialized, the rest are counted dropped.
        """
        cur = self._cur
        if cur is not None and cur.index == index:
            return cur
        if cur is not None and index < cur.index:
            raise ValueError(
                f"series {self.name!r}: time went backwards "
                f"(window {index} < open window {cur.index})"
            )
        if cur is not None:
            self._close(cur)
            first_gap = cur.index + 1
        else:
            first_gap = index
        gap = index - first_gap
        if gap > 0:
            skip = max(0, gap - self.max_windows)
            self.dropped += skip
            for i in range(first_gap + skip, index):
                filler = self._new_window(i)
                if self.kind == "level":
                    filler.weighted = self._level * self.width
                    filler.vmin = filler.vmax = self._level
                self._close(filler)
        self._cur = self._new_window(index)
        if self.kind == "level":
            self._cur.vmin = self._cur.vmax = self._level
        return self._cur

    # -- folding ----------------------------------------------------------

    def observe(self, t: float, value: float) -> None:
        """Fold one discrete sample (``sample`` kind)."""
        if self.kind != "sample":
            raise TypeError(f"observe() on a {self.kind!r} series")
        window = self._roll_to(self.window_index(t))
        window.count += 1
        window.total += value
        if value < window.vmin:
            window.vmin = value
        if value > window.vmax:
            window.vmax = value
        if window.buckets is not None:
            window.buckets[self._bucket(value)] += 1

    def add(self, t: float, delta: float) -> None:
        """Fold one counter delta (``rate`` kind)."""
        if self.kind != "rate":
            raise TypeError(f"add() on a {self.kind!r} series")
        window = self._roll_to(self.window_index(t))
        window.count += 1
        window.total += delta
        if delta < window.vmin:
            window.vmin = delta
        if delta > window.vmax:
            window.vmax = delta

    def record_level(self, t: float, level: float) -> None:
        """The signal changes to ``level`` at ``t`` (``level`` kind).

        Dwell time at the previous level is integrated into every window
        between the last change and ``t``, split exactly at window
        boundaries.
        """
        if self.kind != "level":
            raise TypeError(f"record_level() on a {self.kind!r} series")
        if t < self._last_time:
            raise ValueError(
                f"series {self.name!r}: time went backwards "
                f"({t} < {self._last_time})"
            )
        target = self.window_index(t)
        window = self._roll_to(self.window_index(self._last_time))
        cursor = self._last_time
        while window.index < target:
            boundary = (window.index + 1) * self.width
            window.weighted += self._level * (boundary - cursor)
            cursor = boundary
            window = self._roll_to(window.index + 1)
        window.weighted += self._level * (t - cursor)
        self._last_time = t
        self._level = float(level)
        if level < window.vmin:
            window.vmin = level
        if level > window.vmax:
            window.vmax = level
        window.count += 1

    def adjust(self, t: float, delta: float) -> None:
        """Shift a level signal by ``delta`` at ``t``."""
        self.record_level(t, self._level + delta)

    @property
    def level(self) -> float:
        """Current level of a ``level`` series."""
        return self._level

    def _bucket(self, value: float) -> int:
        bounds = self.bounds
        lo, hi = 0, len(bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if bounds[mid] < value:
                lo = mid + 1
            else:
                hi = mid
        return lo

    # -- queries ----------------------------------------------------------

    def windows(self) -> typing.List[_Window]:
        """Retained windows, oldest first, including the open one."""
        out = list(self.closed)
        if self._cur is not None:
            out.append(self._cur)
        return out

    def window_stats(self, window: _Window) -> dict:
        """One window as plain data (shape depends on the series kind)."""
        start = window.index * self.width
        out = {
            "index": window.index,
            "start": start,
            "end": start + self.width,
            "count": window.count,
        }
        if self.kind == "level":
            out["mean"] = window.weighted / self.width
            out["max"] = window.vmax if window.count or window.weighted else 0.0
        else:
            out["total"] = window.total
            out["rate"] = window.total / self.width
            out["mean"] = window.total / window.count if window.count else 0.0
            out["max"] = window.vmax if window.count else 0.0
            out["min"] = window.vmin if window.count else 0.0
            if window.buckets is not None and window.count:
                out["p95"] = self._window_quantile(window, 0.95)
        return out

    def _window_quantile(self, window: _Window, q: float) -> float:
        """Interpolated in-window quantile from the log-bucket counts."""
        target = q * window.count
        cumulative = 0
        bounds = self.bounds
        for i, n in enumerate(window.buckets):
            if n == 0:
                continue
            if cumulative + n >= target:
                lo = bounds[i - 1] if i > 0 else min(window.vmin, bounds[0])
                hi = bounds[i] if i < len(bounds) else window.vmax
                frac = (target - cumulative) / n
                value = lo + (hi - lo) * max(0.0, min(1.0, frac))
                return max(window.vmin, min(window.vmax, value))
            cumulative += n
        return window.vmax

    def sum_over(
        self, since: float, until: float
    ) -> typing.Tuple[float, int]:
        """``(total, count)`` over windows overlapping ``[since, until]``.

        Window-aligned and deterministic: a window contributes iff its
        span intersects the interval.  For ``level`` series the total is
        the time-weighted integral instead.
        """
        total = 0.0
        count = 0
        for window in self.windows():
            start = window.index * self.width
            if start + self.width <= since or start > until:
                continue
            total += window.weighted if self.kind == "level" else window.total
            count += window.count
        return total, count

    def memory_bytes(self) -> int:
        """Estimated resident bytes (self-metering; nominal, not exact)."""
        n = len(self.closed) + (1 if self._cur is not None else 0)
        per = _WINDOW_NOMINAL_BYTES
        if self.bounds is not None:
            per += (len(self.bounds) + 1) * _BUCKET_NOMINAL_BYTES
        return n * per

    def snapshot(self, limit: typing.Optional[int] = None) -> dict:
        """The series as plain data (last ``limit`` windows)."""
        windows = [self.window_stats(w) for w in self.windows()]
        if limit is not None:
            windows = windows[-limit:]
        return {
            "type": "windowed",
            "kind": self.kind,
            "width_ns": self.width,
            "dropped": self.dropped,
            "windows": windows,
        }


# -- burn-rate alerting ----------------------------------------------------


@dataclasses.dataclass(frozen=True)
class BurnRateRule:
    """A multi-window burn-rate alert condition for one SLO workload.

    The alert **opens** when the burn rate over the trailing
    ``fast_ns`` *and* the trailing ``slow_ns`` both exceed
    ``open_above`` (the classic fast+slow pairing: the slow window
    proves it is not a blip, the fast window proves it is still
    happening) with at least ``min_samples`` observations in the fast
    window.  It **closes** — with hysteresis — only once the fast *and*
    slow burns drop to ``close_below`` or lower.
    """

    workload: str
    fast_ns: float
    slow_ns: float
    open_above: float = 2.0
    close_below: float = 1.0
    min_samples: int = 5
    #: Display label (e.g. the tenant or rack the workload belongs to).
    scope: str = ""

    def __post_init__(self):
        if self.fast_ns <= 0 or self.slow_ns <= 0:
            raise ValueError("burn windows must be positive")
        if self.fast_ns > self.slow_ns:
            raise ValueError(
                f"fast window ({self.fast_ns}) must not exceed the slow "
                f"window ({self.slow_ns})"
            )
        if self.close_below > self.open_above:
            raise ValueError(
                "close_below above open_above would open/close every tick"
            )
        if self.min_samples < 1:
            raise ValueError("min_samples must be >= 1")


class Alert:
    """One open (or closed) burn-rate alert."""

    __slots__ = ("workload", "scope", "opened_at", "closed_at", "peak_burn",
                 "open_fast", "open_slow", "span")

    def __init__(self, workload: str, scope: str, opened_at: float,
                 fast: float, slow: float, span=None):
        self.workload = workload
        self.scope = scope
        self.opened_at = opened_at
        self.closed_at: typing.Optional[float] = None
        self.peak_burn = max(fast, slow)
        self.open_fast = fast
        self.open_slow = slow
        self.span = span

    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "scope": self.scope,
            "opened_at": self.opened_at,
            "closed_at": self.closed_at,
            "peak_burn": self.peak_burn,
            "open_fast": self.open_fast,
            "open_slow": self.open_slow,
        }


class AlertEngine:
    """Evaluates burn-rate rules over the hub's windowed SLO series.

    Driven from two directions: every SLO observation re-evaluates its
    own workload's rule (detection delay is bounded by the traffic
    itself), and every hub poll sweeps all rules (so alerts close when
    traffic stops arriving).  Open/close transitions are recorded as
    ``alert``-category spans plus instant events and counters.
    """

    MAX_LOG = 256

    def __init__(self, hub: "TelemetryHub"):
        self.hub = hub
        self.rules: typing.Dict[str, BurnRateRule] = {}
        self.active: typing.Dict[str, Alert] = {}
        self.log: typing.Deque[Alert] = collections.deque(maxlen=self.MAX_LOG)
        self.opened = 0
        self.closed = 0

    def add_rule(self, rule: BurnRateRule) -> BurnRateRule:
        """Install (or replace) the rule for one workload."""
        self.rules[rule.workload] = rule
        return rule

    def burn_over(
        self, workload: str, window_ns: float, now: float
    ) -> typing.Tuple[typing.Optional[float], int]:
        """``(burn_rate, samples)`` over the trailing window.

        ``None`` burn when the workload has no policy or no samples in
        the window.
        """
        state = self.hub.slo_state(workload)
        if state is None or state.policy is None:
            return None, 0
        totals = self.hub.get_series(f"slo.total/{workload}")
        misses = self.hub.get_series(f"slo.missed/{workload}")
        if totals is None:
            return None, 0
        since = now - window_ns
        total, _ = totals.sum_over(since, now)
        missed = misses.sum_over(since, now)[0] if misses is not None else 0.0
        if total <= 0:
            return None, 0
        return (missed / total) / state.policy.budget, int(total)

    def evaluate(self, workload: str, now: float) -> None:
        """Re-evaluate one workload's rule at ``now``."""
        rule = self.rules.get(workload)
        if rule is None:
            return
        fast, fast_n = self.burn_over(workload, rule.fast_ns, now)
        slow, _ = self.burn_over(workload, rule.slow_ns, now)
        alert = self.active.get(workload)
        if alert is None:
            if (
                fast is not None and slow is not None
                and fast_n >= rule.min_samples
                and fast > rule.open_above and slow > rule.open_above
            ):
                self._open(rule, now, fast, slow)
        else:
            alert.peak_burn = max(
                alert.peak_burn, fast or 0.0, slow or 0.0
            )
            if (fast or 0.0) <= rule.close_below and (
                slow or 0.0
            ) <= rule.close_below:
                self._close(alert, now, fast or 0.0, slow or 0.0)

    def sweep(self, now: float) -> None:
        """Re-evaluate every rule (called from the hub's poll)."""
        for workload in self.rules:
            self.evaluate(workload, now)

    def _open(self, rule: BurnRateRule, now: float,
              fast: float, slow: float) -> None:
        obs = self.hub.obs
        span = None
        if obs is not None:
            span = obs.begin_span(
                "alert", "burn", workload=rule.workload, scope=rule.scope,
            )
            obs.event(
                "alert", "open", workload=rule.workload, scope=rule.scope,
                fast_burn=round(fast, 3), slow_burn=round(slow, 3),
            )
            obs.counter("telemetry.alerts_opened").inc()
        self.active[rule.workload] = Alert(
            rule.workload, rule.scope, now, fast, slow, span=span
        )
        self.opened += 1

    def _close(self, alert: Alert, now: float,
               fast: float, slow: float) -> None:
        alert.closed_at = now
        obs = self.hub.obs
        if obs is not None:
            obs.event(
                "alert", "close", workload=alert.workload, scope=alert.scope,
                fast_burn=round(fast, 3), slow_burn=round(slow, 3),
                peak_burn=round(alert.peak_burn, 3),
                duration=now - alert.opened_at,
            )
            obs.counter("telemetry.alerts_closed").inc()
        if alert.span is not None:
            alert.span.set(peak_burn=round(alert.peak_burn, 3))
            alert.span.close()
            alert.span = None
        del self.active[alert.workload]
        self.log.append(alert)
        self.closed += 1

    def finalize(self, now: float) -> None:
        """End-of-run: close the spans of still-open alerts (the alerts
        themselves stay open in the data — an unresolved breach is a
        finding, not something to paper over)."""
        for alert in self.active.values():
            if alert.span is not None:
                alert.span.set(
                    peak_burn=round(alert.peak_burn, 3), still_open=True
                )
                alert.span.close()
                alert.span = None

    def data(self) -> dict:
        return {
            "opened": self.opened,
            "closed": self.closed,
            "rules": {
                w: {
                    "fast_ns": r.fast_ns, "slow_ns": r.slow_ns,
                    "open_above": r.open_above, "close_below": r.close_below,
                    "min_samples": r.min_samples, "scope": r.scope,
                }
                for w, r in sorted(self.rules.items())
            },
            "log": [a.to_dict() for a in self.log],
            "active": [a.to_dict() for a in self.active.values()],
        }


# -- sampled hotness -------------------------------------------------------


class SampledHotness:
    """Per-region and per-device access heat from a 1-in-N sample.

    Every Nth access (deterministic stride — no RNG, so runs replay
    bit-identically) is recorded with weight ``nbytes * N`` (unbiased
    in expectation).  Each table is a **space-saving** sketch of at most
    ``capacity`` entries: an untracked key evicts the coldest entry and
    inherits its score, so the true top-k survive with bounded error
    while memory stays O(capacity) no matter how many regions a soak
    run touches.  Scores decay exponentially (``half_life_ns``) like
    the full-counting :class:`repro.memory.pointers.HotnessTracker`,
    whose query API (``record``/``hotness``/``ranked``/``forget``) this
    class matches so the tiering layer can consume either.
    """

    def __init__(
        self,
        rate: int = 64,
        k: int = 32,
        half_life_ns: typing.Optional[float] = None,
    ):
        if rate < 1:
            raise ValueError(f"sampling rate must be >= 1, got 1/{rate}")
        if k < 1:
            raise ValueError("top-k must be >= 1")
        self.rate = int(rate)
        self.k = int(k)
        #: Sketch capacity: 2k entries keeps the classic space-saving
        #: top-k guarantee comfortable at Zipf-ish skews.
        self.capacity = max(2 * self.k, 8)
        if half_life_ns is not None and half_life_ns <= 0:
            raise ValueError("half life must be positive")
        self.decay = (
            0.6931471805599453 / half_life_ns if half_life_ns else 0.0
        )
        #: key -> [score, last_time]
        self._regions: typing.Dict[typing.Hashable, list] = {}
        self._devices: typing.Dict[str, list] = {}
        self.seen = 0
        self.sampled = 0
        self.evictions = 0
        self.enabled = True

    # -- recording --------------------------------------------------------

    def record_access(
        self,
        region_id: typing.Hashable,
        device: typing.Optional[str],
        nbytes: float,
        time: float,
    ) -> None:
        """One access; all but every ``rate``-th return immediately."""
        if not self.enabled:
            return
        self.seen += 1
        if self.seen % self.rate:
            return
        self.sampled += 1
        weight = nbytes * self.rate
        self._bump(self._regions, region_id, weight, time)
        if device is not None:
            self._bump(self._devices, device, weight, time)

    def record(self, region_id, nbytes: float, time: float) -> None:
        """Drop-in for ``memory.pointers.HotnessTracker.record``."""
        self.record_access(region_id, None, nbytes, time)

    def _bump(self, table: dict, key, weight: float, time: float) -> None:
        entry = table.get(key)
        if entry is not None:
            if self.decay:
                entry[0] *= self._decay_factor(time - entry[1])
            entry[0] += weight
            entry[1] = time
            return
        if len(table) < self.capacity:
            table[key] = [weight, time]
            return
        # Space-saving eviction: the newcomer inherits the coldest
        # entry's (decayed) score — an upper bound on its true heat.
        coldest = min(table, key=lambda k: table[k][0])
        floor = table.pop(coldest)[0]
        table[key] = [floor + weight, time]
        self.evictions += 1

    def _decay_factor(self, elapsed: float) -> float:
        if elapsed <= 0 or not self.decay:
            return 1.0
        import math

        return math.exp(-self.decay * elapsed)

    # -- queries ----------------------------------------------------------

    def hotness(self, region_id, time: float = 0.0) -> float:
        """Estimated (decayed) bytes-touched score of a region."""
        entry = self._regions.get(region_id)
        if entry is None:
            return 0.0
        return entry[0] * self._decay_factor(time - entry[1])

    def ranked(
        self, time: float = 0.0, kind: str = "region"
    ) -> typing.List[typing.Tuple[typing.Hashable, float]]:
        """Tracked keys hottest-first (``kind``: "region" or "device")."""
        table = self._regions if kind == "region" else self._devices
        pairs = [
            (key, entry[0] * self._decay_factor(time - entry[1]))
            for key, entry in table.items()
        ]
        pairs.sort(key=lambda p: (-p[1], str(p[0])))
        return pairs

    def top(
        self, k: typing.Optional[int] = None, time: float = 0.0,
        kind: str = "region",
    ) -> typing.List[typing.Tuple[typing.Hashable, float]]:
        """The estimated ``k`` hottest keys (default: the configured k)."""
        return self.ranked(time, kind)[: (k if k is not None else self.k)]

    def forget(self, region_id) -> None:
        """Drop one region's history (e.g. after it is freed)."""
        self._regions.pop(region_id, None)

    def memory_bytes(self) -> int:
        """Estimated resident bytes of both sketches (self-metering)."""
        return (len(self._regions) + len(self._devices)) * 120

    def snapshot(self) -> dict:
        return {
            "rate": self.rate,
            "k": self.k,
            "seen": self.seen,
            "sampled": self.sampled,
            "evictions": self.evictions,
            "regions": [
                [str(key), score] for key, score in self.top()
            ],
            "devices": [
                [str(key), score] for key, score in self.top(kind="device")
            ],
        }


# -- the hub ---------------------------------------------------------------


class _Watcher:
    """One polled fold source: a cumulative/level/sample callable."""

    __slots__ = ("series", "fn", "mode", "last")

    def __init__(self, series: WindowedSeries, fn, mode: str):
        self.series = series
        self.fn = fn
        self.mode = mode  # "rate" | "level" | "latency"
        self.last = None


class TelemetryHub:
    """One run's continuous-telemetry state (``obs.telemetry``).

    Folds live signals into :class:`WindowedSeries` three ways:

    * **push** — subsystems call :meth:`record` / :meth:`record_level`
      / :meth:`add` at the instant something happens;
    * **watch** — :meth:`watch` registers a zero-argument callable
      (or :meth:`watch_counter` / :meth:`watch_gauge` /
      :meth:`watch_timeline` / :meth:`watch_latency` an existing
      registry instrument) folded on every :meth:`poll`;
    * **SLO feed** — the :class:`~repro.obs.slo.SloTracker` calls
      :meth:`slo_observation` on every recorded completion, producing
      the windowed total/missed/latency series the
      :class:`AlertEngine` burns rules over.

    Polling is driven by whoever owns a convenient cadence (the
    admission sampler, the federation heartbeat, or a :meth:`pump`
    process in standalone benches); alert *detection* additionally
    rides every SLO observation, so a breach is noticed within one
    observation of the fast window filling, pump or no pump.
    """

    def __init__(
        self,
        obs: typing.Optional["Observability"] = None,
        window_ns: float = DEFAULT_WINDOW_NS,
        max_windows: int = DEFAULT_MAX_WINDOWS,
        hotness_rate: int = 64,
        hotness_k: int = 32,
    ):
        self.obs = obs
        self.window_ns = float(window_ns)
        self.max_windows = int(max_windows)
        self._series: typing.Dict[str, WindowedSeries] = {}
        self._watchers: typing.List[_Watcher] = []
        self.alerts = AlertEngine(self)
        self.hotness = SampledHotness(rate=hotness_rate, k=hotness_k)
        # -- self-metering (obs.telemetry.*) --
        self.polls = 0
        self.samples = 0
        self.self_wall_s = 0.0
        self._pump_proc = None
        #: Set by :meth:`finalize`; session ``close()`` relies on it.
        self.finalized = False

    # -- configuration -----------------------------------------------------

    def configure(
        self,
        window_ns: typing.Optional[float] = None,
        max_windows: typing.Optional[int] = None,
        hotness_rate: typing.Optional[int] = None,
        hotness_k: typing.Optional[int] = None,
    ) -> "TelemetryHub":
        """Re-size the defaults (applies to series created afterwards)."""
        if window_ns is not None:
            if window_ns <= 0:
                raise ValueError("window width must be positive")
            self.window_ns = float(window_ns)
        if max_windows is not None:
            if max_windows < 1:
                raise ValueError("max_windows must be >= 1")
            self.max_windows = int(max_windows)
        if hotness_rate is not None or hotness_k is not None:
            self.hotness = SampledHotness(
                rate=hotness_rate or self.hotness.rate,
                k=hotness_k or self.hotness.k,
            )
        return self

    def now(self) -> float:
        return self.obs.now() if self.obs is not None else 0.0

    # -- series ------------------------------------------------------------

    def series(
        self,
        name: str,
        kind: str = "sample",
        width_ns: typing.Optional[float] = None,
        bounds: typing.Optional[typing.Sequence[float]] = None,
    ) -> WindowedSeries:
        """Get-or-create one windowed series."""
        series = self._series.get(name)
        if series is None:
            series = self._series[name] = WindowedSeries(
                name,
                width_ns if width_ns is not None else self.window_ns,
                kind=kind,
                max_windows=self.max_windows,
                bounds=bounds,
            )
            return series
        if series.kind != kind:
            raise TypeError(
                f"series {name!r} already registered as {series.kind}, "
                f"requested {kind}"
            )
        return series

    def get_series(self, name: str) -> typing.Optional[WindowedSeries]:
        return self._series.get(name)

    def names(self) -> typing.List[str]:
        return sorted(self._series)

    def __contains__(self, name: str) -> bool:
        return name in self._series

    # -- push API ----------------------------------------------------------

    def record(self, name: str, t: float, value: float,
               bounds: typing.Optional[typing.Sequence[float]] = None) -> None:
        """Push one discrete sample."""
        self.samples += 1
        self.series(name, "sample", bounds=bounds).observe(t, value)

    def record_level(self, name: str, t: float, level: float) -> None:
        """Push one level change."""
        self.samples += 1
        self.series(name, "level").record_level(t, level)

    def adjust(self, name: str, t: float, delta: float) -> None:
        """Shift a level series by ``delta``."""
        self.samples += 1
        self.series(name, "level").adjust(t, delta)

    def add(self, name: str, t: float, delta: float) -> None:
        """Push one counter delta."""
        self.samples += 1
        self.series(name, "rate").add(t, delta)

    # -- watchers ----------------------------------------------------------

    def watch(self, name: str, fn: typing.Callable[[], float],
              kind: str = "rate") -> WindowedSeries:
        """Fold ``fn()`` into ``name`` on every poll.

        ``kind="rate"`` treats ``fn`` as a cumulative counter (the
        per-poll delta is folded); ``kind="level"`` samples it as a
        piecewise-constant level; ``kind="sample"`` folds the raw value
        as a discrete observation.
        """
        mode = "rate" if kind == "rate" else kind
        series = self.series(name, kind)
        for watcher in self._watchers:
            # Re-registering a name replaces its source (e.g. a rebuilt
            # runtime on the same cluster) instead of double-folding.
            if watcher.series is series:
                watcher.fn = fn
                watcher.mode = mode
                watcher.last = None
                return series
        self._watchers.append(_Watcher(series, fn, mode))
        return series

    def watch_counter(self, counter) -> WindowedSeries:
        """Fold a registry :class:`~repro.obs.metrics.Counter`."""
        return self.watch(counter.name, lambda: counter.value, kind="rate")

    def watch_gauge(self, gauge) -> WindowedSeries:
        """Sample a registry :class:`~repro.obs.metrics.Gauge`."""
        return self.watch(gauge.name, lambda: gauge.value, kind="level")

    def watch_timeline(self, timeline) -> WindowedSeries:
        """Sample a registry :class:`~repro.obs.metrics.Timeline` level."""
        return self.watch(
            timeline.name, lambda: timeline.recorder.level, kind="level"
        )

    def watch_latency(self, histogram) -> WindowedSeries:
        """Fold a :class:`~repro.obs.metrics.LatencyHistogram` so each
        window carries the observations recorded *during* it (count,
        mean, and in-window p95 via bucket-count deltas)."""
        series = self.series(
            name=histogram.name, kind="sample", bounds=histogram.bounds
        )
        for watcher in self._watchers:
            if watcher.series is series:
                watcher.fn = histogram
                watcher.mode = "latency"
                watcher.last = None
                return series
        watcher = _Watcher(series, histogram, "latency")
        self._watchers.append(watcher)
        return series

    # -- polling -----------------------------------------------------------

    def poll(self, now: typing.Optional[float] = None) -> None:
        """Fold every watcher and sweep the alert rules at ``now``."""
        t0 = _time.perf_counter()
        t = self.now() if now is None else now
        for watcher in self._watchers:
            series = watcher.series
            mode = watcher.mode
            if mode == "rate":
                value = float(watcher.fn())
                last = watcher.last
                if last is not None and (value != last or series._cur is not None):
                    series.add(t, value - last)
                watcher.last = value
            elif mode == "level":
                series.record_level(t, float(watcher.fn()))
            elif mode == "latency":
                hist = watcher.fn
                if watcher.last is None:
                    watcher.last = (0, 0.0, [0] * len(hist.counts))
                count, total, buckets = watcher.last
                dcount = hist.total - count
                if dcount > 0:
                    window = series._roll_to(series.window_index(t))
                    window.count += dcount
                    window.total += hist._sum - total
                    window.vmin = min(window.vmin, hist.minimum)
                    window.vmax = max(window.vmax, hist.maximum)
                    for i, n in enumerate(hist.counts):
                        window.buckets[i] += n - buckets[i]
                    watcher.last = (hist.total, hist._sum, list(hist.counts))
            else:  # sample
                series.observe(t, float(watcher.fn()))
        self.samples += len(self._watchers)
        if self.alerts.rules:
            self.alerts.sweep(t)
        self.polls += 1
        self.self_wall_s += _time.perf_counter() - t0

    def pump(self, engine, interval_ns: typing.Optional[float] = None):
        """Generator: poll forever at ``interval_ns`` (a sim process).

        ``proc = engine.process(hub.pump(engine))``; kill the process
        (or let ``engine.run(until=...)`` abandon it) when done.
        """
        interval = interval_ns if interval_ns is not None else self.window_ns
        if interval <= 0:
            raise ValueError("pump interval must be positive")
        while True:
            self.poll(engine.now)
            yield engine.timeout(interval)

    # -- SLO feed ----------------------------------------------------------

    def slo_state(self, workload: str) -> typing.Optional["WorkloadSlo"]:
        if self.obs is None or workload not in self.obs.slo:
            return None
        return self.obs.slo[workload]

    def slo_observation(
        self, workload: str, latency_ns: float, ok: bool,
        state: "WorkloadSlo",
    ) -> None:
        """Fold one SLO observation; called by the tracker on record.

        Only workloads with a policy or an alert rule get windowed
        series: ad-hoc per-job workload names (every submitted job
        records one observation under its own name) would otherwise
        each allocate three series for a single point.
        """
        if state.policy is None and workload not in self.alerts.rules:
            return
        t0 = _time.perf_counter()
        now = self.now()
        self.series(f"slo.total/{workload}", "rate").add(now, 1.0)
        missed = not ok or (
            state.policy is not None and latency_ns > state.policy.target_ns
        )
        self.series(f"slo.missed/{workload}", "rate").add(
            now, 1.0 if missed else 0.0
        )
        self.series(
            f"slo.latency/{workload}", "sample", bounds=LATENCY_BOUNDS_NS
        ).observe(now, latency_ns)
        self.samples += 3
        if state.policy is not None:
            self.alerts.evaluate(workload, now)
        self.self_wall_s += _time.perf_counter() - t0

    # -- self-metering / export --------------------------------------------

    def memory_bytes(self) -> int:
        """Estimated resident bytes of all telemetry state."""
        return (
            sum(s.memory_bytes() for s in self._series.values())
            + self.hotness.memory_bytes()
            + len(self.alerts.log) * 96
        )

    def _collect_self_metrics(self):
        """The telemetry layer's own cost, as ``obs.telemetry.*``."""
        yield "obs.telemetry.series", float(len(self._series))
        yield "obs.telemetry.windows_retained", float(
            sum(len(s.closed) for s in self._series.values())
        )
        yield "obs.telemetry.windows_dropped", float(
            sum(s.dropped for s in self._series.values())
        )
        yield "obs.telemetry.samples", float(self.samples)
        yield "obs.telemetry.polls", float(self.polls)
        yield "obs.telemetry.self_wall_s", self.self_wall_s
        yield "obs.telemetry.memory_bytes", float(self.memory_bytes())
        yield "obs.telemetry.hotness_seen", float(self.hotness.seen)
        yield "obs.telemetry.hotness_sampled", float(self.hotness.sampled)
        yield "obs.telemetry.hotness_evictions", float(self.hotness.evictions)
        yield "obs.telemetry.alerts_active", float(len(self.alerts.active))

    def finalize(self, now: typing.Optional[float] = None) -> None:
        """End-of-run: final poll + close still-open alert spans."""
        t = self.now() if now is None else now
        self.poll(t)
        self.alerts.finalize(t)
        self.finalized = True

    def data(self, window_limit: typing.Optional[int] = None) -> dict:
        """The hub as plain data (the JSONL/dashboard interchange)."""
        return {
            "window_ns": self.window_ns,
            "series": {
                name: series.snapshot(limit=window_limit)
                for name, series in sorted(self._series.items())
            },
            "alerts": self.alerts.data(),
            "hotness": self.hotness.snapshot(),
            "self": {
                "samples": self.samples,
                "polls": self.polls,
                "self_wall_s": self.self_wall_s,
                "memory_bytes": self.memory_bytes(),
            },
        }


__all__ = [
    "Alert",
    "AlertEngine",
    "BurnRateRule",
    "DEFAULT_WINDOW_NS",
    "SampledHotness",
    "TelemetryHub",
    "WindowedSeries",
]
