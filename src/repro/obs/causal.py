"""Causal critical-path analysis: where did a job's wall-clock go?

Raw spans (``repro.obs.span``) record that phases *happened*; they
cannot answer "why did this job take 4.2s" when the cause is a transfer
stalled behind a shared link or a SUSPECT-node retry.  This module turns
the span tree into a **causal DAG** recorded at emission time:

* every job owns a :class:`JobGraph` of interval nodes (``CausalNode``)
  — dependency waits, queue waits, compute/memory phases, handovers,
  recovery intervals — connected by typed edges (``spawn``, ``seq``,
  ``data_dep``, ``queue``, ``retry``, ``finish``);
* :func:`critical_path` walks the DAG backward from the sink, always
  following the predecessor that finished *last* — the causally binding
  chain;
* :func:`attribute_job` converts that path into wall-clock **attribution
  buckets** that provably sum to the job's makespan: walking the path
  forward, each step's interval ``[prev_end, node.end]`` splits into a
  *gap* (time no recorded node explains → ``unattributed``) and an
  *active* part (→ the node's bucket).  The per-step intervals telescope
  from ``submitted_at`` to ``finished_at`` exactly, so the identity
  ``sum(buckets) == makespan`` holds by construction — even when the
  graph hit its node cap and degraded.

On top of the DAG: :func:`detect_stragglers` flags tasks/devices whose
critical-path contribution is a robust outlier (median + k·MAD) within
their phase cohort, and transfer nodes carry the **bottleneck link**
frozen by the max–min waterfill (``sim/flows.py``), so the transfer
bucket breaks down into per-link shares.

Everything here is gated on the ``"causal"`` trace category: when it is
disabled (``TraceLog(enabled=...)`` without ``"causal"``), the tracer
records nothing and the wiring in ``rts.py`` et al. costs one attribute
check per call site.
"""

from __future__ import annotations

import collections
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs import Observability

#: The attribution buckets, in report order.  ``unattributed`` absorbs
#: gaps between recorded nodes (and anything a saturated graph dropped),
#: which is what keeps the sum-to-makespan identity unconditional.
BUCKETS = (
    "dependency_wait",
    "queue_wait",
    "compute",
    "transfer",
    "ownership_stall",
    "recovery_retry",
    "preemption",
    "admission_backoff",
    "unattributed",
)

#: Edge kinds (DESIGN.md documents which call site emits each).
EDGE_KINDS = ("spawn", "seq", "data_dep", "queue", "retry", "finish")


class CausalNode:
    """One interval in a job's causal DAG."""

    __slots__ = ("id", "kind", "bucket", "begin", "end", "task", "device",
                 "fields")

    def __init__(self, nid, kind, bucket, begin, end, task, device, fields):
        self.id = nid
        self.kind = kind
        self.bucket = bucket
        self.begin = float(begin)
        self.end = float(end)
        self.task = task
        self.device = device
        self.fields = fields

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.begin)

    def __repr__(self) -> str:
        return (f"<CausalNode #{self.id} {self.kind} [{self.begin:.0f},"
                f"{self.end:.0f}] {self.task}>")


class JobGraph:
    """The causal DAG of one job execution.

    Nodes are appended in emission order, so node ids increase along
    simulated time and every edge points from a lower id to a higher id
    — the DAG is acyclic by construction and backward walks terminate.
    """

    def __init__(self, key: str, job: str, submitted_at: float,
                 max_nodes: int = 100_000):
        self.key = key
        self.job = job
        self.submitted_at = float(submitted_at)
        self.finished_at: typing.Optional[float] = None
        self.ok: typing.Optional[bool] = None
        self.max_nodes = max_nodes
        self.nodes: typing.Dict[int, CausalNode] = {}
        #: dst node id -> list of (src node id, edge kind)
        self.in_edges: typing.Dict[int, typing.List[typing.Tuple[int, str]]] = {}
        self.dropped_nodes = 0
        #: Time the job waited in an admission queue *before* submit
        #: (outside the makespan; reported as a supplementary row).
        self.admission_wait_ns = 0.0
        #: Free-form job-level annotations (est_makespan, retry_of, ...).
        self.fields: typing.Dict[str, object] = {}
        self._next_id = 0
        self.root = self.add_node("submit", None, submitted_at, submitted_at)
        self.sink: typing.Optional[int] = None

    # -- construction ------------------------------------------------------

    def add_node(
        self,
        kind: str,
        bucket: typing.Optional[str],
        begin: float,
        end: float,
        task: str = "",
        device: str = "",
        parents: typing.Iterable = (),
        detached: bool = False,
        **fields,
    ) -> typing.Optional[int]:
        """Append a node; returns its id, or ``None`` when the graph is
        at its node cap (the dropped interval degrades to
        ``unattributed`` without breaking the sum identity).

        ``parents`` is an iterable of node ids or ``(node_id, edge_kind)``
        pairs; bare ids get a ``seq`` edge.  A non-detached node with no
        surviving parent is chained to the root (``spawn``), so every
        node reachable from the sink has a path back to the root.
        """
        if len(self.nodes) >= self.max_nodes:
            self.dropped_nodes += 1
            return None
        nid = self._next_id
        self._next_id += 1
        self.nodes[nid] = CausalNode(
            nid, kind, bucket, begin, end, task, device, fields
        )
        linked = False
        for parent in parents:
            if isinstance(parent, tuple):
                src, edge_kind = parent
            else:
                src, edge_kind = parent, "seq"
            if self.add_edge(src, nid, edge_kind):
                linked = True
        if not linked and not detached and nid != 0:
            self.add_edge(self.root, nid, "spawn")
        return nid

    def add_edge(self, src: typing.Optional[int], dst: int, kind: str) -> bool:
        """Record a causal edge; rejects dangling/backward references
        (dropped parents, cross-job ids) instead of corrupting the DAG."""
        if src is None or src not in self.nodes or dst not in self.nodes:
            return False
        if src >= dst:
            return False
        self.in_edges.setdefault(dst, []).append((src, kind))
        return True

    def finish(self, time: float, ok: bool,
               parents: typing.Iterable = ()) -> typing.Optional[int]:
        """Close the graph with a sink node at the job's finish time
        (idempotent: only the first finish defines the sink)."""
        if self.sink is not None:
            return self.sink
        self.finished_at = float(time)
        self.ok = ok
        # The sink must exist even at the node cap: steal headroom.
        if len(self.nodes) >= self.max_nodes:
            self.max_nodes = len(self.nodes) + 1
        self.sink = self.add_node(
            "finish", None, time, time,
            parents=[
                (p if isinstance(p, tuple) else (p, "finish"))
                for p in parents
            ],
        )
        return self.sink

    @property
    def makespan(self) -> typing.Optional[float]:
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    def edge_list(self) -> typing.List[typing.Tuple[int, int, str]]:
        return [
            (src, dst, kind)
            for dst, srcs in sorted(self.in_edges.items())
            for src, kind in srcs
        ]

    # -- interchange -------------------------------------------------------

    def to_dict(self) -> dict:
        """JSONL-ready shape (``export.write_jsonl`` emits one per job)."""
        return {
            "key": self.key,
            "job": self.job,
            "submitted_at": self.submitted_at,
            "finished_at": self.finished_at,
            "ok": self.ok,
            "root": self.root,
            "sink": self.sink,
            "dropped_nodes": self.dropped_nodes,
            "admission_wait_ns": self.admission_wait_ns,
            "fields": dict(self.fields),
            "nodes": [
                [n.id, n.kind, n.bucket, n.begin, n.end, n.task, n.device,
                 n.fields]
                for n in self.nodes.values()
            ],
            "edges": self.edge_list(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "JobGraph":
        graph = cls.__new__(cls)
        graph.key = data["key"]
        graph.job = data["job"]
        graph.submitted_at = float(data["submitted_at"])
        finished = data.get("finished_at")
        graph.finished_at = None if finished is None else float(finished)
        graph.ok = data.get("ok")
        graph.max_nodes = len(data["nodes"]) + 1
        graph.dropped_nodes = int(data.get("dropped_nodes", 0))
        graph.admission_wait_ns = float(data.get("admission_wait_ns", 0.0))
        graph.fields = dict(data.get("fields", {}))
        graph.nodes = {}
        for nid, kind, bucket, begin, end, task, device, fields in data["nodes"]:
            graph.nodes[int(nid)] = CausalNode(
                int(nid), kind, bucket, begin, end, task, device,
                dict(fields or {}),
            )
        graph._next_id = (max(graph.nodes) + 1) if graph.nodes else 0
        graph.in_edges = {}
        for src, dst, kind in data.get("edges", []):
            graph.in_edges.setdefault(int(dst), []).append((int(src), kind))
        graph.root = int(data.get("root", 0))
        sink = data.get("sink")
        graph.sink = None if sink is None else int(sink)
        return graph


class CausalTracer:
    """Per-run registry of job graphs plus cross-job causal context.

    Owned by :class:`~repro.obs.Observability` as ``obs.causal``.  All
    emission is gated on the ``"causal"`` trace category; ``job_begin``
    returns ``None`` when it is off and every call site short-circuits
    on that.
    """

    CATEGORY = "causal"

    def __init__(self, obs: "Observability", max_jobs: int = 256,
                 max_nodes_per_job: int = 100_000):
        self.obs = obs
        self.max_jobs = max_jobs
        self.max_nodes_per_job = max_nodes_per_job
        #: job key -> JobGraph, in begin order (oldest evicted first).
        self.jobs: "collections.OrderedDict[str, JobGraph]" = (
            collections.OrderedDict()
        )
        self.dropped_jobs = 0
        #: device name -> (job key, node id, task) of the last slot
        #: release observed there; same-job successors turn it into a
        #: ``queue`` edge, cross-job successors into a ``blocked_by``
        #: annotation (per-job graphs stay self-contained).
        self._slot_release: typing.Dict[str, typing.Tuple[str, int, str]] = {}
        #: Bounded log of cluster-level causes (fault detections, drains,
        #: repairs) that retry nodes cite as their root cause.
        self.faults: typing.Deque[dict] = collections.deque(maxlen=256)
        #: Bounded log of placement rejections (recovery context).
        self.rejection_log: typing.Deque[dict] = collections.deque(maxlen=256)
        self.rejections = 0

    @property
    def enabled(self) -> bool:
        return self.obs.trace.wants(self.CATEGORY)

    # -- job lifecycle -----------------------------------------------------

    def job_begin(self, key: str, job: str,
                  submitted_at: typing.Optional[float] = None
                  ) -> typing.Optional[JobGraph]:
        """Open a graph for a job; ``None`` when causal tracing is off."""
        if not self.enabled:
            return None
        if submitted_at is None:
            submitted_at = self.obs.now()
        graph = JobGraph(key, job, submitted_at,
                         max_nodes=self.max_nodes_per_job)
        self.jobs[key] = graph
        while len(self.jobs) > self.max_jobs:
            self.jobs.popitem(last=False)
            self.dropped_jobs += 1
        return graph

    def job_finish(self, graph: JobGraph, time: float, ok: bool,
                   parents: typing.Iterable = ()) -> None:
        graph.finish(time, ok, parents)

    def link_retry(self, prev_key: str, new_key: str) -> None:
        """Annotate a job-level retry chain (``resilience.py``)."""
        new = self.jobs.get(new_key)
        if new is not None:
            new.fields["retry_of"] = prev_key
        prev = self.jobs.get(prev_key)
        if prev is not None:
            prev.fields["retried_as"] = new_key

    # -- cross-job context -------------------------------------------------

    def note_slot_release(self, device: str, job_key: str, node_id: int,
                          task: str) -> None:
        self._slot_release[device] = (job_key, node_id, task)

    def last_slot_release(
        self, device: str
    ) -> typing.Optional[typing.Tuple[str, int, str]]:
        return self._slot_release.get(device)

    def note_fault(self, kind: str, target: str, time: float, **fields) -> None:
        """Record a cluster-level cause (fault detection, drain, repair)."""
        if not self.enabled:
            return
        entry = {"kind": kind, "target": target, "time": time}
        entry.update(fields)
        self.faults.append(entry)

    def last_fault(self, target: str) -> typing.Optional[dict]:
        for entry in reversed(self.faults):
            if entry["target"] == target:
                return entry
        return None

    def note_rejection(self, owner, name: str, reason: str,
                       time: float) -> None:
        self.rejections += 1
        if self.enabled:
            self.rejection_log.append({
                "owner": str(owner), "region": name, "reason": reason,
                "time": time,
            })

    # -- export ------------------------------------------------------------

    def data(self) -> dict:
        """The tracer's state in the JSONL/dashboard interchange shape."""
        return {
            "jobs": {key: g.to_dict() for key, g in self.jobs.items()},
            "dropped_jobs": self.dropped_jobs,
            "faults": list(self.faults),
            "rejections": self.rejections,
        }


# -- analysis ---------------------------------------------------------------


def critical_path(graph: JobGraph) -> typing.List[int]:
    """Root-to-sink node ids along the causally binding chain.

    From the sink, repeatedly step to the predecessor with the latest
    end time (ties broken toward the later-emitted node): that
    predecessor is the one the current node actually waited for.  Edges
    always point from a lower node id to a higher one, so the walk
    strictly decreases and terminates at the root.  Empty when the job
    has not finished.
    """
    if graph.sink is None or graph.sink not in graph.nodes:
        return []
    path = [graph.sink]
    nodes = graph.nodes
    cur = graph.sink
    while cur != graph.root:
        preds = graph.in_edges.get(cur)
        if not preds:
            break  # only the root may be predecessor-free
        cur = max(preds, key=lambda e: (nodes[e[0]].end, e[0]))[0]
        path.append(cur)
    path.reverse()
    return path


def attribute_job(graph: JobGraph) -> typing.Optional[dict]:
    """Wall-clock attribution of one finished job; ``None`` in flight.

    Returns ``{job, key, ok, makespan, buckets, path, steps, per_task,
    link_share, ...}`` where ``sum(buckets.values()) == makespan``
    exactly (up to float addition): the forward walk splits every step's
    interval ``[prev_end, node.end]`` into gap → ``unattributed`` and
    active → the node's bucket, and those intervals telescope from
    ``submitted_at`` to ``finished_at``.
    """
    if graph.finished_at is None:
        return None
    path = critical_path(graph)
    buckets = {bucket: 0.0 for bucket in BUCKETS}
    steps: typing.List[dict] = []
    per_task: typing.Dict[str, dict] = {}
    link_share: typing.Dict[str, float] = {}
    prev_end = graph.submitted_at
    for nid in path:
        node = graph.nodes[nid]
        if nid == graph.root:
            prev_end = max(prev_end, node.end)
            continue
        if node.end <= prev_end:
            continue  # fully overlapped by the previous step: contributes 0
        gap = max(0.0, node.begin - prev_end)
        active = node.end - max(node.begin, prev_end)
        bucket = node.bucket if node.bucket in buckets else "unattributed"
        if gap > 0.0:
            buckets["unattributed"] += gap
        buckets[bucket] += active
        if active > 0.0:
            steps.append({
                "node": nid, "kind": node.kind, "bucket": bucket,
                "task": node.task, "device": node.device, "ns": active,
                "begin": max(node.begin, prev_end), "end": node.end,
            })
            if node.task:
                entry = per_task.setdefault(
                    node.task, {"total": 0.0, "device": node.device,
                                "buckets": {}}
                )
                entry["total"] += active
                if node.device:
                    entry["device"] = node.device
                entry["buckets"][bucket] = (
                    entry["buckets"].get(bucket, 0.0) + active
                )
            if bucket == "transfer":
                _share_links(node, active, link_share)
        prev_end = node.end
    if graph.finished_at > prev_end:
        # A saturated graph can leave the tail unexplained; keep the sum.
        buckets["unattributed"] += graph.finished_at - prev_end
    return {
        "job": graph.job,
        "key": graph.key,
        "ok": graph.ok,
        "submitted_at": graph.submitted_at,
        "finished_at": graph.finished_at,
        "makespan": graph.finished_at - graph.submitted_at,
        "buckets": buckets,
        "path": path,
        "steps": steps,
        "per_task": per_task,
        "link_share": link_share,
        "admission_wait_ns": graph.admission_wait_ns,
        "dropped_nodes": graph.dropped_nodes,
        "fields": dict(graph.fields),
    }


def _share_links(node: CausalNode, active: float,
                 link_share: typing.Dict[str, float]) -> None:
    """Split a transfer node's critical time across its bottleneck links
    (proportional to per-copy durations), recorded by the waterfill."""
    copies = node.fields.get("copies") or ()
    total = sum(float(c.get("duration", 0.0)) for c in copies)
    if total <= 0.0:
        key = node.fields.get("link") or node.fields.get("backing") or "(local)"
        link_share[str(key)] = link_share.get(str(key), 0.0) + active
        return
    for copy in copies:
        key = str(copy.get("link") or "(uncontended)")
        frac = float(copy.get("duration", 0.0)) / total
        link_share[key] = link_share.get(key, 0.0) + active * frac


def quantile(sorted_values: typing.Sequence[float], q: float) -> float:
    """Linear-interpolation quantile of an ascending sequence."""
    if not sorted_values:
        return 0.0
    if q <= 0.0:
        return sorted_values[0]
    if q >= 1.0:
        return sorted_values[-1]
    pos = q * (len(sorted_values) - 1)
    lo = int(pos)
    frac = pos - lo
    if lo + 1 >= len(sorted_values):
        return sorted_values[-1]
    return sorted_values[lo] * (1.0 - frac) + sorted_values[lo + 1] * frac


def detect_stragglers(
    attributions: typing.Sequence[dict],
    mad_k: float = 3.0,
    min_share: float = 0.05,
    min_cohort: int = 4,
) -> typing.List[dict]:
    """Tasks/devices whose critical-path contribution is a robust outlier.

    Cohorts pool per-task bucket contributions across all runs of the
    same job name (phase cohort); a member is flagged when its
    contribution exceeds ``median + mad_k · 1.4826 · MAD`` *and* at
    least ``min_share`` of its job's makespan.  Devices are tested the
    same way over per-device aggregates.  Small cohorts
    (< ``min_cohort``) are skipped — no robust statistic exists there.
    """
    task_cohorts: typing.Dict[tuple, list] = {}
    device_cohorts: typing.Dict[tuple, list] = {}
    for att in attributions:
        makespan = att["makespan"] or 1.0
        per_device: typing.Dict[tuple, float] = {}
        for task, info in att["per_task"].items():
            for bucket, ns in info["buckets"].items():
                task_cohorts.setdefault((att["job"], bucket), []).append({
                    "task": task, "device": info.get("device", ""),
                    "job": att["job"], "key": att["key"],
                    "ns": ns, "share": ns / makespan,
                })
                dev = info.get("device", "")
                if dev:
                    cell = (att["job"], bucket, dev, att["key"])
                    per_device[cell] = per_device.get(cell, 0.0) + ns
        for (job, bucket, dev, key), ns in per_device.items():
            device_cohorts.setdefault((job, bucket, dev), []).append({
                "device": dev, "job": job, "key": key,
                "ns": ns, "share": ns / makespan,
            })

    flagged: typing.List[dict] = []
    for scope, cohorts in (("task", task_cohorts), ("device", device_cohorts)):
        for cohort_key, members in cohorts.items():
            if len(members) < min_cohort:
                continue
            values = sorted(m["ns"] for m in members)
            med = quantile(values, 0.5)
            mad = quantile(sorted(abs(v - med) for v in values), 0.5)
            threshold = med + mad_k * 1.4826 * mad
            for member in members:
                if member["ns"] > threshold and member["share"] >= min_share:
                    flagged.append({
                        "scope": scope,
                        "job": member["job"],
                        "bucket": cohort_key[1],
                        "task": member.get("task", ""),
                        "device": member.get("device", ""),
                        "key": member["key"],
                        "ns": member["ns"],
                        "share": member["share"],
                        "cohort_median": med,
                        "threshold": threshold,
                        "cohort_size": len(members),
                    })
    flagged.sort(key=lambda f: -f["ns"])
    return flagged


def validate_path(graph: JobGraph, path: typing.Sequence[int]) -> bool:
    """Is ``path`` a real root-to-sink chain of recorded edges?"""
    if not path:
        return False
    if path[0] != graph.root or path[-1] != graph.sink:
        return False
    for src, dst in zip(path, path[1:]):
        if not any(s == src for s, _k in graph.in_edges.get(dst, ())):
            return False
    return True
