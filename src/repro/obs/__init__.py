"""Cross-layer observability for the disaggregated runtime.

Paper §3, Challenge 8(1): *"How can we debug, profile, and optimize
dataflow applications with multiple abstraction layers for performance
when the runtime system hides performance-relevant details?"*  This
package is the measurement substrate that makes every layer answerable:

* a **metrics registry** (:mod:`repro.obs.metrics`) of counters, gauges,
  time-weighted histograms, and bounded per-device utilization
  timelines;
* **span-based tracing** (:mod:`repro.obs.span`) nesting
  job → task → region/phase → device scopes into the bounded
  per-category ring buffers of :class:`~repro.sim.trace.TraceLog`;
* **exporters** (:mod:`repro.obs.export`): JSONL run dumps and
  Chrome/Perfetto ``trace_event`` JSON;
* a **text dashboard** (:mod:`repro.obs.dashboard`) rendering per-job
  makespans, device utilization timelines, per-link bytes, and handover
  economics — also available offline via ``scripts/obs_report.py``;
* **continuous telemetry** (:mod:`repro.obs.telemetry`): bounded
  fixed-window series over any signal, multi-window SLO burn-rate
  alerting, and 1-in-N sampled hotness tracking, all self-metered
  under ``obs.telemetry.*`` — also available offline via
  ``scripts/telemetry_report.py``.

Every :class:`~repro.hardware.cluster.Cluster` owns an
:class:`Observability` instance as ``cluster.obs``.  The disabled path
is near-zero-cost: when a trace category is off, :meth:`Observability.span`
returns a shared no-op span and instrumented call sites guard field
construction with ``if sp:`` / :meth:`Observability.on`, so nothing is
allocated.
"""

from __future__ import annotations

import typing
from itertools import count

from repro.obs.causal import CausalTracer
from repro.obs.metrics import (
    Counter,
    Gauge,
    LatencyHistogram,
    MetricsRegistry,
    TimeWeightedHistogram,
    Timeline,
)
from repro.obs.slo import SloTracker
from repro.obs.span import NOOP_SPAN, Span
from repro.obs.telemetry import BurnRateRule, TelemetryHub, WindowedSeries
from repro.sim.trace import TraceLog

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Engine


class Observability:
    """One run's observability: trace backend, spans, and metrics.

    Bound to an engine for timestamps and to a (bounded)
    :class:`TraceLog` as the event backend.  Usable standalone in tests::

        obs = Observability()
        with obs.span("cat", "work") as sp:
            sp.set(items=3)
    """

    def __init__(
        self,
        trace: typing.Optional[TraceLog] = None,
        engine: typing.Optional["Engine"] = None,
    ):
        self.trace = trace if trace is not None else TraceLog()
        self.engine = engine
        self.registry = MetricsRegistry()
        #: Causal DAG recorder (gated on the "causal" trace category).
        self.causal = CausalTracer(self)
        #: Per-workload latency percentiles + error-budget accounting.
        self.slo = SloTracker()
        #: Continuous telemetry: windowed series, burn-rate alerts,
        #: sampled hotness.  The SLO tracker feeds it on every record.
        self.telemetry = TelemetryHub(self)
        self.slo.telemetry = self.telemetry
        self.registry.add_collector(self.telemetry._collect_self_metrics)
        self._stack: typing.List[Span] = []
        self._span_ids = count(1)

    # -- time / filtering --------------------------------------------------

    def now(self) -> float:
        return self.engine.now if self.engine is not None else 0.0

    def on(self, category: str) -> bool:
        """Is this trace category recording?  Check before building
        field dicts on hot paths."""
        return self.trace.wants(category)

    def enable(self, *categories: str) -> None:
        """Enable only the given categories (no args: enable everything)."""
        self.trace.enabled = set(categories) if categories else None

    def disable(self, *categories: str) -> None:
        """Disable the given categories (no args: disable everything)."""
        if not categories:
            self.trace.enabled = set()
            return
        if self.trace.enabled is None:
            # All were on; there is no closed-world set to subtract from,
            # so record the complement lazily via known categories.
            self.trace.enabled = set(self.trace.categories())
        self.trace.enabled -= set(categories)

    # -- events / spans ----------------------------------------------------

    def event(self, category: str, name: str, **fields) -> None:
        """Emit an instant event at the current simulated time."""
        if self.trace.wants(category):
            self.trace.emit(self.now(), category, name, **fields)

    def span(
        self,
        category: str,
        name: str,
        parent: typing.Union[Span, int, None] = None,
        **fields,
    ):
        """A context-manager span (no-op when the category is off)."""
        if not self.trace.wants(category):
            return NOOP_SPAN
        return Span(self, category, name, fields, parent)

    def begin_span(
        self,
        category: str,
        name: str,
        parent: typing.Union[Span, int, None] = None,
        **fields,
    ):
        """An explicit span for scopes crossing simulation processes;
        the caller must :meth:`Span.close` it."""
        if not self.trace.wants(category):
            return NOOP_SPAN
        return Span(self, category, name, fields, parent)

    def _next_span_id(self) -> int:
        return next(self._span_ids)

    # -- metrics passthroughs ---------------------------------------------

    def counter(self, name: str) -> Counter:
        return self.registry.counter(name)

    def gauge(self, name: str, fn=None) -> Gauge:
        return self.registry.gauge(name, fn)

    def histogram(self, name: str, **kwargs) -> TimeWeightedHistogram:
        return self.registry.histogram(name, **kwargs)

    def timeline(self, name: str, **kwargs) -> Timeline:
        return self.registry.timeline(name, **kwargs)

    # -- export / rendering ------------------------------------------------

    def data(self) -> dict:
        """The live run in the dashboard/JSONL interchange shape."""
        from repro.obs.export import event_record

        return {
            "meta": {
                "now": self.now(),
                "dropped": self.trace.dropped_by_category,
                "retained": {
                    c: self.trace.retained(c) for c in self.trace.categories()
                },
            },
            "events": [event_record(e) for e in self.trace.events],
            "metrics": self.registry.snapshot(),
            "causal": self.causal.data(),
            "slo": self.slo.snapshot(),
            "telemetry": self.telemetry.data(),
        }

    def export_jsonl(self, path: str) -> int:
        """Dump events + metrics as JSONL; returns lines written."""
        from repro.obs.export import write_jsonl

        return write_jsonl(path, self)

    def write_chrome_trace(self, path: str) -> None:
        """Dump the retained trace for chrome://tracing / Perfetto,
        including "s"/"f" flow events for recorded causal edges."""
        from repro.obs.export import write_chrome_trace

        write_chrome_trace(path, self.trace, causal=self.causal.data())

    def dashboard(self, job: typing.Optional[str] = None) -> str:
        """Render the live run's text dashboard."""
        from repro.obs.dashboard import render_dashboard

        return render_dashboard(self.data(), job=job)


__all__ = [
    "BurnRateRule",
    "CausalTracer",
    "Counter",
    "Gauge",
    "LatencyHistogram",
    "MetricsRegistry",
    "NOOP_SPAN",
    "Observability",
    "SloTracker",
    "Span",
    "TelemetryHub",
    "TimeWeightedHistogram",
    "Timeline",
    "WindowedSeries",
]
