"""Text dashboard over a run's observability data.

Renders the cross-layer view Challenge 8(1) asks for, from either a
live :class:`~repro.obs.Observability` snapshot or a loaded JSONL export
(:func:`repro.obs.export.load_jsonl`): per-job makespans and handover
economics, critical-path attribution (where each job's wall-clock went,
from the causal DAG), stragglers, SLO budget state, per-device
utilization timelines (unicode sparklines over the occupancy change
points), per-link bytes, and trace-ring health.
"""

from __future__ import annotations

import typing

from repro.metrics.report import Table, format_bytes, format_ns
from repro.obs.causal import (
    BUCKETS,
    JobGraph,
    attribute_job,
    detect_stragglers,
)

_BLOCKS = " ▁▂▃▄▅▆▇█"

#: Decode of the ``fed.rack.state/<name>`` gauge — mirrors
#: :data:`repro.federation.registry.STATE_ORDER` (kept literal here so
#: loading a JSONL export never imports the federation package).
_FED_STATES = ("up", "degraded", "draining", "down")

#: Column headers for the attribution table, in BUCKETS order.
_BUCKET_SHORT = {
    "dependency_wait": "dep",
    "queue_wait": "queue",
    "compute": "compute",
    "transfer": "xfer",
    "ownership_stall": "own",
    "recovery_retry": "recov",
    "preemption": "prmpt",
    "admission_backoff": "adm",
    "unattributed": "other",
}


def sparkline(
    samples: typing.Sequence[typing.Sequence[float]],
    width: int = 40,
    until: typing.Optional[float] = None,
    peak: typing.Optional[float] = None,
) -> str:
    """A piecewise-constant ``[(time, level), ...]`` series as blocks.

    The series is resampled onto ``width`` equal time columns between
    the first change point and ``until`` (default: the last change
    point); each column shows the level entering it, scaled to ``peak``
    (default: the series max; an explicit ``peak=0`` also falls back to
    the max — a zero scale has no sensible rendering).  Samples are
    sorted by time first, so out-of-order change points (e.g. merged
    from multiple sources) render the same as their sorted equivalent.
    A single sample (or ``until`` at/before the first change point)
    collapses to one block showing whether the level is nonzero.
    """
    if not samples:
        return ""
    samples = sorted(samples, key=lambda sample: sample[0])
    t0 = samples[0][0]
    t1 = until if until is not None else samples[-1][0]
    if t1 <= t0:
        # Degenerate window: show the level in effect at the horizon
        # (the last change point at or before it; before the series
        # starts, the first level).
        level = samples[0][1]
        for t, v in samples:
            if t > t1:
                break
            level = v
        return _BLOCKS[-1] if level > 0 else _BLOCKS[0]
    top = peak if peak not in (None, 0) else max(v for _t, v in samples) or 1.0
    cells = []
    idx = 0
    level = samples[0][1]
    for col in range(width):
        t = t0 + (t1 - t0) * col / width
        while idx + 1 < len(samples) and samples[idx + 1][0] <= t:
            idx += 1
            level = samples[idx][1]
        frac = min(1.0, max(0.0, level / top))
        cells.append(_BLOCKS[round(frac * (len(_BLOCKS) - 1))])
    return "".join(cells)


def _metric_value(metrics: dict, name: str, default: float = 0.0) -> float:
    snap = metrics.get(name)
    if not snap:
        return default
    return float(snap.get("value", default))


def render_dashboard(
    data: dict,
    job: typing.Optional[str] = None,
    width: int = 40,
) -> str:
    """The run dashboard as aligned text sections.

    ``data`` is ``{"meta": ..., "events": [...], "metrics": {...}}`` —
    the shape produced by :func:`repro.obs.export.load_jsonl` and by
    :meth:`repro.obs.Observability.data`.  ``job`` filters the job table
    to one job name.
    """
    meta = data.get("meta", {})
    events = data.get("events", [])
    metrics = data.get("metrics", {})
    now = float(meta.get("now", 0.0)) or None
    sections = []

    # -- jobs ------------------------------------------------------------
    jobs = Table(
        ["job", "tenant", "ok", "makespan", "tasks", "zero-copy", "copies",
         "bytes copied", "zc ratio"],
        title="Jobs",
    )
    job_rows = 0
    for event in events:
        if event.get("cat") != "job" or event.get("name") != "run":
            continue
        fields = event.get("fields", {})
        if job is not None and fields.get("job") != job:
            continue
        zc = int(fields.get("zero_copy", 0))
        cp = int(fields.get("copies", 0))
        ratio = zc / (zc + cp) if (zc + cp) else 0.0
        jobs.add_row(
            fields.get("job", "?"),
            fields.get("tenant", "-"),
            "yes" if fields.get("ok", True) else "FAILED",
            format_ns(float(event.get("t", 0.0)) - float(event.get("begin", 0.0))),
            fields.get("tasks", ""),
            zc, cp, format_bytes(float(fields.get("bytes_copied", 0.0))),
            f"{ratio:.0%}",
        )
        job_rows += 1
    if job_rows:
        sections.append(jobs.render())

    # -- critical-path attribution ---------------------------------------
    attributions = []
    for graph_data in (data.get("causal") or {}).get("jobs", {}).values():
        if job is not None and graph_data.get("job") != job:
            continue
        att = attribute_job(JobGraph.from_dict(graph_data))
        if att is not None:
            attributions.append(att)
    if attributions:
        att_table = Table(
            ["job", "tenant", "ok", "makespan"]
            + [_BUCKET_SHORT[b] for b in BUCKETS],
            title="Critical-path attribution (% of makespan)",
        )
        for att in attributions:
            makespan = att["makespan"] or 1.0
            att_table.add_row(
                att["job"],
                att.get("fields", {}).get("tenant", "-"),
                "yes" if att["ok"] else "FAILED",
                format_ns(att["makespan"]),
                *[f"{100.0 * att['buckets'][b] / makespan:.0f}%"
                  for b in BUCKETS],
            )
        sections.append(att_table.render())

        flagged = detect_stragglers(attributions)
        if flagged:
            straggler_table = Table(
                ["scope", "job", "bucket", "culprit", "time", "share",
                 "cohort median"],
                title="Stragglers (robust outliers in their phase cohort)",
            )
            for entry in flagged[:10]:
                straggler_table.add_row(
                    entry["scope"], entry["job"], entry["bucket"],
                    entry["task"] or entry["device"],
                    format_ns(entry["ns"]), f"{entry['share']:.0%}",
                    format_ns(entry["cohort_median"]),
                )
            sections.append(straggler_table.render())

    # -- SLO budgets -----------------------------------------------------
    slo = data.get("slo") or {}
    slo_rows = [
        snap for workload, snap in sorted(slo.items())
        if job is None or workload == job or workload == f"{job}@e2e"
    ]
    if slo_rows:
        slo_table = Table(
            ["workload", "n", "p50", "p95", "p99", "worst", "target",
             "miss", "budget left", "burn"],
            title="SLO",
        )
        for snap in slo_rows:
            has_policy = "target_ns" in snap
            slo_table.add_row(
                snap["workload"], snap["total"],
                format_ns(float(snap.get("p50", 0.0))),
                format_ns(float(snap.get("p95", 0.0))),
                format_ns(float(snap.get("p99", 0.0))),
                format_ns(float(snap.get("worst_ns", 0.0))),
                format_ns(float(snap["target_ns"])) if has_policy else "-",
                f"{snap['miss_fraction']:.1%}" if has_policy else "-",
                f"{snap['budget_remaining']:.0%}" if has_policy else "-",
                f"{snap['burn_rate']:.2f}" if has_policy else "-",
            )
        sections.append(slo_table.render())

    # -- tenants ----------------------------------------------------------
    tenant_names = sorted({
        name.split("/", 1)[1]
        for name in metrics
        if name.startswith("tenant.") and "/" in name
    })
    # A lone default tenant is the single-tenant degenerate case; the
    # table only earns its lines when QoS is actually in play.
    if tenant_names and tenant_names != ["default"]:
        tenants = Table(
            ["tenant", "weight", "share", "served", "submitted", "admitted",
             "shed", "preempted", "won"],
            title="Tenants (fair-share and preemption accounting)",
        )
        for name in tenant_names:
            tenants.add_row(
                name,
                f"{_metric_value(metrics, f'tenant.weight/{name}', 1.0):g}",
                f"{_metric_value(metrics, f'tenant.share/{name}'):.0%}",
                format_ns(_metric_value(metrics, f"tenant.served_ns/{name}")),
                int(_metric_value(metrics, f"tenant.submitted/{name}")),
                int(_metric_value(metrics, f"tenant.admitted/{name}")),
                int(_metric_value(metrics, f"tenant.shed/{name}")),
                int(_metric_value(metrics, f"tenant.preempted/{name}")),
                int(_metric_value(metrics, f"tenant.preemptions_won/{name}")),
            )
        sections.append(tenants.render())

    # -- federation (router + per-rack gauges) ----------------------------
    rack_names = sorted({
        name.split("/", 1)[1]
        for name in metrics
        if name.startswith("fed.rack.state/")
    })
    if rack_names:
        fed_table = Table(
            ["rack", "state", "health", "load", "queued", "running",
             "routed"],
            title="Federation racks",
        )
        for name in rack_names:
            state_idx = int(_metric_value(metrics, f"fed.rack.state/{name}"))
            state = (
                _FED_STATES[state_idx]
                if 0 <= state_idx < len(_FED_STATES) else "?"
            )
            fed_table.add_row(
                name, state,
                f"{_metric_value(metrics, f'fed.rack.health/{name}'):.0%}",
                f"{_metric_value(metrics, f'fed.rack.load/{name}'):.2f}",
                int(_metric_value(metrics, f"fed.rack.queued/{name}")),
                int(_metric_value(metrics, f"fed.rack.running/{name}")),
                int(_metric_value(metrics, f"fed.routed/{name}")),
            )
        sections.append(fed_table.render())
    if _metric_value(metrics, "fed.routed") or _metric_value(metrics, "fed.sheds"):
        routing = Table(
            ["routed", "spills", "sheds", "cross-rack fetches",
             "cross-rack bytes"],
            title="Federation routing decisions",
        )
        routing.add_row(
            int(_metric_value(metrics, "fed.routed")),
            int(_metric_value(metrics, "fed.spills")),
            int(_metric_value(metrics, "fed.sheds")),
            int(_metric_value(metrics, "fed.cross_rack_fetches")),
            format_bytes(_metric_value(metrics, "fed.cross_rack_bytes")),
        )
        sections.append(routing.render())

    # -- per-device utilization timelines --------------------------------
    util = Table(["device", f"occupancy timeline (t→{format_ns(now or 0)})",
                  "mean", "peak", "history"],
                 title="Device utilization")
    util_rows = 0
    for name in sorted(metrics):
        if not name.startswith("device.occupancy/"):
            continue
        snap = metrics[name]
        samples = snap.get("samples", [])
        tl_dropped = int(snap.get("dropped", 0))
        util.add_row(
            name.split("/", 1)[1],
            sparkline(samples, width=width, until=now),
            f"{float(snap.get('mean', 0.0)):.2f}",
            f"{float(snap.get('max', 0.0)):g}",
            # A truncated ring means the sparkline only shows the tail
            # of the run; say so instead of dropping silently.
            f"TRUNCATED (-{tl_dropped})" if tl_dropped else "full",
        )
        util_rows += 1
    if util_rows:
        sections.append(util.render())

    # -- per-link bytes ---------------------------------------------------
    links = Table(["link", "bytes carried"], title="Fabric links")
    link_rows = []
    for name in metrics:
        if name.startswith("link.bytes/"):
            link_rows.append((name.split("/", 1)[1], _metric_value(metrics, name)))
    link_rows.sort(key=lambda kv: -kv[1])
    for link_name, nbytes in link_rows:
        links.add_row(link_name, format_bytes(nbytes))
    if link_rows:
        sections.append(links.render())

    # -- handover economics ----------------------------------------------
    zc = _metric_value(metrics, "handover.zero_copy")
    cp = _metric_value(metrics, "handover.copies")
    if zc or cp:
        handover = Table(["zero-copy", "copies", "bytes copied", "zc ratio"],
                         title="Handover (whole run)")
        handover.add_row(
            int(zc), int(cp),
            format_bytes(_metric_value(metrics, "handover.bytes_copied")),
            f"{zc / (zc + cp):.0%}" if (zc + cp) else "n/a",
        )
        sections.append(handover.render())

    # -- gray-failure mitigation -----------------------------------------
    hedges = _metric_value(metrics, "hedge.launched")
    degradations = _metric_value(metrics, "health.degraded_events")
    if hedges or degradations:
        gray = Table(
            ["degraded events", "hedges launched", "hedges won",
             "hedge wasted bytes", "budget denials"],
            title="Gray-failure mitigation",
        )
        gray.add_row(
            int(degradations),
            int(hedges),
            int(_metric_value(metrics, "hedge.won")),
            format_bytes(_metric_value(metrics, "hedge.wasted_bytes")),
            int(_metric_value(metrics, "recovery.budget_denied")),
        )
        sections.append(gray.render())

    # -- continuous telemetry (windowed series) ---------------------------
    telemetry = data.get("telemetry") or {}
    series = telemetry.get("series") or {}
    if series:
        telem_table = Table(
            ["series", "kind", "last windows (mean)", "last", "windows",
             "history"],
            title="Telemetry (per-window, width "
                  f"{format_ns(float(telemetry.get('window_ns') or 0))})",
        )
        for name in sorted(series):
            snap = series[name]
            windows = snap.get("windows", [])
            if not windows:
                continue
            # Per-workload SLO series honor the job filter like the SLO
            # table does; cluster-wide series always show.
            if job is not None and "/" in name:
                workload = name.split("/", 1)[1]
                if workload not in (job, f"{job}@e2e") and not (
                    workload.startswith("tenant:")
                ):
                    continue
            kind = snap.get("kind", "?")
            key = "rate" if kind == "rate" else "mean"
            values = [float(w.get(key, 0.0)) for w in windows]
            points = [[i, v] for i, v in enumerate(values)]
            dropped_w = int(snap.get("dropped", 0))
            telem_table.add_row(
                name, kind,
                sparkline(points, width=min(width, len(values))),
                f"{values[-1]:.4g}",
                len(windows),
                f"TRUNCATED (-{dropped_w})" if dropped_w else "full",
            )
        sections.append(telem_table.render())

    # -- burn-rate alerts --------------------------------------------------
    alerts = telemetry.get("alerts") or {}
    if alerts.get("opened"):
        alert_table = Table(
            ["workload", "scope", "opened", "closed", "duration",
             "peak burn"],
            title="Burn-rate alerts",
        )
        for entry in list(alerts.get("log", [])) + list(
            alerts.get("active", [])
        ):
            workload = entry.get("workload", "?")
            if job is not None and workload not in (
                job, f"{job}@e2e"
            ) and not workload.startswith("tenant:"):
                continue
            closed_at = entry.get("closed_at")
            alert_table.add_row(
                entry.get("workload", "?"), entry.get("scope") or "-",
                format_ns(float(entry.get("opened_at", 0.0))),
                format_ns(float(closed_at)) if closed_at is not None
                else "OPEN",
                format_ns(float(closed_at) - float(entry["opened_at"]))
                if closed_at is not None else "-",
                f"{float(entry.get('peak_burn', 0.0)):.2f}",
            )
        sections.append(alert_table.render())

    # -- sampled hotness ---------------------------------------------------
    hotness = telemetry.get("hotness") or {}
    if hotness.get("sampled"):
        hot_table = Table(
            ["rank", "region", "est. bytes", "device", "est. bytes "],
            title=f"Hotness (sampled 1/{hotness.get('rate', '?')}, "
                  f"{hotness.get('sampled', 0)}/{hotness.get('seen', 0)} "
                  "accesses sampled)",
        )
        regions = hotness.get("regions", [])
        devices = hotness.get("devices", [])
        for i in range(min(8, max(len(regions), len(devices)))):
            region = regions[i] if i < len(regions) else ("-", 0.0)
            device = devices[i] if i < len(devices) else ("-", 0.0)
            hot_table.add_row(
                i + 1,
                region[0], format_bytes(float(region[1])),
                device[0], format_bytes(float(device[1])),
            )
        sections.append(hot_table.render())

    # -- trace-ring health ------------------------------------------------
    dropped = meta.get("dropped", {})
    retained = meta.get("retained", {})
    if retained or dropped:
        health = Table(["category", "retained", "dropped", "history"],
                       title="Trace rings")
        for category in sorted(set(retained) | set(dropped)):
            n_dropped = dropped.get(category, 0)
            health.add_row(category, retained.get(category, 0),
                           n_dropped,
                           "TRUNCATED" if n_dropped else "full")
        sections.append(health.render())

    if not sections:
        return "(no observability data recorded)"
    return "\n\n".join(sections)
