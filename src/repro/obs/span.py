"""Span-based tracing: nested timed scopes across abstraction layers.

A span is a named, timed scope with structured fields and a parent
link, forming the job → task → region/phase → device tree the paper's
Challenge 8(1) asks for.  Spans are emitted into the bounded
:class:`~repro.sim.trace.TraceLog` as *span-complete* events (one event
at close carrying ``begin`` and the span/parent ids), which maps 1:1
onto Chrome/Perfetto ``"X"`` duration events.

Two usage styles:

* scoped (single generator frame)::

      with obs.span("profile", "memory_phase", parent=task_span) as sp:
          ...
          if sp:
              sp.set(nbytes=n, duration=total)

* explicit begin/close (scope crosses simulation processes)::

      span = obs.begin_span("job", "run", job=name)
      ...
      span.set(ok=True)
      span.close()

When a span's category is disabled, :meth:`Observability.span` returns
the shared :data:`NOOP_SPAN` — falsy, stateless, reentrant — so the
disabled path allocates nothing and call sites can guard field
construction with ``if sp:``.
"""

from __future__ import annotations

import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs import Observability


class _NoopSpan:
    """Shared do-nothing span for disabled categories."""

    __slots__ = ()

    id = 0
    closed = True

    def __bool__(self) -> bool:
        return False

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **fields) -> None:
        pass

    def close(self, time: typing.Optional[float] = None) -> None:
        pass


NOOP_SPAN = _NoopSpan()


class Span:
    """One live timed scope; emits a span-complete event when closed."""

    __slots__ = ("obs", "category", "name", "fields", "begin", "id",
                 "parent_id", "closed")

    def __init__(
        self,
        obs: "Observability",
        category: str,
        name: str,
        fields: typing.Dict[str, object],
        parent: typing.Union["Span", int, None] = None,
    ):
        self.obs = obs
        self.category = category
        self.name = name
        self.fields = fields
        self.id = obs._next_span_id()
        if parent is None:
            stack = obs._stack
            self.parent_id = stack[-1].id if stack else 0
        elif isinstance(parent, int):
            self.parent_id = parent
        else:
            self.parent_id = parent.id
        self.begin = obs.now()
        self.closed = False

    def __bool__(self) -> bool:
        return True

    def set(self, **fields) -> None:
        """Attach/overwrite structured fields before the span closes."""
        self.fields.update(fields)

    def close(self, time: typing.Optional[float] = None) -> None:
        """Emit the span-complete event (idempotent).

        An explicit ``time`` earlier than ``begin`` is clamped to the
        begin time: a span can be empty, never negative (a negative
        duration renders as garbage in Chrome/Perfetto and corrupts
        per-bucket attribution downstream).
        """
        if self.closed:
            return
        self.closed = True
        end = self.obs.now() if time is None else time
        if end < self.begin:
            end = self.begin
        self.obs.trace.emit_span(
            end, self.category, self.name, self.fields,
            begin=self.begin, span_id=self.id, parent_id=self.parent_id,
        )

    # -- context manager ---------------------------------------------------

    def __enter__(self) -> "Span":
        self.obs._stack.append(self)
        return self

    def __exit__(self, exc_type, exc, _tb) -> bool:
        # Remove *this* span (not a blind pop): interleaved simulation
        # processes may have pushed their own spans in the meantime.
        stack = self.obs._stack
        if stack and stack[-1] is self:
            stack.pop()
        elif self in stack:
            stack.remove(self)
        if exc is not None and "error" not in self.fields:
            self.fields["error"] = repr(exc)
        self.close()
        return False
