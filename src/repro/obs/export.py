"""Exporters: JSONL run dumps and Chrome/Perfetto ``trace_event`` JSON.

The JSONL format is the interchange between a run and post-hoc tooling
(``scripts/obs_report.py``, notebooks): one self-describing JSON object
per line, with three record kinds —

* ``{"kind": "meta", ...}`` — clock, trace ring health (drop counts);
* ``{"kind": "event", ...}`` — one trace event (spans carry ``begin``);
* ``{"kind": "metric", ...}`` — one metric snapshot from the registry.

The Chrome exporter turns span-complete events into ``"X"`` duration
events grouped into rows by task (or category), loadable in
chrome://tracing or https://ui.perfetto.dev.
"""

from __future__ import annotations

import json
import typing

from repro.sim.trace import TraceEvent, TraceLog

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs import Observability


def _json_safe(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return str(value)


def event_record(event: TraceEvent) -> dict:
    """One trace event as a JSONL-ready dict."""
    record = {
        "kind": "event",
        "t": event.time,
        "cat": event.category,
        "name": event.name,
        "fields": _json_safe(dict(event.fields)),
    }
    if event.begin is not None:
        record["begin"] = event.begin
        record["span"] = event.span_id
        record["parent"] = event.parent_id
    return record


def write_jsonl(path: str, obs: "Observability") -> int:
    """Dump meta + all retained events + a metrics snapshot as JSONL.

    Returns the number of lines written.
    """
    lines = 0
    with open(path, "w") as handle:
        meta = {
            "kind": "meta",
            "now": obs.now(),
            "dropped": obs.trace.dropped_by_category,
            "retained": {c: obs.trace.retained(c) for c in obs.trace.categories()},
        }
        handle.write(json.dumps(meta) + "\n")
        lines += 1
        for event in obs.trace.events:
            handle.write(json.dumps(event_record(event)) + "\n")
            lines += 1
        for name, snap in sorted(obs.registry.snapshot().items()):
            record = {"kind": "metric", "name": name}
            record.update(_json_safe(snap))
            handle.write(json.dumps(record) + "\n")
            lines += 1
    return lines


def load_jsonl(path: str) -> dict:
    """Parse a JSONL export back into ``{meta, events, metrics}``."""
    meta: dict = {}
    events: typing.List[dict] = []
    metrics: typing.Dict[str, dict] = {}
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.get("kind")
            if kind == "meta":
                meta = record
            elif kind == "event":
                events.append(record)
            elif kind == "metric":
                metrics[record["name"]] = record
    return {"meta": meta, "events": events, "metrics": metrics}


# -- Chrome / Perfetto ----------------------------------------------------


def to_chrome_trace(
    events: typing.Iterable[TraceEvent],
) -> typing.List[dict]:
    """Trace events as Chrome ``trace_event`` dicts.

    Span-complete events become ``"X"`` duration events; instant events
    become ``"i"`` instants.  Rows ("threads") are keyed by the event's
    ``task`` field when present, else its category, so job runs render
    as one row per task with nested phases.  Simulated nanoseconds map
    to trace microseconds so sub-µs phases stay visible.
    """
    out: typing.List[dict] = []
    tids: typing.Dict[str, int] = {}

    def tid_for(key: str) -> int:
        if key not in tids:
            tids[key] = len(tids) + 1
            out.append({
                "name": "thread_name", "ph": "M", "pid": 1,
                "tid": tids[key], "args": {"name": key},
            })
        return tids[key]

    for event in events:
        row = str(event.fields.get("task", "")) or event.category
        tid = tid_for(row)
        args = {str(k): _json_safe(v) for k, v in event.fields.items()}
        if event.begin is not None:
            out.append({
                "name": event.name, "cat": event.category, "ph": "X",
                "pid": 1, "tid": tid, "ts": event.begin,
                "dur": event.time - event.begin, "args": args,
            })
        else:
            out.append({
                "name": event.name, "cat": event.category, "ph": "i",
                "pid": 1, "tid": tid, "ts": event.time, "s": "t",
                "args": args,
            })
    return out


def write_chrome_trace(path: str, trace: TraceLog) -> None:
    """Dump the whole retained trace for chrome://tracing / Perfetto."""
    with open(path, "w") as handle:
        json.dump(
            {"traceEvents": to_chrome_trace(trace.events),
             "displayTimeUnit": "ns"},
            handle,
        )
