"""Exporters: JSONL run dumps and Chrome/Perfetto ``trace_event`` JSON.

The JSONL format is the interchange between a run and post-hoc tooling
(``scripts/obs_report.py``, notebooks): one self-describing JSON object
per line, with three record kinds —

* ``{"kind": "meta", ...}`` — clock, trace ring health (drop counts);
* ``{"kind": "event", ...}`` — one trace event (spans carry ``begin``);
* ``{"kind": "metric", ...}`` — one metric snapshot from the registry;
* ``{"kind": "causal", ...}`` — one job's causal DAG
  (``JobGraph.to_dict()`` shape, consumed by
  ``scripts/critical_path_report.py``);
* ``{"kind": "causal_meta", ...}`` — tracer-level fault/rejection log;
* ``{"kind": "slo", ...}`` — one workload's SLO snapshot;
* ``{"kind": "telemetry_meta", ...}`` — hub config + self-metering;
* ``{"kind": "telemetry_series", ...}`` — one windowed series (its
  retained per-window stats, consumed by ``scripts/telemetry_report.py``);
* ``{"kind": "telemetry_alerts", ...}`` — burn-rate rules + alert log;
* ``{"kind": "telemetry_hotness", ...}`` — the sampled top-k estimate.

The Chrome exporter turns span-complete events into ``"X"`` duration
events grouped into rows by task (or category), loadable in
chrome://tracing or https://ui.perfetto.dev.  When a causal dump is
supplied, every causal edge additionally becomes a Perfetto **flow**
(``"s"``/``"f"`` event pair), so the UI draws arrows along the critical
path.
"""

from __future__ import annotations

import json
import typing

from repro.sim.trace import TraceEvent, TraceLog

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs import Observability


def _json_safe(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return str(value)


def event_record(event: TraceEvent) -> dict:
    """One trace event as a JSONL-ready dict."""
    record = {
        "kind": "event",
        "t": event.time,
        "cat": event.category,
        "name": event.name,
        "fields": _json_safe(dict(event.fields)),
    }
    if event.begin is not None:
        record["begin"] = event.begin
        record["span"] = event.span_id
        record["parent"] = event.parent_id
    return record


def write_jsonl(path: str, obs: "Observability") -> int:
    """Dump meta + all retained events + a metrics snapshot as JSONL.

    Returns the number of lines written.
    """
    lines = 0
    with open(path, "w") as handle:
        meta = {
            "kind": "meta",
            "now": obs.now(),
            "dropped": obs.trace.dropped_by_category,
            "retained": {c: obs.trace.retained(c) for c in obs.trace.categories()},
        }
        handle.write(json.dumps(meta) + "\n")
        lines += 1
        for event in obs.trace.events:
            handle.write(json.dumps(event_record(event)) + "\n")
            lines += 1
        for name, snap in sorted(obs.registry.snapshot().items()):
            record = {"kind": "metric", "name": name}
            record.update(_json_safe(snap))
            handle.write(json.dumps(record) + "\n")
            lines += 1
        causal = obs.causal.data()
        for graph in causal["jobs"].values():
            record = {"kind": "causal"}
            record.update(_json_safe(graph))
            handle.write(json.dumps(record) + "\n")
            lines += 1
        if causal["faults"] or causal["dropped_jobs"] or causal["rejections"]:
            handle.write(json.dumps({
                "kind": "causal_meta",
                "dropped_jobs": causal["dropped_jobs"],
                "rejections": causal["rejections"],
                "faults": _json_safe(causal["faults"]),
            }) + "\n")
            lines += 1
        for workload, snap in sorted(obs.slo.snapshot().items()):
            record = {"kind": "slo", "workload": workload}
            record.update(_json_safe(snap))
            handle.write(json.dumps(record) + "\n")
            lines += 1
        telemetry = obs.telemetry.data()
        handle.write(json.dumps({
            "kind": "telemetry_meta",
            "window_ns": telemetry["window_ns"],
            "self": _json_safe(telemetry["self"]),
        }) + "\n")
        lines += 1
        for name, series in sorted(telemetry["series"].items()):
            record = {"kind": "telemetry_series", "name": name}
            payload = _json_safe(series)
            # The snapshot's own "kind" (sample/level/rate) must not
            # clobber the record kind; load_jsonl restores it.
            payload["series_kind"] = payload.pop("kind", "?")
            record.update(payload)
            handle.write(json.dumps(record) + "\n")
            lines += 1
        alerts = telemetry["alerts"]
        if alerts["rules"] or alerts["opened"]:
            record = {"kind": "telemetry_alerts"}
            record.update(_json_safe(alerts))
            handle.write(json.dumps(record) + "\n")
            lines += 1
        hotness = telemetry["hotness"]
        if hotness["seen"]:
            record = {"kind": "telemetry_hotness"}
            record.update(_json_safe(hotness))
            handle.write(json.dumps(record) + "\n")
            lines += 1
    return lines


def load_jsonl(path: str) -> dict:
    """Parse a JSONL export back into
    ``{meta, events, metrics, causal, slo, telemetry}``."""
    meta: dict = {}
    events: typing.List[dict] = []
    metrics: typing.Dict[str, dict] = {}
    causal: dict = {"jobs": {}, "dropped_jobs": 0, "rejections": 0,
                    "faults": []}
    slo: typing.Dict[str, dict] = {}
    telemetry: dict = {
        "window_ns": None, "series": {},
        "alerts": {"opened": 0, "closed": 0, "rules": {}, "log": [],
                   "active": []},
        "hotness": {"seen": 0, "sampled": 0, "regions": [], "devices": []},
        "self": {},
    }
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.get("kind")
            if kind == "meta":
                meta = record
            elif kind == "event":
                events.append(record)
            elif kind == "metric":
                metrics[record["name"]] = record
            elif kind == "causal":
                causal["jobs"][record["key"]] = record
            elif kind == "causal_meta":
                causal["dropped_jobs"] = record.get("dropped_jobs", 0)
                causal["rejections"] = record.get("rejections", 0)
                causal["faults"] = record.get("faults", [])
            elif kind == "slo":
                slo[record["workload"]] = record
            elif kind == "telemetry_meta":
                telemetry["window_ns"] = record.get("window_ns")
                telemetry["self"] = record.get("self", {})
            elif kind == "telemetry_series":
                snap = dict(record)
                snap["kind"] = snap.pop("series_kind", "?")
                telemetry["series"][record["name"]] = snap
            elif kind == "telemetry_alerts":
                telemetry["alerts"] = record
            elif kind == "telemetry_hotness":
                telemetry["hotness"] = record
    return {"meta": meta, "events": events, "metrics": metrics,
            "causal": causal, "slo": slo, "telemetry": telemetry}


# -- Chrome / Perfetto ----------------------------------------------------


def _tid_allocator(out: typing.List[dict], tids: typing.Dict[str, int]):
    """Row ("thread") allocator shared between exporters: first use of a
    key emits its ``thread_name`` metadata record."""

    def tid_for(key: str) -> int:
        if key not in tids:
            tids[key] = len(tids) + 1
            out.append({
                "name": "thread_name", "ph": "M", "pid": 1,
                "tid": tids[key], "args": {"name": key},
            })
        return tids[key]

    return tid_for


def to_chrome_trace(
    events: typing.Iterable[TraceEvent],
    _tid_for=None,
    _out: typing.Optional[typing.List[dict]] = None,
) -> typing.List[dict]:
    """Trace events as Chrome ``trace_event`` dicts.

    Span-complete events become ``"X"`` duration events; instant events
    become ``"i"`` instants.  Rows ("threads") are keyed by the event's
    ``task`` field when present, else its category, so job runs render
    as one row per task with nested phases.  Simulated nanoseconds map
    to trace microseconds so sub-µs phases stay visible.
    """
    out: typing.List[dict] = _out if _out is not None else []
    tid_for = _tid_for or _tid_allocator(out, {})

    for event in events:
        row = str(event.fields.get("task", "")) or event.category
        tid = tid_for(row)
        args = {str(k): _json_safe(v) for k, v in event.fields.items()}
        if event.begin is not None:
            out.append({
                "name": event.name, "cat": event.category, "ph": "X",
                "pid": 1, "tid": tid, "ts": event.begin,
                "dur": event.time - event.begin, "args": args,
            })
        else:
            out.append({
                "name": event.name, "cat": event.category, "ph": "i",
                "pid": 1, "tid": tid, "ts": event.time, "s": "t",
                "args": args,
            })
    return out


def causal_flow_events(
    causal: dict,
    _tid_for=None,
    _out: typing.Optional[typing.List[dict]] = None,
) -> typing.List[dict]:
    """Causal DAGs as Perfetto slices plus ``"s"``/``"f"`` flow events.

    ``causal`` is ``CausalTracer.data()`` (or the ``causal`` section of
    a loaded JSONL export).  Each node becomes an ``"X"`` slice on a
    ``causal:<job>/<task>`` row; each edge becomes a flow arrow from the
    source node's end to the destination node's begin, so the UI draws
    the cross-task/cross-layer causality the span tree cannot show.
    """
    out: typing.List[dict] = _out if _out is not None else []
    tid_for = _tid_for or _tid_allocator(out, {})
    flow_id = 0
    for key, graph in (causal.get("jobs") or {}).items():
        job = graph.get("job", key)
        rows: typing.Dict[int, int] = {}
        nodes: typing.Dict[int, list] = {}
        for node in graph.get("nodes", []):
            nid, kind, bucket, begin, end, task, device, fields = node
            nodes[nid] = node
            tid = tid_for(f"causal:{job}/{task or kind}")
            rows[nid] = tid
            out.append({
                "name": kind, "cat": "causal", "ph": "X", "pid": 1,
                "tid": tid, "ts": begin, "dur": max(end - begin, 0.001),
                "args": _json_safe({
                    "bucket": bucket, "node": nid, "device": device,
                    "job": job, **(fields or {}),
                }),
            })
        for src, dst, edge_kind in graph.get("edges", []):
            if src not in nodes or dst not in nodes:
                continue
            flow_id += 1
            fid = f"{key}#{flow_id}"
            src_end = nodes[src][4]
            dst_begin = max(nodes[dst][3], src_end)
            out.append({
                "name": edge_kind, "cat": "causal", "ph": "s",
                "pid": 1, "tid": rows[src], "ts": src_end, "id": fid,
            })
            out.append({
                "name": edge_kind, "cat": "causal", "ph": "f", "bp": "e",
                "pid": 1, "tid": rows[dst], "ts": dst_begin, "id": fid,
            })
    return out


def write_chrome_trace(
    path: str, trace: TraceLog, causal: typing.Optional[dict] = None
) -> None:
    """Dump the whole retained trace for chrome://tracing / Perfetto.

    With a ``causal`` dump, the file additionally carries the causal
    DAG rows and flow arrows (see :func:`causal_flow_events`).
    """
    out: typing.List[dict] = []
    tid_for = _tid_allocator(out, {})
    to_chrome_trace(trace.events, _tid_for=tid_for, _out=out)
    if causal:
        causal_flow_events(causal, _tid_for=tid_for, _out=out)
    with open(path, "w") as handle:
        json.dump(
            {"traceEvents": out, "displayTimeUnit": "ns"},
            handle,
        )
