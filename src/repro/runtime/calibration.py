"""Cost-model calibration from observed executions.

The paper points at LingoDB (§3): *"it is feasible to provide the
compiler with various statistics to make cost-based transformations and
data and task placement decisions"*.  Our analytic cost model is exact
for uncontended runs by construction (it shares ``access_plan`` with
the simulator), but it cannot see **contention** — concurrent jobs
sharing links and device ports.  :class:`CalibratedCostModel` closes
that loop: it compares its own predictions against profiled phase
durations and maintains per-``(device, op-class)`` and
per-``(observer, backing-device)`` correction factors (EWMA), so a
runtime that keeps observing its own workload predicts that workload's
contention-inflated costs increasingly well.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.dataflow.graph import Task
from repro.dataflow.workspec import RegionUsage
from repro.hardware.devices import MemoryDevice
from repro.memory.interfaces import AccessMode, AccessPattern
from repro.metrics.profiler import Profile
from repro.runtime.costmodel import CostModel
from repro.runtime.rts import JobStats


@dataclasses.dataclass
class ObservationStats:
    samples: int = 0
    #: mean absolute percentage error of raw vs. corrected predictions,
    #: recomputed over everything observed so far.
    raw_error_sum: float = 0.0
    corrected_error_sum: float = 0.0

    @property
    def raw_mape(self) -> float:
        return self.raw_error_sum / self.samples if self.samples else 0.0

    @property
    def corrected_mape(self) -> float:
        return self.corrected_error_sum / self.samples if self.samples else 0.0


class CalibratedCostModel(CostModel):
    """A cost model that learns correction factors from profiles."""

    def __init__(self, cluster, alpha: float = 0.3):
        super().__init__(cluster)
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        #: ('compute', device, op) or ('memory', observer, backing,
        #: pattern) -> factor.  The pattern is part of the key because
        #: contention hits bandwidth-bound (sequential) phases, while
        #: latency-bound (random) phases barely notice it.
        self._corrections: typing.Dict[tuple, float] = {}
        self.stats = ObservationStats()

    # -- corrected estimates -----------------------------------------------

    def _factor(self, key: tuple) -> float:
        return self._corrections.get(key, 1.0)

    def compute_time(self, task: Task, compute_name: str) -> float:
        """Raw compute estimate scaled by any learned correction."""
        raw = super().compute_time(task, compute_name)
        if raw in (0.0, float("inf")):
            return raw
        return raw * self._factor(("compute", compute_name, task.work.op_class))

    def access_time(
        self,
        observer: str,
        device: MemoryDevice,
        usage: RegionUsage,
        is_write: bool = False,
        mode: typing.Optional[AccessMode] = None,
    ) -> float:
        """Raw access estimate scaled by the learned contention factor."""
        raw = super().access_time(observer, device, usage, is_write, mode)
        if raw in (0.0, float("inf")):
            return raw
        key = ("memory", observer, device.name, usage.pattern.value)
        return raw * self._factor(key)

    # -- learning --------------------------------------------------------

    def observe(self, profile: Profile, stats: JobStats) -> int:
        """Fold one profiled run into the correction factors.

        Returns the number of phase observations consumed.
        """
        consumed = 0
        for phase in profile.phases:
            if phase.duration <= 0:
                continue
            task_name = phase.task
            if task_name not in stats.assignment:
                continue
            compute_name = stats.assignment[task_name]
            if phase.kind in ("read", "write"):
                # Compute phases are exact by construction (simulator and
                # model share the same throughput tables); only memory
                # phases carry contention to learn from.
                backing = phase.backing
                device = self.cluster.memory.get(backing)
                if device is None or phase.nbytes <= 0:
                    continue
                usage = RegionUsage(
                    size=int(phase.nbytes),
                    pattern=(AccessPattern(phase.pattern) if phase.pattern
                             else AccessPattern.SEQUENTIAL),
                    access_size=phase.access_size,
                )
                raw_predicted = CostModel.access_time(
                    self, compute_name, device, usage,
                    is_write=(phase.kind == "write"),
                )
                if raw_predicted in (0.0, float("inf")):
                    continue
                key = ("memory", compute_name, backing, usage.pattern.value)
                self._learn(key, phase.duration / raw_predicted,
                            raw_predicted=raw_predicted,
                            observed=phase.duration)
                consumed += 1
        return consumed

    def _learn(self, key: tuple, ratio: float, raw_predicted: float,
               observed: float) -> None:
        corrected_predicted = raw_predicted * self._factor(key)
        self.stats.samples += 1
        self.stats.raw_error_sum += abs(raw_predicted - observed) / observed
        self.stats.corrected_error_sum += (
            abs(corrected_predicted - observed) / observed
        )
        previous = self._corrections.get(key, 1.0)
        self._corrections[key] = (1 - self.alpha) * previous + self.alpha * ratio

    def corrections(self) -> typing.Dict[tuple, float]:
        """A copy of the learned correction-factor table."""
        return dict(self._corrections)
