"""Baseline runtime configurations the paper argues against.

The paper's premise: "Traditionally, a developer has to explicitly
place data on a memory device and specify which accelerator performs
the computation" (§1).  These factories build RuntimeSystem instances
embodying that tradition, so every benchmark can compare

* ``declarative(cluster)`` — the paper's model (property-driven
  placement + cost-model scheduling + ownership handover),
* ``naive(cluster)`` — a developer with no topology knowledge: random
  feasible placement, random feasible scheduling,
* ``static(cluster, kind_map)`` — the classic explicit model: a fixed
  region-type→device-kind map and a fixed or round-robin task mapping,
* ``local_only(cluster, dram_name)`` — the process-centric model: all
  data in one node's DRAM regardless of who computes.
"""

from __future__ import annotations

import typing

from repro.hardware.cluster import Cluster
from repro.hardware.devices import MemoryDevice
from repro.hardware.spec import MemoryKind
from repro.memory.manager import PlacementError
from repro.memory.region import MemoryRegion
from repro.runtime.placement import (
    DeclarativePlacement,
    NaivePlacement,
    PlacementPolicy,
    PlacementRequest,
    StaticKindPlacement,
)
from repro.runtime.rts import RuntimeSystem
from repro.runtime.scheduler import (
    HeftScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    Scheduler,
)


def declarative(cluster: Cluster) -> RuntimeSystem:
    """The paper's runtime: declarative placement + HEFT scheduling."""
    return RuntimeSystem(cluster)


def naive(cluster: Cluster) -> RuntimeSystem:
    """Topology-oblivious baseline: random placement, random scheduling."""
    rts = RuntimeSystem(cluster, scheduler=RandomScheduler())
    rts.placement = NaivePlacement(cluster, rts.memory, rts.costmodel)
    rts.handover.placement = rts.placement
    return rts


def static(
    cluster: Cluster,
    kind_map: typing.Optional[dict] = None,
    scheduler: typing.Optional[Scheduler] = None,
) -> RuntimeSystem:
    """Traditional explicit model: fixed kind map, cost-blind scheduler."""
    rts = RuntimeSystem(
        cluster, scheduler=scheduler if scheduler is not None else RoundRobinScheduler()
    )
    rts.placement = StaticKindPlacement(
        cluster, rts.memory, rts.costmodel, kind_map=kind_map
    )
    rts.handover.placement = rts.placement
    return rts


class PinnedPlacement(PlacementPolicy):
    """Everything on one named device — the process-centric extreme."""

    def __init__(self, cluster, manager, costmodel, device_name: str):
        super().__init__(cluster, manager, costmodel)
        if device_name not in cluster.memory:
            raise ValueError(f"unknown memory device {device_name!r}")
        self.device_name = device_name

    def choose_device(self, request: PlacementRequest) -> MemoryDevice:
        device = self.cluster.memory[self.device_name]
        if device.failed:
            raise PlacementError(f"{self.device_name} has failed")
        if request.properties.persistent and not device.spec.persistent:
            # The pinned developer keeps persistent data on the first
            # persistent device they can find.
            for fallback in self._alive_devices():
                if fallback.spec.persistent and self._has_room(fallback, request.size):
                    return fallback
            raise PlacementError("no persistent device available")
        if not self._has_room(device, request.size):
            raise PlacementError(f"{self.device_name} is full")
        return device


def local_only(cluster: Cluster, device_name: str) -> RuntimeSystem:
    """Process-centric baseline: all regions pinned to one device."""
    rts = RuntimeSystem(cluster, scheduler=HeftScheduler())
    rts.placement = PinnedPlacement(
        cluster, rts.memory, rts.costmodel, device_name
    )
    rts.handover.placement = rts.placement
    return rts


REGISTRY: typing.Dict[str, typing.Callable[..., RuntimeSystem]] = {
    "declarative": declarative,
    "naive": naive,
    "static": static,
}


def dram_kind_map() -> dict:
    """The 'everything in DRAM' explicit map (the classic default)."""
    from repro.memory.regions import RegionType

    return {rt: MemoryKind.DRAM for rt in RegionType}
