"""Device health tracking and in-flight recovery policy.

Paper §3, Challenge 8: the RTS must survive network errors, corrupted
memory, and planned/unplanned node faults *without* forcing
applications to stop and restart.  This module is the control plane of
that promise:

* :class:`HealthMonitor` subscribes to the cluster's
  :class:`~repro.sim.faults.FaultInjector` and tracks per-device health
  (:class:`HealthState`: UP / SUSPECT / DOWN / DRAINING) with a
  configurable *detection delay* — the simulated gap between a fault
  occurring and the control plane acting on it.  Placement and
  scheduling consult it to exclude unhealthy devices, and repeat
  offenders are blacklisted.
* On confirmed device death the monitor interrupts the task processes
  registered against that device (:meth:`HealthMonitor.watch`), which
  is what lets :class:`~repro.runtime.rts._JobExecution` retry just the
  affected tasks instead of failing the job.
* A planned ``NODE_RESTART`` becomes a *graceful drain*: the node is
  marked DRAINING (no new placements or schedules), running tasks
  finish, live volatile bytes drain away, and only then does the node
  power-cycle (``NODE_REBOOT``).
* :class:`RecoveryPolicy` is the knob set for the data plane: how many
  task attempts, what backoff, and which exception types count as
  *recoverable* infrastructure failures (vs. application bugs, which
  must keep failing the job).
"""

from __future__ import annotations

import collections
import dataclasses
import enum
import typing

from repro.sim.events import Interrupt, Process
from repro.sim.faults import FaultEvent, FaultKind

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hardware.cluster import Cluster


class HealthState(enum.Enum):
    """Control-plane view of one device."""

    UP = "up"
    DEGRADED = "degraded"  # fail-slow suspected from latency evidence
    SUSPECT = "suspect"  # fault reported, detection delay running
    DOWN = "down"  # confirmed dead; tasks interrupted
    DRAINING = "draining"  # planned restart; finishing in-flight work


#: FaultKinds the HealthMonitor deliberately does *not* subscribe to.
#: The exhaustiveness matrix test asserts every FaultKind is either
#: handled or listed here, so a new kind can't silently no-op.
MONITOR_UNHANDLED_KINDS = frozenset({
    FaultKind.NODE_RESTART,  # the cluster's graceful-drain path owns it
    FaultKind.MEMORY_CORRUPTION,  # surfaces as RegionLostError at access
    FaultKind.POWER_OUTAGE,  # cluster clears volatile devices directly
    # Gray failures are detected from *observed timings only* — the
    # monitor never peeks at the injector for these (no cheating).
    FaultKind.LINK_DEGRADED,
    FaultKind.LINK_RESTORED,
    FaultKind.DEVICE_SLOW,
    FaultKind.DEVICE_RESTORED,
})


def _median(ascending: typing.Sequence[float]) -> float:
    """Median of a pre-sorted sequence (0.0 when empty)."""
    n = len(ascending)
    if not n:
        return 0.0
    mid = n // 2
    if n % 2:
        return ascending[mid]
    return 0.5 * (ascending[mid - 1] + ascending[mid])


class DeviceDown(Exception):
    """Delivered (as an :class:`~repro.sim.events.Interrupt` cause) to
    task processes running on a device the monitor confirmed dead."""

    def __init__(self, device: str):
        super().__init__(f"device {device} is down")
        self.device = device


class DeviceDegraded(Exception):
    """Raised by a running task when latency evidence flags its own
    compute device fail-slow mid-phase.

    A gray fault never kills the task, so this is self-inflicted: the
    task aborts its attempt voluntarily and the recovery machinery
    re-places it onto a healthy device — paid for from the job's retry
    budget like any other retry."""

    def __init__(self, device: str):
        super().__init__(f"device {device} is observed fail-slow")
        self.device = device


@dataclasses.dataclass
class HealthStats:
    transitions: int = 0
    crashes_detected: int = 0
    tasks_interrupted: int = 0
    drains_started: int = 0
    drains_completed: int = 0
    drain_time_ns: float = 0.0
    blacklisted: int = 0
    degraded_detected: int = 0
    degradations_cleared: int = 0


@dataclasses.dataclass(frozen=True)
class DegradationPolicy:
    """Evidence thresholds for the fail-slow (gray-failure) detector.

    A target (device or fabric link) is marked DEGRADED only when its
    rolling median observed/expected latency ratio exceeds
    ``degrade_ratio`` *and* it is a robust outlier among its peers
    (median + ``mad_k`` scaled-MAD over peer scores — the same test
    ``obs.causal.detect_stragglers`` applies to tasks).  Hysteresis:
    the mark clears once the rolling median falls to ``clear_ratio``.

    **Probation.**  A flagged target that schedulers and placement
    avoid stops producing evidence, so hysteresis alone would pin it
    DEGRADED forever.  After ``probation_ns`` without fresh slow
    evidence the mark auto-clears (circuit-breaker half-open): the
    target is optimistically re-admitted, and if it is still slow the
    very next observations re-flag it.
    """

    #: Rolling samples kept per target.
    window: int = 32
    #: Minimum samples before a target may be judged either way.
    min_samples: int = 4
    #: Absolute observed/expected median ratio that flags a target.
    degrade_ratio: float = 2.5
    #: Hysteresis: a flagged target clears below this ratio.
    clear_ratio: float = 1.5
    #: Peer-relative gate: score must exceed peer median + mad_k·σ_MAD.
    mad_k: float = 3.0
    #: With fewer judged peers than this, the absolute threshold governs alone.
    min_peers: int = 4
    #: Optimistic re-admit: clear a mark this long (ns) after the last
    #: supporting slow evidence.  ``None`` disables probation.
    probation_ns: typing.Optional[float] = 2_000_000.0


class LatencyScorecard:
    """Rolling observed/expected latency ratios, one window per target.

    Pure evidence store: it is fed by the data plane (transfer and
    compute completions) and never consults the fault injector.
    """

    def __init__(self, window: int = 32):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = int(window)
        self._samples: typing.Dict[str, typing.Deque[float]] = {}

    def observe(self, name: str, observed_ns: float, expected_ns: float) -> None:
        """Record one observed-vs-expected duration for ``name``."""
        if expected_ns <= 0.0 or observed_ns < 0.0:
            return
        window = self._samples.get(name)
        if window is None:
            window = self._samples[name] = collections.deque(maxlen=self.window)
        window.append(observed_ns / expected_ns)

    def samples(self, name: str) -> int:
        """How many latency ratios are currently windowed for ``name``."""
        return len(self._samples.get(name, ()))

    def score(self, name: str) -> typing.Optional[float]:
        """Rolling median ratio for ``name`` (None without evidence)."""
        window = self._samples.get(name)
        if not window:
            return None
        return _median(sorted(window))

    def ratio_quantile(self, name: str, q: float) -> typing.Optional[float]:
        """Linear-interpolation quantile of ``name``'s ratio window."""
        window = self._samples.get(name)
        if not window:
            return None
        ordered = sorted(window)
        if q <= 0.0:
            return ordered[0]
        if q >= 1.0:
            return ordered[-1]
        pos = q * (len(ordered) - 1)
        lo = int(pos)
        frac = pos - lo
        if lo + 1 >= len(ordered):
            return ordered[-1]
        return ordered[lo] * (1.0 - frac) + ordered[lo + 1] * frac

    def scores(self) -> typing.Dict[str, float]:
        """Rolling median per target with at least one sample."""
        return {
            name: _median(sorted(window))
            for name, window in self._samples.items()
            if window
        }


class RetryBudget:
    """A token bucket bounding one job's retry volume.

    Every retry spends one token; an empty bucket (or a passed
    ``deadline_ns``) makes further failures non-recoverable, so a
    degradation storm cannot amplify into an unbounded retry storm.
    """

    def __init__(
        self,
        capacity: float,
        refill_per_ns: float = 0.0,
        deadline_ns: typing.Optional[float] = None,
    ):
        if capacity < 0:
            raise ValueError(f"budget capacity must be >= 0, got {capacity}")
        if refill_per_ns < 0:
            raise ValueError(f"refill rate must be >= 0, got {refill_per_ns}")
        self.capacity = float(capacity)
        self.refill_per_ns = float(refill_per_ns)
        self.deadline_ns = deadline_ns
        self.tokens = float(capacity)
        self.spent = 0
        self.denied = 0
        self._last_refill = 0.0

    def try_spend(self, now: float, cost: float = 1.0) -> bool:
        """Spend ``cost`` tokens at simulated time ``now`` if possible."""
        if self.refill_per_ns > 0.0 and now > self._last_refill:
            self.tokens = min(
                self.capacity,
                self.tokens + (now - self._last_refill) * self.refill_per_ns,
            )
        self._last_refill = now
        if self.deadline_ns is not None and now >= self.deadline_ns:
            self.denied += 1
            return False
        if self.tokens + 1e-9 >= cost:
            self.tokens -= cost
            self.spent += 1
            return True
        self.denied += 1
        return False

    def can_spend(self, now: float, cost: float = 1.0) -> bool:
        """Whether :meth:`try_spend` would succeed — without spending.

        Used by voluntary fail-slow aborts to check that recovery could
        actually pay for the retry; a peek never counts as a denial.
        """
        if self.refill_per_ns > 0.0 and now > self._last_refill:
            self.tokens = min(
                self.capacity,
                self.tokens + (now - self._last_refill) * self.refill_per_ns,
            )
            self._last_refill = now
        if self.deadline_ns is not None and now >= self.deadline_ns:
            return False
        return self.tokens + 1e-9 >= cost


@dataclasses.dataclass(frozen=True)
class RecoveryPolicy:
    """Task-level recovery knobs consumed by the runtime."""

    #: Total tries per task (first run included).
    max_task_attempts: int = 3
    backoff_base_ns: float = 10_000.0
    backoff_factor: float = 2.0
    max_backoff_ns: float = 1e6
    #: Reroute/retry budget for each data transfer.
    transfer_retries: int = 2
    #: Optional per-transfer deadline before cancel + retry.
    transfer_timeout_ns: typing.Optional[float] = None
    #: Decorrelate retry wake-ups: co-failed tasks in one storm must not
    #: all collide on the same backoff tick.
    jitter: bool = True
    #: Per-job retry token budget (None = unlimited, the legacy shape).
    retry_budget_tokens: typing.Optional[float] = None
    #: Tokens regained per simulated ns (0 = a fixed, non-refilling pot).
    retry_budget_refill_per_ns: float = 0.0
    #: Absolute per-job deadline after which no retry is attempted.
    retry_deadline_ns: typing.Optional[float] = None

    def backoff_ns(self, attempt: int) -> float:
        """Deterministic exponential backoff (the legacy schedule)."""
        delay = self.backoff_base_ns * self.backoff_factor ** max(0, attempt - 1)
        return min(delay, self.max_backoff_ns)

    def jittered_backoff_ns(self, attempt: int, rng, prev_ns: float = 0.0) -> float:
        """Decorrelated-jitter backoff: ``min(cap, U(base, 3·prev))``.

        ``prev_ns`` is the delay the previous attempt slept (0 on the
        first retry).  With :attr:`jitter` off this degrades to the
        deterministic schedule, so callers can thread one code path.
        """
        if not self.jitter:
            return self.backoff_ns(attempt)
        base = self.backoff_base_ns
        high = max(base, 3.0 * (prev_ns if prev_ns > 0.0 else base))
        return min(self.max_backoff_ns, float(rng.uniform(base, high)))

    def make_retry_budget(self) -> typing.Optional[RetryBudget]:
        """A fresh per-job :class:`RetryBudget` (None when unlimited)."""
        if self.retry_budget_tokens is None:
            return None
        return RetryBudget(
            self.retry_budget_tokens,
            refill_per_ns=self.retry_budget_refill_per_ns,
            deadline_ns=self.retry_deadline_ns,
        )

    def recoverable(self, exc: BaseException) -> bool:
        """Infrastructure failures are retried; application errors are not."""
        from repro.hardware.interconnect import NoRouteError
        from repro.memory.manager import PlacementError
        from repro.memory.region import RegionLostError
        from repro.sim.flows import LinkDown, TransferTimeout

        if isinstance(exc, Interrupt):
            return isinstance(exc.cause, DeviceDown)
        return isinstance(
            exc,
            (DeviceDown, DeviceDegraded, LinkDown, TransferTimeout,
             RegionLostError, PlacementError, NoRouteError),
        )


class HealthMonitor:
    """Tracks device/link health for one cluster and owns drains.

    Attaching a monitor sets ``cluster.health_monitor``, which switches
    placement, scheduling, and ``NODE_RESTART`` handling to
    health-aware behaviour.  Detection is not instantaneous: a crash
    marks members SUSPECT immediately (the control plane stops using
    them) but running tasks are only interrupted once the failure is
    *confirmed* after ``detection_delay_ns``.
    """

    def __init__(
        self,
        cluster: "Cluster",
        detection_delay_ns: float = 10_000.0,
        blacklist_after: int = 3,
        drain_poll_ns: float = 10_000.0,
        max_drain_ns: typing.Optional[float] = None,
        degradation: typing.Optional[DegradationPolicy] = None,
    ):
        self.cluster = cluster
        self.engine = cluster.engine
        self.obs = cluster.obs
        self.detection_delay_ns = float(detection_delay_ns)
        self.blacklist_after = int(blacklist_after)
        self.drain_poll_ns = float(drain_poll_ns)
        self.max_drain_ns = max_drain_ns
        #: Fail-slow detector config (None = detection off, legacy shape).
        self.degradation = degradation
        self.scorecard = LatencyScorecard(
            degradation.window if degradation is not None else 32
        )
        self._links_degraded: typing.Set[str] = set()
        #: Last engine time each flagged target produced slow evidence;
        #: drives the probation (optimistic re-admit) timer.
        self._flagged_at: typing.Dict[str, float] = {}
        self.stats = HealthStats()
        #: Monotonic generation counter: bumped on every state
        #: transition and blacklist addition, so epoch-keyed caches
        #: (placement's satisfaction index) can validate with one
        #: integer compare instead of subscribing to callbacks.
        self.epoch = 0
        self._state: typing.Dict[str, HealthState] = {
            name: HealthState.UP
            for name in list(cluster.memory) + list(cluster.compute)
        }
        self._since: typing.Dict[str, float] = {}
        self._failures: typing.Dict[str, int] = {}
        self._blacklist: typing.Set[str] = set()
        self._links_down: typing.Set[str] = set()
        #: device -> task processes to interrupt on confirmed death
        self._watched: typing.Dict[str, typing.Set[Process]] = {}
        self._callbacks: typing.List[typing.Callable[[], None]] = []
        cluster.health_monitor = self
        # Continuous telemetry: per-window degradation-detection rate
        # and the currently-degraded level, folded on every poll.
        telem = self.obs.telemetry
        telem.watch(
            "health.degraded_events",
            lambda: self.obs.counter("health.degraded_events").value,
            kind="rate",
        )
        telem.watch(
            "health.degraded_now",
            lambda: float(len(self.degraded_devices())
                          + len(self.degraded_links())),
            kind="level",
        )
        cluster.faults.on(FaultKind.NODE_CRASH, self._on_node_crash)
        cluster.faults.on(FaultKind.NODE_REBOOT, self._on_node_reboot)
        cluster.faults.on(FaultKind.LINK_DOWN, self._on_link_down)
        cluster.faults.on(FaultKind.LINK_UP, self._on_link_up)

    # -- queries (placement / scheduling consult these) -------------------

    def state(self, device_name: str) -> HealthState:
        """Current health state of one device (unknown names are UP)."""
        return self._state.get(device_name, HealthState.UP)

    def can_use(self, device_name: str) -> bool:
        """May new work (placements, tasks) target this device?

        DEGRADED devices stay usable — capacity is reduced, not gone —
        but placement and scheduling order them last (see
        ``PlacementPolicy``/``Scheduler``), so they only take work when
        nothing healthy satisfies the request.
        """
        return (
            self._state.get(device_name, HealthState.UP)
            in (HealthState.UP, HealthState.DEGRADED)
            and device_name not in self._blacklist
        )

    def is_degraded(self, device_name: str) -> bool:
        """Whether evidence currently marks this device fail-slow."""
        self._probation_sweep()
        return self._state.get(device_name) is HealthState.DEGRADED

    def degraded_devices(self) -> typing.List[str]:
        """Names of devices currently marked DEGRADED."""
        self._probation_sweep()
        return [
            n for n, s in self._state.items() if s is HealthState.DEGRADED
        ]

    def link_degraded(self, link_name: str) -> bool:
        """Whether evidence currently marks this fabric link fail-slow."""
        self._probation_sweep()
        return link_name in self._links_degraded

    def degraded_links(self) -> typing.FrozenSet[str]:
        """Names of fabric links currently marked fail-slow."""
        self._probation_sweep()
        return frozenset(self._links_degraded)

    def _probation_sweep(self) -> None:
        """Optimistically re-admit targets whose last supporting slow
        evidence is older than the policy's probation window.

        Flagged targets are avoided, avoided targets produce no new
        evidence, and no evidence means hysteresis can never clear
        them — probation breaks that deadlock the way a half-open
        circuit breaker does."""
        policy = self.degradation
        if policy is None or policy.probation_ns is None:
            return
        if not self._flagged_at:
            return
        deadline = self.engine.now - policy.probation_ns
        for name, last in list(self._flagged_at.items()):
            if last > deadline:
                continue
            if name in self._links_degraded:
                self._clear_degraded(name, False, self.scorecard.score(name))
            elif self._state.get(name) is HealthState.DEGRADED:
                self._clear_degraded(name, True, self.scorecard.score(name))
            else:
                self._flagged_at.pop(name, None)

    def is_blacklisted(self, device_name: str) -> bool:
        """Whether repeated failures have excluded this device for good."""
        return device_name in self._blacklist

    @property
    def blacklist(self) -> typing.FrozenSet[str]:
        return frozenset(self._blacklist)

    def link_up(self, link_name: str) -> bool:
        """Whether a fabric link is currently believed healthy."""
        return link_name not in self._links_down

    def up_devices(self) -> typing.List[str]:
        """Names of all devices new work may currently target."""
        return [n for n in self._state if self.can_use(n)]

    def on_change(self, callback: typing.Callable[[], None]) -> None:
        """Run ``callback`` after every health transition (e.g. cost
        model invalidation)."""
        self._callbacks.append(callback)

    # -- task watching ------------------------------------------------------

    def watch(self, device_name: str, process: Process) -> None:
        """Interrupt ``process`` with :class:`DeviceDown` if the device
        is later confirmed dead (pairs with :meth:`unwatch`)."""
        self._watched.setdefault(device_name, set()).add(process)

    def unwatch(self, device_name: str, process: Process) -> None:
        """Stop watching ``process`` (its attempt on the device ended)."""
        watched = self._watched.get(device_name)
        if watched is None:
            return
        watched.discard(process)
        if not watched:
            # Drop the empty set: over a long soak every device that ever
            # ran a task would otherwise keep a dead entry forever.
            del self._watched[device_name]

    # -- gray-failure evidence (fed by the data plane, never the injector) --

    def observe_latency(
        self, target: str, observed_ns: float, expected_ns: float
    ) -> None:
        """Feed one observed-vs-expected duration for a device or link.

        ``expected_ns`` must be the *nominal* (spec-sheet) estimate;
        the ratio between the two is the only signal the fail-slow
        detector ever sees.  A no-op unless a :class:`DegradationPolicy`
        was configured.
        """
        if self.degradation is None:
            return
        self.scorecard.observe(target, observed_ns, expected_ns)
        self._evaluate_degradation(target)

    def observe_transfer(
        self,
        links: typing.Iterable,
        observed_ns: float,
        expected_ns: float,
    ) -> None:
        """Feed one transfer's duration as evidence against its route.

        Every link on the route is charged the same observed/expected
        ratio; the peer-relative outlier gate is what keeps healthy
        links that merely *shared* a slow route from being flagged.
        Device ports (``<device>.port``) are charged to the owning
        device, so a throttled memory device shows up as device-level
        degradation rather than an anonymous link.
        """
        if self.degradation is None:
            return
        seen = set()
        for link in links:
            name = getattr(link, "name", link)
            if name.endswith(".port"):
                owner = name[: -len(".port")]
                if owner in self._state:
                    name = owner
            if name in seen:
                continue
            seen.add(name)
            self.scorecard.observe(name, observed_ns, expected_ns)
            self._evaluate_degradation(name)

    def latency_ratio_quantile(
        self, target: str, q: float
    ) -> typing.Optional[float]:
        """Quantile of a target's observed/expected ratio window.

        Hedging uses the p99 of the *source device's* ratios to size its
        hedge delay.  None without evidence (or with detection off).
        """
        if self.degradation is None:
            return None
        return self.scorecard.ratio_quantile(target, q)

    def _evaluate_degradation(self, name: str) -> None:
        policy = self.degradation
        if self.scorecard.samples(name) < policy.min_samples:
            return
        score = self.scorecard.score(name)
        is_device = name in self._state
        if is_device:
            flagged = self._state[name] is HealthState.DEGRADED
        else:
            flagged = name in self._links_degraded
        if not flagged:
            if score < policy.degrade_ratio:
                return
            if not self._peer_outlier(name, score, is_device):
                return
            self._mark_degraded(name, is_device, score)
        elif score <= policy.clear_ratio:
            self._clear_degraded(name, is_device, score)
        elif score >= policy.degrade_ratio and name in self._flagged_at:
            # Fresh supporting evidence keeps the flag out of probation.
            self._flagged_at[name] = self.engine.now

    def _peer_outlier(self, name: str, score: float, is_device: bool) -> bool:
        """Robust outlier test against same-category peers (median+MAD)."""
        policy = self.degradation
        peers = sorted(
            peer_score
            for peer, peer_score in self.scorecard.scores().items()
            if peer != name
            and (peer in self._state) == is_device
            and self.scorecard.samples(peer) >= policy.min_samples
        )
        if len(peers) < policy.min_peers:
            return True  # too few peers: the absolute threshold governs
        median = _median(peers)
        mad = _median(sorted(abs(p - median) for p in peers))
        return score >= median + policy.mad_k * 1.4826 * max(mad, 1e-9)

    def _mark_degraded(self, name: str, is_device: bool, score: float) -> None:
        if is_device:
            if self._state[name] is not HealthState.UP:
                return  # SUSPECT/DOWN/DRAINING outrank a slowness flag
        self.stats.degraded_detected += 1
        self._flagged_at[name] = self.engine.now
        self.obs.counter("health.degraded_events").inc()
        self.obs.event(
            "health", "degraded", target=name, score=score,
            target_kind="device" if is_device else "link",
        )
        self.obs.causal.note_fault("degraded", name, self.engine.now)
        if is_device:
            self._set_state(name, HealthState.DEGRADED)
        else:
            self._links_degraded.add(name)
            self.epoch += 1
            for callback in self._callbacks:
                callback()

    def _clear_degraded(self, name: str, is_device: bool, score: float) -> None:
        if is_device and self._state[name] is not HealthState.DEGRADED:
            return
        self._flagged_at.pop(name, None)
        self.stats.degradations_cleared += 1
        self.obs.event(
            "health", "degradation_cleared", target=name, score=score,
            target_kind="device" if is_device else "link",
        )
        if is_device:
            self._set_state(name, HealthState.UP)
        else:
            self._links_degraded.discard(name)
            self.epoch += 1
            for callback in self._callbacks:
                callback()

    # -- transitions -------------------------------------------------------

    def _set_state(self, name: str, new: HealthState) -> None:
        if name not in self._state or self._state[name] is new:
            return
        self._state[name] = new
        self._since[name] = self.engine.now
        self.epoch += 1
        self.stats.transitions += 1
        self.obs.counter(f"health.to_{new.value}").inc()
        self.obs.event("health", "transition", device=name, state=new.value)
        self.obs.timeline("health.up_devices").record(
            self.engine.now, len(self.up_devices())
        )
        for callback in self._callbacks:
            callback()

    def _members(self, node: str) -> typing.List[str]:
        return [
            name for name in self.cluster.nodes.get(node, set())
            if name in self._state  # skips switch vertices
        ]

    def _device_failed(self, name: str) -> bool:
        return self.cluster.device(name).failed

    # -- fault handlers ----------------------------------------------------

    def _on_node_crash(self, fault: FaultEvent) -> None:
        members = self._members(fault.target)
        if not members:
            return
        self.stats.crashes_detected += 1
        for name in members:
            self._set_state(name, HealthState.SUSPECT)
        if self.detection_delay_ns <= 0:
            self._confirm(members)
        else:
            self.engine.process(
                self._confirm_after_delay(members),
                name=f"health:{fault.target}#detect",
            )

    def _confirm_after_delay(self, members: typing.List[str]):
        yield self.engine.timeout(self.detection_delay_ns)
        self._confirm(members)

    def _confirm(self, members: typing.List[str]) -> None:
        for name in members:
            if not self._device_failed(name):
                continue  # repaired inside the detection window
            # Strikes (and blacklisting) only accrue on *confirmed*
            # death: a device repaired inside the detection window was
            # a transient blip and must not inch toward the blacklist.
            self._failures[name] = self._failures.get(name, 0) + 1
            if (
                self._failures[name] >= self.blacklist_after
                and name not in self._blacklist
            ):
                self._blacklist.add(name)
                self.epoch += 1  # can_use changed even if state didn't
                self.stats.blacklisted += 1
                self.obs.event("health", "blacklist", device=name,
                               failures=self._failures[name])
            self._set_state(name, HealthState.DOWN)
            self.obs.causal.note_fault(
                "device_down", name, self.engine.now,
                interrupted=len(self._watched.get(name, ())),
            )
            for process in list(self._watched.get(name, ())):
                if process.is_alive:
                    process.interrupt(DeviceDown(name))
                    self.stats.tasks_interrupted += 1
            self._watched.pop(name, None)

    def _on_node_reboot(self, fault: FaultEvent) -> None:
        # Runs after the cluster recovered the devices: back in service
        # (a blacklisted device stays excluded via can_use).
        for name in self._members(fault.target):
            if not self._device_failed(name):
                self._set_state(name, HealthState.UP)

    def _on_link_down(self, fault: FaultEvent) -> None:
        self._links_down.add(fault.target)
        self.obs.event("health", "link_down", link=fault.target)
        for callback in self._callbacks:
            callback()

    def _on_link_up(self, fault: FaultEvent) -> None:
        self._links_down.discard(fault.target)
        self.obs.event("health", "link_up", link=fault.target)
        for callback in self._callbacks:
            callback()

    # -- graceful drain ----------------------------------------------------

    def begin_drain(self, node: str) -> bool:
        """Start draining a healthy node ahead of a planned restart.

        Returns ``False`` when there is nothing to drain (unknown node,
        or a member already failed — that is the *repair* path, handled
        by an immediate reboot).  Otherwise marks every member DRAINING
        and spawns the drain process, which injects ``NODE_REBOOT`` once
        the node is idle.
        """
        members = self._members(node)
        if not members or any(self._device_failed(m) for m in members):
            return False
        self.stats.drains_started += 1
        for name in members:
            self._set_state(name, HealthState.DRAINING)
            self.obs.causal.note_fault("drain", name, self.engine.now)
        self.engine.process(self._drain(node, members), name=f"health:{node}#drain")
        return True

    def _drain(self, node: str, members: typing.List[str]):
        span = self.obs.begin_span("health", "drain", node=node)
        started = self.engine.now
        forced = False
        while True:
            if any(self._device_failed(m) for m in members):
                # Crashed mid-drain; the crash path owns recovery now.
                if span:
                    span.set(aborted=True)
                span.close()
                return
            if self._node_idle(members):
                break
            if (
                self.max_drain_ns is not None
                and self.engine.now - started >= self.max_drain_ns
            ):
                forced = True
                break
            yield self.engine.timeout(self.drain_poll_ns)
        duration = self.engine.now - started
        self.stats.drains_completed += 1
        self.stats.drain_time_ns += duration
        self.obs.counter("health.drains").inc()
        if span:
            span.set(duration=duration, forced=forced)
        span.close()
        self.cluster.faults.inject_now(FaultKind.NODE_REBOOT, node)

    def _node_idle(self, members: typing.List[str]) -> bool:
        for name in members:
            if name in self.cluster.compute:
                if self.cluster.compute[name].slots_in_use > 0:
                    return False
            elif name in self.cluster.memory:
                device = self.cluster.memory[name]
                # Volatile bytes still live on the node would be lost by
                # the reboot; wait for their owners to let go.
                if not device.spec.persistent and device.used > 0:
                    return False
        return True


__all__ = [
    "DegradationPolicy",
    "DeviceDown",
    "HealthMonitor",
    "HealthState",
    "HealthStats",
    "LatencyScorecard",
    "MONITOR_UNHANDLED_KINDS",
    "RecoveryPolicy",
    "RetryBudget",
]
