"""Device health tracking and in-flight recovery policy.

Paper §3, Challenge 8: the RTS must survive network errors, corrupted
memory, and planned/unplanned node faults *without* forcing
applications to stop and restart.  This module is the control plane of
that promise:

* :class:`HealthMonitor` subscribes to the cluster's
  :class:`~repro.sim.faults.FaultInjector` and tracks per-device health
  (:class:`HealthState`: UP / SUSPECT / DOWN / DRAINING) with a
  configurable *detection delay* — the simulated gap between a fault
  occurring and the control plane acting on it.  Placement and
  scheduling consult it to exclude unhealthy devices, and repeat
  offenders are blacklisted.
* On confirmed device death the monitor interrupts the task processes
  registered against that device (:meth:`HealthMonitor.watch`), which
  is what lets :class:`~repro.runtime.rts._JobExecution` retry just the
  affected tasks instead of failing the job.
* A planned ``NODE_RESTART`` becomes a *graceful drain*: the node is
  marked DRAINING (no new placements or schedules), running tasks
  finish, live volatile bytes drain away, and only then does the node
  power-cycle (``NODE_REBOOT``).
* :class:`RecoveryPolicy` is the knob set for the data plane: how many
  task attempts, what backoff, and which exception types count as
  *recoverable* infrastructure failures (vs. application bugs, which
  must keep failing the job).
"""

from __future__ import annotations

import dataclasses
import enum
import typing

from repro.sim.events import Interrupt, Process
from repro.sim.faults import FaultEvent, FaultKind

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hardware.cluster import Cluster


class HealthState(enum.Enum):
    """Control-plane view of one device."""

    UP = "up"
    SUSPECT = "suspect"  # fault reported, detection delay running
    DOWN = "down"  # confirmed dead; tasks interrupted
    DRAINING = "draining"  # planned restart; finishing in-flight work


class DeviceDown(Exception):
    """Delivered (as an :class:`~repro.sim.events.Interrupt` cause) to
    task processes running on a device the monitor confirmed dead."""

    def __init__(self, device: str):
        super().__init__(f"device {device} is down")
        self.device = device


@dataclasses.dataclass
class HealthStats:
    transitions: int = 0
    crashes_detected: int = 0
    tasks_interrupted: int = 0
    drains_started: int = 0
    drains_completed: int = 0
    drain_time_ns: float = 0.0
    blacklisted: int = 0


@dataclasses.dataclass(frozen=True)
class RecoveryPolicy:
    """Task-level recovery knobs consumed by the runtime."""

    #: Total tries per task (first run included).
    max_task_attempts: int = 3
    backoff_base_ns: float = 10_000.0
    backoff_factor: float = 2.0
    max_backoff_ns: float = 1e6
    #: Reroute/retry budget for each data transfer.
    transfer_retries: int = 2
    #: Optional per-transfer deadline before cancel + retry.
    transfer_timeout_ns: typing.Optional[float] = None

    def backoff_ns(self, attempt: int) -> float:
        """Exponential backoff before re-running a failed attempt."""
        delay = self.backoff_base_ns * self.backoff_factor ** max(0, attempt - 1)
        return min(delay, self.max_backoff_ns)

    def recoverable(self, exc: BaseException) -> bool:
        """Infrastructure failures are retried; application errors are not."""
        from repro.hardware.interconnect import NoRouteError
        from repro.memory.manager import PlacementError
        from repro.memory.region import RegionLostError
        from repro.sim.flows import LinkDown, TransferTimeout

        if isinstance(exc, Interrupt):
            return isinstance(exc.cause, DeviceDown)
        return isinstance(
            exc,
            (DeviceDown, LinkDown, TransferTimeout, RegionLostError,
             PlacementError, NoRouteError),
        )


class HealthMonitor:
    """Tracks device/link health for one cluster and owns drains.

    Attaching a monitor sets ``cluster.health_monitor``, which switches
    placement, scheduling, and ``NODE_RESTART`` handling to
    health-aware behaviour.  Detection is not instantaneous: a crash
    marks members SUSPECT immediately (the control plane stops using
    them) but running tasks are only interrupted once the failure is
    *confirmed* after ``detection_delay_ns``.
    """

    def __init__(
        self,
        cluster: "Cluster",
        detection_delay_ns: float = 10_000.0,
        blacklist_after: int = 3,
        drain_poll_ns: float = 10_000.0,
        max_drain_ns: typing.Optional[float] = None,
    ):
        self.cluster = cluster
        self.engine = cluster.engine
        self.obs = cluster.obs
        self.detection_delay_ns = float(detection_delay_ns)
        self.blacklist_after = int(blacklist_after)
        self.drain_poll_ns = float(drain_poll_ns)
        self.max_drain_ns = max_drain_ns
        self.stats = HealthStats()
        #: Monotonic generation counter: bumped on every state
        #: transition and blacklist addition, so epoch-keyed caches
        #: (placement's satisfaction index) can validate with one
        #: integer compare instead of subscribing to callbacks.
        self.epoch = 0
        self._state: typing.Dict[str, HealthState] = {
            name: HealthState.UP
            for name in list(cluster.memory) + list(cluster.compute)
        }
        self._since: typing.Dict[str, float] = {}
        self._failures: typing.Dict[str, int] = {}
        self._blacklist: typing.Set[str] = set()
        self._links_down: typing.Set[str] = set()
        #: device -> task processes to interrupt on confirmed death
        self._watched: typing.Dict[str, typing.Set[Process]] = {}
        self._callbacks: typing.List[typing.Callable[[], None]] = []
        cluster.health_monitor = self
        cluster.faults.on(FaultKind.NODE_CRASH, self._on_node_crash)
        cluster.faults.on(FaultKind.NODE_REBOOT, self._on_node_reboot)
        cluster.faults.on(FaultKind.LINK_DOWN, self._on_link_down)
        cluster.faults.on(FaultKind.LINK_UP, self._on_link_up)

    # -- queries (placement / scheduling consult these) -------------------

    def state(self, device_name: str) -> HealthState:
        """Current health state of one device (unknown names are UP)."""
        return self._state.get(device_name, HealthState.UP)

    def can_use(self, device_name: str) -> bool:
        """May new work (placements, tasks) target this device?"""
        return (
            self._state.get(device_name, HealthState.UP) is HealthState.UP
            and device_name not in self._blacklist
        )

    def is_blacklisted(self, device_name: str) -> bool:
        """Whether repeated failures have excluded this device for good."""
        return device_name in self._blacklist

    @property
    def blacklist(self) -> typing.FrozenSet[str]:
        return frozenset(self._blacklist)

    def link_up(self, link_name: str) -> bool:
        """Whether a fabric link is currently believed healthy."""
        return link_name not in self._links_down

    def up_devices(self) -> typing.List[str]:
        """Names of all devices new work may currently target."""
        return [n for n in self._state if self.can_use(n)]

    def on_change(self, callback: typing.Callable[[], None]) -> None:
        """Run ``callback`` after every health transition (e.g. cost
        model invalidation)."""
        self._callbacks.append(callback)

    # -- task watching ------------------------------------------------------

    def watch(self, device_name: str, process: Process) -> None:
        """Interrupt ``process`` with :class:`DeviceDown` if the device
        is later confirmed dead (pairs with :meth:`unwatch`)."""
        self._watched.setdefault(device_name, set()).add(process)

    def unwatch(self, device_name: str, process: Process) -> None:
        """Stop watching ``process`` (its attempt on the device ended)."""
        watched = self._watched.get(device_name)
        if watched is None:
            return
        watched.discard(process)
        if not watched:
            # Drop the empty set: over a long soak every device that ever
            # ran a task would otherwise keep a dead entry forever.
            del self._watched[device_name]

    # -- transitions -------------------------------------------------------

    def _set_state(self, name: str, new: HealthState) -> None:
        if name not in self._state or self._state[name] is new:
            return
        self._state[name] = new
        self._since[name] = self.engine.now
        self.epoch += 1
        self.stats.transitions += 1
        self.obs.counter(f"health.to_{new.value}").inc()
        self.obs.event("health", "transition", device=name, state=new.value)
        self.obs.timeline("health.up_devices").record(
            self.engine.now, len(self.up_devices())
        )
        for callback in self._callbacks:
            callback()

    def _members(self, node: str) -> typing.List[str]:
        return [
            name for name in self.cluster.nodes.get(node, set())
            if name in self._state  # skips switch vertices
        ]

    def _device_failed(self, name: str) -> bool:
        return self.cluster.device(name).failed

    # -- fault handlers ----------------------------------------------------

    def _on_node_crash(self, fault: FaultEvent) -> None:
        members = self._members(fault.target)
        if not members:
            return
        self.stats.crashes_detected += 1
        for name in members:
            self._set_state(name, HealthState.SUSPECT)
        if self.detection_delay_ns <= 0:
            self._confirm(members)
        else:
            self.engine.process(
                self._confirm_after_delay(members),
                name=f"health:{fault.target}#detect",
            )

    def _confirm_after_delay(self, members: typing.List[str]):
        yield self.engine.timeout(self.detection_delay_ns)
        self._confirm(members)

    def _confirm(self, members: typing.List[str]) -> None:
        for name in members:
            if not self._device_failed(name):
                continue  # repaired inside the detection window
            # Strikes (and blacklisting) only accrue on *confirmed*
            # death: a device repaired inside the detection window was
            # a transient blip and must not inch toward the blacklist.
            self._failures[name] = self._failures.get(name, 0) + 1
            if (
                self._failures[name] >= self.blacklist_after
                and name not in self._blacklist
            ):
                self._blacklist.add(name)
                self.epoch += 1  # can_use changed even if state didn't
                self.stats.blacklisted += 1
                self.obs.event("health", "blacklist", device=name,
                               failures=self._failures[name])
            self._set_state(name, HealthState.DOWN)
            self.obs.causal.note_fault(
                "device_down", name, self.engine.now,
                interrupted=len(self._watched.get(name, ())),
            )
            for process in list(self._watched.get(name, ())):
                if process.is_alive:
                    process.interrupt(DeviceDown(name))
                    self.stats.tasks_interrupted += 1
            self._watched.pop(name, None)

    def _on_node_reboot(self, fault: FaultEvent) -> None:
        # Runs after the cluster recovered the devices: back in service
        # (a blacklisted device stays excluded via can_use).
        for name in self._members(fault.target):
            if not self._device_failed(name):
                self._set_state(name, HealthState.UP)

    def _on_link_down(self, fault: FaultEvent) -> None:
        self._links_down.add(fault.target)
        self.obs.event("health", "link_down", link=fault.target)
        for callback in self._callbacks:
            callback()

    def _on_link_up(self, fault: FaultEvent) -> None:
        self._links_down.discard(fault.target)
        self.obs.event("health", "link_up", link=fault.target)
        for callback in self._callbacks:
            callback()

    # -- graceful drain ----------------------------------------------------

    def begin_drain(self, node: str) -> bool:
        """Start draining a healthy node ahead of a planned restart.

        Returns ``False`` when there is nothing to drain (unknown node,
        or a member already failed — that is the *repair* path, handled
        by an immediate reboot).  Otherwise marks every member DRAINING
        and spawns the drain process, which injects ``NODE_REBOOT`` once
        the node is idle.
        """
        members = self._members(node)
        if not members or any(self._device_failed(m) for m in members):
            return False
        self.stats.drains_started += 1
        for name in members:
            self._set_state(name, HealthState.DRAINING)
            self.obs.causal.note_fault("drain", name, self.engine.now)
        self.engine.process(self._drain(node, members), name=f"health:{node}#drain")
        return True

    def _drain(self, node: str, members: typing.List[str]):
        span = self.obs.begin_span("health", "drain", node=node)
        started = self.engine.now
        forced = False
        while True:
            if any(self._device_failed(m) for m in members):
                # Crashed mid-drain; the crash path owns recovery now.
                if span:
                    span.set(aborted=True)
                span.close()
                return
            if self._node_idle(members):
                break
            if (
                self.max_drain_ns is not None
                and self.engine.now - started >= self.max_drain_ns
            ):
                forced = True
                break
            yield self.engine.timeout(self.drain_poll_ns)
        duration = self.engine.now - started
        self.stats.drains_completed += 1
        self.stats.drain_time_ns += duration
        self.obs.counter("health.drains").inc()
        if span:
            span.set(duration=duration, forced=forced)
        span.close()
        self.cluster.faults.inject_now(FaultKind.NODE_REBOOT, node)

    def _node_idle(self, members: typing.List[str]) -> bool:
        for name in members:
            if name in self.cluster.compute:
                if self.cluster.compute[name].slots_in_use > 0:
                    return False
            elif name in self.cluster.memory:
                device = self.cluster.memory[name]
                # Volatile bytes still live on the node would be lost by
                # the reboot; wait for their owners to let go.
                if not device.spec.persistent and device.used > 0:
                    return False
        return True


__all__ = [
    "DeviceDown",
    "HealthMonitor",
    "HealthState",
    "HealthStats",
    "RecoveryPolicy",
]
