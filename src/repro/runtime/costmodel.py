"""The cost model: topology- and access-path-aware estimates.

The paper (§3, Challenges 1–3) requires the RTS to "schedule and map
tasks to different types of devices using cost models that consider
topology and access paths".  This module derives everything from the
cluster's topology plus the *same* :func:`~repro.memory.interfaces.access_plan`
function the simulator executes, so the optimizer's estimates and the
simulated outcomes agree structurally (they still diverge under
contention, which only the simulation sees).
"""

from __future__ import annotations

import typing

from repro.dataflow.graph import Task
from repro.dataflow.workspec import RegionUsage
from repro.hardware.cluster import Cluster
from repro.hardware.devices import MemoryDevice
from repro.hardware.interconnect import NoRouteError
from repro.hardware.spec import Attachment
from repro.memory.interfaces import AccessMode, AccessPattern, access_plan
from repro.memory.properties import (
    BandwidthClass,
    LatencyClass,
    OfferedProperties,
)

#: Bookkeeping cost of an ownership transfer (metadata update, no copy).
OWNERSHIP_TRANSFER_NS = 100.0


class CostModel:
    """Answers 'what would it cost' questions for placement/scheduling."""

    def __init__(self, cluster: Cluster):
        self.cluster = cluster
        self._offer_cache: dict = {}
        self._access_cache: dict = {}
        self._scratch_cache: dict = {}
        self._seen_epoch = self._topology_epoch()

    def _topology_epoch(self) -> int:
        flownet = getattr(self.cluster, "flownet", None)
        return flownet.topology_epoch if flownet is not None else 0

    def _check_epoch(self) -> None:
        """Self-invalidate when the fabric changed under us.

        Link failures *and* restores bump ``FlowNetwork.topology_epoch``,
        so cached NoRouteError offers can't outlive the outage that
        produced them even if no explicit ``invalidate()`` caller fires.
        """
        epoch = self._topology_epoch()
        if epoch != self._seen_epoch:
            self._seen_epoch = epoch
            self._offer_cache.clear()
            self._access_cache.clear()
            self._scratch_cache.clear()

    # -- offered properties (Figure 3: device value depends on observer) --

    def offered(self, observer: str, device: MemoryDevice) -> OfferedProperties:
        """What ``device`` offers as seen from compute device ``observer``."""
        self._check_epoch()
        key = (observer, device.name)
        cached = self._offer_cache.get(key)
        if cached is not None:
            return cached
        topo = self.cluster.topology
        try:
            path_latency = topo.path_latency(observer, device.name)
            path_bandwidth = topo.path_bandwidth(observer, device.name)
        except NoRouteError:
            offer = OfferedProperties(
                latency=LatencyClass.ANY, bandwidth=BandwidthClass.ANY,
                persistent=device.spec.persistent, coherent=False, sync=False,
                isolated=False, rtt_ns=float("inf"), bytes_per_ns=0.0,
            )
            self._offer_cache[key] = offer
            return offer
        rtt = 2.0 * path_latency + device.spec.latency
        bandwidth = min(path_bandwidth, device.spec.bandwidth)
        offer = OfferedProperties(
            latency=LatencyClass.classify(rtt),
            bandwidth=BandwidthClass.classify(bandwidth),
            persistent=device.spec.persistent,
            coherent=device.spec.coherent and topo.coherent(observer, device.name),
            sync=device.spec.supports_sync and topo.addressable(observer, device.name),
            isolated=device.spec.attachment is not Attachment.NIC,
            rtt_ns=rtt,
            bytes_per_ns=bandwidth,
        )
        self._offer_cache[key] = offer
        return offer

    def invalidate(self) -> None:
        """Drop cached offers (topology or device state changed)."""
        self._offer_cache.clear()
        self._access_cache.clear()
        self._scratch_cache.clear()

    # -- access costs --------------------------------------------------------

    def access_time(
        self,
        observer: str,
        device: MemoryDevice,
        usage: RegionUsage,
        is_write: bool = False,
        mode: typing.Optional[AccessMode] = None,
    ) -> float:
        """Uncontended estimate for one region usage (ns)."""
        if usage.touched_bytes == 0:
            return 0.0
        # RegionUsage is a frozen dataclass, so the whole call signature
        # is hashable; schedulers probe the same (observer, device,
        # usage) triples over and over while ranking candidates.
        memo_key = (observer, device.name, usage, is_write, mode)
        cached = self._access_cache.get(memo_key)
        if cached is not None:
            return cached
        offer = self.offered(observer, device)  # also runs the epoch check
        if offer.bytes_per_ns == 0.0:
            self._access_cache[memo_key] = float("inf")
            return float("inf")
        if mode is None:
            mode = AccessMode.SYNC if offer.sync else AccessMode.ASYNC
        path_latency = self.cluster.topology.path_latency(observer, device.name)
        plan = access_plan(
            device, path_latency, usage.touched_bytes,
            pattern=usage.pattern, mode=mode, access_size=usage.access_size,
            is_write=is_write,
        )
        estimate = plan.lower_bound_ns(offer.bytes_per_ns)
        self._access_cache[memo_key] = estimate
        return estimate

    def transfer_time(self, src: MemoryDevice, dst: MemoryDevice, nbytes: int) -> float:
        """Uncontended estimate for a device-to-device copy (ns)."""
        if nbytes == 0:
            return 0.0
        if src.name == dst.name:
            return 2.0 * nbytes / src.spec.bandwidth
        topo = self.cluster.topology
        try:
            latency = topo.path_latency(src.name, dst.name)
            bandwidth = min(
                topo.path_bandwidth(src.name, dst.name),
                src.spec.bandwidth,
                dst.spec.bandwidth,
            )
        except NoRouteError:
            return float("inf")
        return latency + nbytes / bandwidth

    # -- task costs -----------------------------------------------------------

    def compute_time(self, task: Task, compute_name: str) -> float:
        """Pure compute time of ``task`` on a compute device (ns).

        Deliberately the *nominal* (spec-sheet) time: a fail-slow device
        must not leak its physical slowdown into estimates — the control
        plane only learns about gray failures through the health
        monitor's evidence-based DEGRADED state.
        """
        device = self.cluster.compute[compute_name]
        work = task.work
        if work.ops == 0:
            return 0.0
        if not device.supports(work.op_class):
            return float("inf")
        return device.nominal_compute_time(work.op_class, work.ops)

    def task_time_estimate(
        self,
        task: Task,
        compute_name: str,
        memory_for: typing.Callable[[str], typing.Optional[MemoryDevice]],
        input_bytes: int = 0,
    ) -> float:
        """Estimated execution time of ``task`` on ``compute_name``.

        ``memory_for(role)`` maps the roles 'input'/'scratch'/'output'/
        'state' to the (planned or hypothetical) backing device, or None
        when that role is absent.  Memory phases are modeled as
        sequential with compute, matching the simulator's default task
        behaviour.
        """
        work = task.work
        total = self.compute_time(task, compute_name)
        if total == float("inf"):
            return total

        input_device = memory_for("input")
        if work.input_usage is not None and input_device is not None and input_bytes:
            usage = RegionUsage(
                size=input_bytes,
                touches=work.input_usage.touches,
                pattern=work.input_usage.pattern,
                access_size=work.input_usage.access_size,
            )
            total += self.access_time(compute_name, input_device, usage)

        scratch_device = memory_for("scratch")
        if work.scratch is not None and scratch_device is not None:
            total += self.access_time(compute_name, scratch_device, work.scratch)

        state_device = memory_for("state")
        if work.state_usage is not None and state_device is not None:
            total += self.access_time(
                compute_name, state_device, work.state_usage, is_write=True
            )

        output_device = memory_for("output")
        if work.output is not None and output_device is not None:
            total += self.access_time(
                compute_name, output_device, work.output, is_write=True
            )
        return total

    def best_scratch_device(self, observer: str) -> typing.Optional[MemoryDevice]:
        """The lowest-RTT live device an observer can sync-address.

        A planning helper (hypothetical scratch placement for scheduling
        before real placement happens).
        """
        self._check_epoch()
        if observer in self._scratch_cache:
            return self._scratch_cache[observer]
        best = None
        best_rtt = float("inf")
        for device in self.cluster.memory_devices():
            offer = self.offered(observer, device)
            if not offer.sync:
                continue
            if offer.rtt_ns < best_rtt:
                best, best_rtt = device, offer.rtt_ns
        self._scratch_cache[observer] = best
        return best
