"""Placement: matching declared properties to physical devices.

This is where "Memory Regions are declared and identified by their
properties, not by their location" (§2.2) becomes an algorithm:

1. filter the live devices to those whose *offer* — as seen from every
   compute device that will touch the region (Figure 3) — satisfies the
   request, and which have room;
2. rank the survivors by estimated access cost for the declared usage
   and break ties toward cheaper media, keeping fast tiers free;
3. allocate on the winner.

Two deliberately bad policies (:class:`NaivePlacement`,
:class:`StaticKindPlacement`) reproduce the baselines the paper argues
against: location-oblivious first-fit and the traditional explicit
"everything goes on device kind X" style.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.dataflow.workspec import RegionUsage
from repro.hardware.devices import MemoryDevice
from repro.hardware.spec import MemoryKind
from repro.memory.interfaces import AccessPattern
from repro.memory.manager import MemoryManager, PlacementError
from repro.memory.properties import MemoryProperties
from repro.memory.region import MemoryRegion
from repro.memory.regions import RegionType
from repro.runtime.costmodel import CostModel


@dataclasses.dataclass(frozen=True)
class PlacementRequest:
    """One region allocation request as seen by the placement policy."""

    size: int
    properties: MemoryProperties
    owner: typing.Hashable
    #: Compute devices that will access the region; the offer must
    #: satisfy the request from every one of them.
    observers: typing.Tuple[str, ...]
    name: str = ""
    region_type: typing.Optional[RegionType] = None
    #: Declared usage; lets the policy rank by expected access cost.
    usage: typing.Optional[RegionUsage] = None
    #: Devices to treat as a last resort — e.g. ones this request's
    #: task already fled with a fail-slow abort, which the health
    #: monitor may not have flagged yet.  Soft: honoured only while
    #: some other candidate remains.
    avoid: typing.Tuple[str, ...] = ()

    def __post_init__(self):
        if self.size <= 0:
            raise ValueError(f"region size must be positive, got {self.size}")
        if not self.observers:
            raise ValueError("a placement request needs at least one observer")


class PlacementPolicy:
    """Interface: choose a device for a request, then allocate on it."""

    def __init__(self, cluster, manager: MemoryManager, costmodel: CostModel):
        self.cluster = cluster
        self.manager = manager
        self.costmodel = costmodel
        self.placements = 0
        self.rejections = 0
        #: (observers, properties) -> device names whose offer satisfies
        #: the request from every observer.  Valid for one (topology,
        #: health) epoch pair; capacity is deliberately excluded from
        #: the key — ``_has_room`` stays a per-call O(1) probe.
        self._sat_cache: typing.Dict[tuple, typing.List[str]] = {}
        self._sat_epoch: typing.Optional[tuple] = None

    def choose_device(self, request: PlacementRequest) -> MemoryDevice:
        """Pick the backing device for a request (no allocation)."""
        raise NotImplementedError

    def place(self, request: PlacementRequest) -> MemoryRegion:
        """Choose a device and allocate the region there."""
        device = self.choose_device(request)
        region = self.manager.allocate_on(
            device.name, request.size, request.properties, request.owner,
            name=request.name, region_type=request.region_type,
        )
        self.placements += 1
        trace = self.cluster.trace
        if trace.wants("placement"):  # describe() is not free; skip when off
            trace.emit(
                self.cluster.engine.now, "placement", "place",
                region=region.name, device=device.name,
                properties=request.properties.describe(),
            )
        return region

    def _reject(self, request: PlacementRequest, reason: str) -> None:
        """Count (and trace) a request no live device could satisfy."""
        self.rejections += 1
        trace = self.cluster.trace
        if trace.wants("placement"):
            trace.emit(
                self.cluster.engine.now, "placement", "reject",
                region=request.name, size=request.size, reason=reason,
            )
        obs = getattr(self.cluster, "obs", None)
        if obs is not None:
            # Recovery nodes cite rejection pressure as retry context.
            obs.causal.note_rejection(
                request.owner, request.name, reason, self.cluster.engine.now
            )

    def _has_room(self, device: MemoryDevice, size: int) -> bool:
        return self.manager.allocators[device.name].largest_free_extent >= size

    def _prefer_non_degraded(
        self, devices: typing.List[MemoryDevice]
    ) -> typing.List[MemoryDevice]:
        """Devices not flagged DEGRADED by the health monitor, when any
        exist — otherwise the full list.  DEGRADED devices stay usable
        (``can_use`` admits them) but become the last resort, so a
        fail-slow device stops attracting fresh placements while still
        backstopping a cluster where everything else is worse."""
        monitor = getattr(self.cluster, "health_monitor", None)
        if monitor is None or not hasattr(monitor, "is_degraded"):
            return devices
        fresh = [d for d in devices if not monitor.is_degraded(d.name)]
        return fresh or devices

    def _prefer_unavoided(
        self,
        devices: typing.List[MemoryDevice],
        request: PlacementRequest,
    ) -> typing.List[MemoryDevice]:
        """Devices outside the request's ``avoid`` set, when any exist.

        A retry after a fail-slow abort names the device it fled in
        ``avoid`` before the health monitor's evidence catches up;
        without this, the retry can be placed straight back onto the
        same slow device.  Soft like ``_prefer_non_degraded``: when
        every candidate is avoided, the full list survives."""
        if not request.avoid:
            return devices
        avoided = set(request.avoid)
        fresh = [d for d in devices if d.name not in avoided]
        return fresh or devices

    def _alive_devices(self) -> typing.List[MemoryDevice]:
        """Live memory devices, minus any a health monitor rules out.

        If health filtering would leave nothing (e.g. the whole cluster
        is draining), fall back to the unfiltered live set so placement
        degrades to the pre-health behaviour instead of deadlocking.
        """
        devices = self.cluster.memory_devices()
        monitor = getattr(self.cluster, "health_monitor", None)
        if monitor is not None:
            healthy = [d for d in devices if monitor.can_use(d.name)]
            return healthy or devices
        return devices

    def _satisfying_names(
        self,
        observers: typing.Tuple[str, ...],
        properties: MemoryProperties,
    ) -> typing.List[str]:
        """Alive device names whose offer satisfies ``properties`` for
        every observer, via an epoch-keyed index.

        Device liveness changes always travel with a fabric change
        (``fail``/``recover`` pair with link fail/restore, which bump
        ``FlowNetwork.topology_epoch``) and health rulings bump the
        monitor's epoch, so one integer pair decides cache validity
        without any callback wiring.
        """
        monitor = getattr(self.cluster, "health_monitor", None)
        flownet = getattr(self.cluster, "flownet", None)
        epoch = (
            flownet.topology_epoch if flownet is not None else 0,
            monitor.epoch if monitor is not None else -1,
        )
        if epoch != self._sat_epoch:
            self._sat_epoch = epoch
            self._sat_cache.clear()
        key = (observers, properties)
        names = self._sat_cache.get(key)
        if names is None:
            names = [
                device.name
                for device in self._alive_devices()
                if all(
                    self.costmodel.offered(observer, device).satisfies(properties)
                    for observer in observers
                )
            ]
            self._sat_cache[key] = names
        return names


class DeclarativePlacement(PlacementPolicy):
    """The paper's policy: cheapest device satisfying all declared
    properties from the view of every observer."""

    def candidates(self, request: PlacementRequest) -> typing.List[MemoryDevice]:
        """Live devices whose offer satisfies the request for every observer."""
        memory = self.cluster.memory
        return [
            memory[name]
            for name in self._satisfying_names(
                request.observers, request.properties
            )
            if self._has_room(memory[name], request.size)
        ]

    def score(self, request: PlacementRequest, device: MemoryDevice) -> float:
        """Lower is better: expected access cost + a capacity-pressure
        term that keeps scarce fast tiers free for demanding requests."""
        usage = request.usage or RegionUsage(
            size=request.size, touches=1.0, pattern=AccessPattern.SEQUENTIAL
        )
        cost = max(
            self.costmodel.access_time(observer, device, usage)
            for observer in request.observers
        )
        pressure = device.utilization  # 0..1
        media_price = device.spec.cost_per_gib
        return cost * (1.0 + 0.25 * pressure) + 1e-3 * media_price

    def choose_device(self, request: PlacementRequest) -> MemoryDevice:
        """The lowest-scoring satisfying candidate (raises if none).

        Candidates observed fail-slow (DEGRADED) are considered only
        when no healthy candidate satisfies the request.
        """
        survivors = self.candidates(request)
        if not survivors:
            self._reject(request, "no satisfying device")
            raise PlacementError(
                f"no device satisfies {request.properties.describe()} "
                f"for observers {list(request.observers)} "
                f"(size {request.size} B)"
            )
        survivors = self._prefer_unavoided(survivors, request)
        survivors = self._prefer_non_degraded(survivors)
        return min(survivors, key=lambda d: self.score(request, d))


class EncryptingPlacement(DeclarativePlacement):
    """Declarative placement that may trade isolation for encryption.

    When a *confidential* request has no isolated candidate (or only
    expensive ones), this policy also considers non-isolated devices,
    pricing in the crypto cycles every access will pay on the
    requesting observer.  Chosen non-isolated placements are marked
    ``encrypted`` so the access interfaces charge the crypto cost.

    This operationalizes the paper's point that built-in encryption
    accelerators (Sapphire Rapids, FPGAs, DPUs) change placement
    economics for sensitive data.
    """

    def candidates(self, request: PlacementRequest):
        """Satisfying devices, plus encryptable fallbacks for confidential data."""
        from dataclasses import replace as dc_replace

        survivors = super().candidates(request)
        if not request.properties.confidential:
            return survivors
        relaxed = dc_replace(request.properties, confidential=False)
        seen = {device.name for device in survivors}
        memory = self.cluster.memory
        extra = [
            memory[name]
            for name in self._satisfying_names(request.observers, relaxed)
            if name not in seen and self._has_room(memory[name], request.size)
        ]
        return survivors + extra

    def score(self, request: PlacementRequest, device) -> float:
        """Base score plus the crypto surcharge on non-isolated devices."""
        from repro.memory.interfaces import encryption_time

        base = super().score(request, device)
        if not request.properties.confidential:
            return base
        offers = [self.costmodel.offered(o, device) for o in request.observers]
        if all(offer.isolated for offer in offers):
            return base
        usage = request.usage
        touched = usage.touched_bytes if usage is not None else request.size
        crypto = max(
            encryption_time(self.cluster, observer, touched)
            for observer in request.observers
        )
        return base + crypto

    def place(self, request: PlacementRequest) -> MemoryRegion:
        """Place the request, marking non-isolated confidential data encrypted."""
        region = super().place(request)
        if request.properties.confidential:
            offers = [
                self.costmodel.offered(o, region.device)
                for o in request.observers
            ]
            if not all(offer.isolated for offer in offers):
                region.encrypted = True
                self.cluster.trace.emit(
                    self.cluster.engine.now, "placement", "encrypted",
                    region=region.name, device=region.device.name,
                )
        return region


class NaivePlacement(PlacementPolicy):
    """Baseline: seeded-random device with room; only hard physical
    constraints (persistence) respected.  Models a developer placing data
    with no knowledge of the topology."""

    def __init__(self, cluster, manager, costmodel, stream: str = "naive-placement"):
        super().__init__(cluster, manager, costmodel)
        self._rng = cluster.streams.stream(stream)

    def choose_device(self, request: PlacementRequest) -> MemoryDevice:
        """A seeded-random device with room (topology-oblivious baseline)."""
        candidates = [
            device for device in self._alive_devices()
            if self._has_room(device, request.size)
            and (not request.properties.persistent or device.spec.persistent)
            and device.spec.byte_addressable
        ]
        if not candidates:
            self._reject(request, "no device with room")
            raise PlacementError(f"no device has {request.size} B free")
        return candidates[int(self._rng.integers(0, len(candidates)))]


class StaticKindPlacement(PlacementPolicy):
    """Baseline: the traditional explicit model — a fixed mapping from
    region type to device *kind*, chosen once by the developer."""

    DEFAULT_MAP = {
        RegionType.PRIVATE_SCRATCH: MemoryKind.DRAM,
        RegionType.GLOBAL_STATE: MemoryKind.DRAM,
        RegionType.GLOBAL_SCRATCH: MemoryKind.DRAM,
        RegionType.INPUT: MemoryKind.DRAM,
        RegionType.OUTPUT: MemoryKind.DRAM,
    }

    def __init__(self, cluster, manager, costmodel, kind_map=None):
        super().__init__(cluster, manager, costmodel)
        self.kind_map = dict(kind_map or self.DEFAULT_MAP)

    def choose_device(self, request: PlacementRequest) -> MemoryDevice:
        """The least-utilized device of the statically mapped kind."""
        kind = self.kind_map.get(request.region_type, MemoryKind.DRAM)
        candidates = [
            device for device in self._alive_devices()
            if device.kind == kind and self._has_room(device, request.size)
            and (not request.properties.persistent or device.spec.persistent)
        ]
        if not candidates:
            # The explicit programmer's fallback: anything with room.
            candidates = [
                device for device in self._alive_devices()
                if self._has_room(device, request.size)
                and (not request.properties.persistent or device.spec.persistent)
            ]
        if not candidates:
            self._reject(request, "no device with room")
            raise PlacementError(f"no device has {request.size} B free")
        # Deterministic: fill the least-utilized matching device.
        return min(candidates, key=lambda d: (d.utilization, d.name))
