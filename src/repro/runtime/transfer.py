"""Dataflow handover: ownership transfer vs. physical copy (Figure 4).

When a task finishes, its output region must reach the downstream
task(s).  The paper's rule: *"the output memory of the preceding task
can directly become the input memory of the next task if it is
addressable by the compute devices of both tasks"* — then handover is
just an ownership-transfer (a metadata update), and physical data
movement happens only when it is unavoidable.

:class:`HandoverManager` implements that decision and keeps the stats
(zero-copy vs. copy, bytes moved) the Figure 4 bench reports.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.hardware.cluster import Cluster
from repro.memory.manager import MemoryManager, PlacementError
from repro.memory.region import MemoryRegion
from repro.memory.regions import RegionType
from repro.runtime.costmodel import OWNERSHIP_TRANSFER_NS, CostModel
from repro.runtime.placement import PlacementPolicy, PlacementRequest


@dataclasses.dataclass
class HandoverStats:
    zero_copy: int = 0
    copies: int = 0
    bytes_copied: float = 0.0
    transfer_time_ns: float = 0.0
    hedged_copies: int = 0

    @property
    def zero_copy_ratio(self) -> float:
        total = self.zero_copy + self.copies
        return self.zero_copy / total if total else 0.0


@dataclasses.dataclass(frozen=True)
class HedgePolicy:
    """When to launch a backup copy racing a slow handover transfer.

    The hedge delay is evidence-based: the nominal uncontended estimate
    for the copy, stretched by the source's observed
    ``quantile``-latency ratio from the health monitor's scorecard
    (clamped to ``[floor_multiplier, max_multiplier]``).  A healthy
    source therefore hedges only after several expected-durations have
    passed; a source already observed slow hedges sooner in *relative*
    terms while never before ``floor_multiplier``× the estimate.
    """

    #: Which observed latency-ratio quantile sizes the delay (p99 by
    #: default: hedge only transfers slower than ~all recent peers).
    quantile: float = 0.99
    #: Never hedge before this many simulated ns have passed.
    min_delay_ns: float = 1_000.0
    #: Lower clamp on the delay multiplier (guards cold scorecards).
    floor_multiplier: float = 2.0
    #: Upper clamp (a pathological p99 must not disable hedging).
    max_multiplier: float = 8.0

    def delay_ns(
        self, expected_ns: float, ratio: typing.Optional[float]
    ) -> float:
        """Hedge delay for a copy expected to take ``expected_ns``."""
        if ratio is None:
            multiplier = self.floor_multiplier
        else:
            multiplier = min(
                self.max_multiplier, max(self.floor_multiplier, ratio)
            )
        return max(self.min_delay_ns, expected_ns * multiplier)


class HandoverManager:
    """Moves an output region to the next task, minimizing data movement."""

    def __init__(
        self,
        cluster: Cluster,
        manager: MemoryManager,
        costmodel: CostModel,
        placement: PlacementPolicy,
        transfer_retries: int = 0,
        transfer_backoff_ns: float = 10_000.0,
        transfer_timeout_ns: typing.Optional[float] = None,
        hedge: typing.Optional[HedgePolicy] = None,
    ):
        self.cluster = cluster
        self.manager = manager
        self.costmodel = costmodel
        self.placement = placement
        #: Retry/timeout budget applied to every handover copy (0 /
        #: None = fail fast, the pre-recovery behaviour).
        self.transfer_retries = transfer_retries
        self.transfer_backoff_ns = transfer_backoff_ns
        self.transfer_timeout_ns = transfer_timeout_ns
        #: Gray-failure mitigation: with a policy set *and* a
        #: ``replica_source`` wired (the runtime points it at
        #: ``OutputBackupStore.replica_device``), every handover copy
        #: races a hedge from the replica after an evidence-based delay.
        self.hedge = hedge
        self.replica_source: typing.Optional[
            typing.Callable[[MemoryRegion], typing.Optional[str]]
        ] = None
        self.stats = HandoverStats()

    def can_hand_over(self, region: MemoryRegion, to_compute: str) -> bool:
        """Can ``to_compute`` use the region where it lies right now?"""
        offer = self.costmodel.offered(to_compute, region.device)
        # The receiving task reads its input through whatever interface
        # is available; the only hard requirements are the region's own
        # declared properties and reachability.
        if offer.bytes_per_ns == 0.0:
            return False
        if not offer.satisfies(region.properties):
            return False
        # A region on a device the monitor flagged fail-slow still
        # hands over zero-copy: forcing a physical copy would stream
        # the whole payload through the slow path *up front*, while
        # the reader's replica redirect (see TaskContext._read_redirect)
        # sidesteps it pass by pass at no extra data movement.
        return True

    def path_degraded(self, device_name: str, to_compute: str) -> bool:
        """Whether evidence flags ``to_compute``'s path to a device.

        True when the health monitor (with fail-slow detection on) has
        flagged the device itself or any link on the route to it.  Used
        by the handover decision and by the runtime's mid-read
        replica redirect.
        """
        monitor = getattr(self.cluster, "health_monitor", None)
        if monitor is None or getattr(monitor, "degradation", None) is None:
            return False
        if monitor.is_degraded(device_name):
            return True
        degraded_links = monitor.degraded_links()
        if not degraded_links:
            return False
        try:
            route = self.cluster.topology.route(to_compute, device_name)
        except Exception:
            return False
        return any(link.name in degraded_links for link in route)

    def hand_over(
        self,
        region: MemoryRegion,
        from_owner: typing.Hashable,
        to_owner: typing.Hashable,
        to_compute: str,
        report: typing.Optional[list] = None,
    ):
        """Simulation generator: deliver ``region`` to ``to_owner``.

        Returns the region the receiver should use: the same region
        (ownership transferred, zero copy) or a fresh copy placed near
        the receiver (the original is dropped by ``from_owner``).
        ``report``, when given, collects one dict per physical copy
        (bytes, duration, bottleneck link) for causal attribution.
        """
        started = self.cluster.engine.now
        if self.can_hand_over(region, to_compute):
            self.manager.transfer_ownership(region, from_owner, to_owner)
            yield self.cluster.engine.timeout(OWNERSHIP_TRANSFER_NS)
            self.stats.zero_copy += 1
            self.stats.transfer_time_ns += self.cluster.engine.now - started
            self.cluster.trace.emit(
                self.cluster.engine.now, "handover", "zero_copy",
                region=region.name, to=str(to_owner),
            )
            return region

        replica = yield from self._copy_near(region, to_owner, to_compute,
                                             report=report)
        self.manager.drop_owner(region, from_owner)  # frees the original
        self.stats.copies += 1
        self.stats.bytes_copied += region.size
        self.stats.transfer_time_ns += self.cluster.engine.now - started
        self.cluster.trace.emit(
            self.cluster.engine.now, "handover", "copy",
            region=region.name, to=str(to_owner), dst=replica.device.name,
        )
        return replica

    def share_out(
        self,
        region: MemoryRegion,
        from_owner: typing.Hashable,
        receivers: typing.Sequence[typing.Tuple[typing.Hashable, str]],
        report: typing.Optional[list] = None,
    ):
        """Simulation generator: deliver one region to several receivers.

        Receivers that can address the region share its ownership; the
        rest get private copies.  ``from_owner`` drops out afterwards, so
        the region is freed once the last sharing receiver drops it.
        Returns ``{receiver_owner: region}``.
        """
        sharers = [
            (owner, compute) for owner, compute in receivers
            if self.can_hand_over(region, compute)
        ]
        copiers = [
            (owner, compute) for owner, compute in receivers
            if not self.can_hand_over(region, compute)
        ]
        result: typing.Dict[typing.Hashable, MemoryRegion] = {}

        for owner, compute in copiers:
            replica = yield from self._copy_near(region, owner, compute,
                                                 report=report)
            result[owner] = replica
            self.stats.copies += 1
            self.stats.bytes_copied += region.size

        if sharers:
            self.manager.share(region, from_owner, [owner for owner, _ in sharers])
            yield self.cluster.engine.timeout(OWNERSHIP_TRANSFER_NS)
            for owner, _compute in sharers:
                result[owner] = region
            self.stats.zero_copy += len(sharers)
        self.manager.drop_owner(region, from_owner)
        return result

    # -- internals ---------------------------------------------------------

    def _copy_near(
        self,
        region: MemoryRegion,
        to_owner: typing.Hashable,
        to_compute: str,
        report: typing.Optional[list] = None,
    ):
        """Allocate a replica the receiver can use and stream the bytes."""
        request = PlacementRequest(
            size=region.size,
            properties=region.properties,
            owner=to_owner,
            observers=(to_compute,),
            name=f"{region.name}@{to_compute}",
            region_type=RegionType.INPUT,
        )
        try:
            replica = self.placement.place(request)
        except PlacementError:
            # Last resort: relax latency/bandwidth, keep hard properties.
            relaxed = dataclasses.replace(
                request,
                properties=dataclasses.replace(
                    region.properties, latency=region.properties.latency.__class__.ANY,
                    bandwidth=region.properties.bandwidth.__class__.ANY,
                ),
            )
            replica = self.placement.place(relaxed)
        hedge_delay, hedge_source = self._hedge_plan(region, replica)
        try:
            yield from self.cluster.reliable_transfer(
                region.device.name, replica.device.name, region.size,
                retries=self.transfer_retries,
                backoff_ns=self.transfer_backoff_ns,
                timeout_ns=self.transfer_timeout_ns,
                report=report,
                hedge_delay_ns=hedge_delay,
                hedge_source=hedge_source,
            )
            if hedge_source is not None:
                self.stats.hedged_copies += 1
        except BaseException:
            # The bytes never arrived; do not leak the half-made replica.
            if replica.alive and replica.ownership.is_owner(to_owner):
                self.manager.drop_owner(replica, to_owner)
            raise
        return replica

    def _hedge_plan(
        self, region: MemoryRegion, replica: MemoryRegion
    ) -> typing.Tuple[typing.Optional[float], typing.Optional[str]]:
        """``(hedge_delay_ns, hedge_source)`` for one copy, or Nones.

        Hedging requires a policy, a wired replica source, a live
        replica on a *different* device than the primary source, and a
        computable nominal estimate for the copy.
        """
        if self.hedge is None or self.replica_source is None:
            return None, None
        source = self.replica_source(region)
        if source is None or source == region.device.name:
            return None, None
        try:
            route, effective = self.cluster.transfer_route(
                region.device.name, replica.device.name, region.size
            )
        except Exception:
            return None, None
        expected = self.cluster.estimate_transfer_ns(route, effective)
        monitor = getattr(self.cluster, "health_monitor", None)
        ratio = None
        if monitor is not None:
            quantile_of = getattr(monitor, "latency_ratio_quantile", None)
            if quantile_of is not None:
                ratio = quantile_of(region.device.name, self.hedge.quantile)
        return self.hedge.delay_ns(expected, ratio), source
