"""Job-level fault tolerance: retries + checkpoint-pruned re-execution.

Paper §3, Challenge 8(3): node faults are routine, and *"if not handled
properly, failures may lead to data loss and force applications to stop
and restart"*.  This module implements the application-facing half of
the answer (the memory-level half — replication/erasure coding — lives
in :mod:`repro.ft`):

* :class:`ResilientRuntime` re-executes a failed job up to
  ``max_attempts`` times, releasing all of the failed attempt's regions
  first;
* tasks whose property card says ``persistent=True`` act as
  **checkpoints**: their outputs were written to durable media, so a
  retry *prunes* the DAG — each completed checkpoint task is replaced
  by a cheap ``restore`` source re-reading the persisted bytes, and
  every ancestor that only fed checkpointed paths is dropped (lineage
  truncation, the Spark/Ray recovery model generalized to regions).
"""

from __future__ import annotations

import dataclasses
import typing

import networkx as nx

from repro.dataflow.graph import Job, Task
from repro.dataflow.properties import TaskProperties
from repro.dataflow.workspec import RegionUsage, WorkSpec
from repro.hardware.spec import OpClass
from repro.runtime.rts import JobStats, RuntimeSystem


class JobAbandoned(Exception):
    """The job kept failing past the retry budget."""

    def __init__(self, job_name: str, attempts: int, last_error: BaseException):
        super().__init__(
            f"job {job_name!r} failed {attempts} times; last error: {last_error!r}"
        )
        self.attempts = attempts
        self.last_error = last_error


@dataclasses.dataclass
class ResilienceStats:
    attempts: int = 0
    failures: int = 0
    wasted_time_ns: float = 0.0  # simulated time spent in failed attempts
    tasks_skipped_by_checkpoints: int = 0
    checkpoints_used: int = 0


class ResilientRuntime:
    """Retrying, checkpoint-aware wrapper around a :class:`RuntimeSystem`."""

    def __init__(self, rts: RuntimeSystem, max_attempts: int = 3):
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.rts = rts
        self.max_attempts = max_attempts
        self.stats = ResilienceStats()

    def run_job(
        self, job_factory: typing.Callable[[], Job]
    ) -> JobStats:
        """Run ``job_factory()`` to success, retrying on failure.

        The factory is called once per attempt (jobs are single-use).
        Completed ``persistent=True`` tasks of a failed attempt are
        carried into the next attempt as checkpoints.
        """
        checkpoints: typing.Dict[str, int] = {}  # task name -> output size
        last_error: typing.Optional[BaseException] = None
        job_name: typing.Optional[str] = None
        prev_key: typing.Optional[str] = None

        for _attempt in range(self.max_attempts):
            self.stats.attempts += 1
            job = job_factory()
            job_name = job.name
            if checkpoints:
                job, skipped = prune_with_checkpoints(job, checkpoints)
                self.stats.tasks_skipped_by_checkpoints += skipped
                self.stats.checkpoints_used += sum(
                    1 for name in checkpoints if name in job.tasks
                )
            started = self.rts.cluster.engine.now
            execution = self.rts._submit(job)
            if prev_key is not None:
                # Chain whole-job re-executions in the causal record.
                self.rts.cluster.obs.causal.link_retry(
                    prev_key, execution.job_owner
                )
            prev_key = execution.job_owner
            try:
                stats = self.rts.cluster.engine.run(until=execution.done)
            except BaseException as exc:  # noqa: BLE001 - any task failure
                last_error = exc
                self.stats.failures += 1
                self.stats.wasted_time_ns += self.rts.cluster.engine.now - started
                self.rts.cluster.engine.run()  # drain stragglers
                execution.abort()
                checkpoints.update(self._harvest_checkpoints(job, execution))
                continue
            return stats

        raise JobAbandoned(job_name, self.stats.attempts, last_error)

    @staticmethod
    def _harvest_checkpoints(job: Job, execution) -> typing.Dict[str, int]:
        """Tasks that finished AND persisted their output before the crash."""
        harvested = {}
        for name, task_stats in execution.stats.tasks.items():
            task = job.tasks.get(name)
            if task is None or not task.properties.persistent:
                continue
            if task.work.output is None:
                continue
            if (
                task_stats.started_at is not None
                and task_stats.finished_at is not None
                and task_stats.finished_at >= task_stats.started_at
            ):
                # finished_at is set on both success and failure; a task
                # that persisted counts only if it reached its epilogue,
                # which _run_task records by triggering its done event.
                if execution.task_succeeded(name):
                    harvested[name] = task.work.output.size
        return harvested


def prune_with_checkpoints(
    job: Job, checkpoints: typing.Mapping[str, int]
) -> typing.Tuple[Job, int]:
    """Rebuild ``job`` with completed checkpoints as restore-sources.

    Returns ``(pruned_job, n_tasks_skipped)``.  A task is skipped when
    it cannot reach any sink without passing through a completed
    checkpoint — its work is already durably captured downstream of it.
    """
    present = {name for name in checkpoints if name in job.tasks}
    if not present:
        return job, 0

    # Cut the in-edges of checkpointed tasks; whatever can no longer
    # reach a sink fed only checkpointed paths and is dead lineage.
    cut = nx.DiGraph(job.graph)
    # Sinks of the *original* DAG: cutting edges must not promote dead
    # ancestors into sinks of their own.
    sinks = [n for n in job.graph.nodes if job.graph.out_degree(n) == 0]
    for name in present:
        for pred in list(cut.predecessors(name)):
            cut.remove_edge(pred, name)
    alive: set = set()
    for sink in sinks:
        alive.add(sink)
        alive |= nx.ancestors(cut, sink)

    pruned = Job(job.name, global_state_size=job.global_state_size)
    for name in job.tasks:
        if name not in alive:
            continue
        original = job.tasks[name]
        if name in present:
            pruned.add_task(_restore_task(original, checkpoints[name]))
        else:
            clone = Task(
                original.name, work=original.work,
                properties=original.properties, fn=original.fn,
            )
            pruned.add_task(clone)
    for u, v in cut.edges:
        if u in pruned.tasks and v in pruned.tasks:
            pruned.connect(u, v)
    pruned.validate()
    return pruned, len(job.tasks) - len(pruned.tasks)


def _restore_task(original: Task, output_size: int) -> Task:
    """A source task that re-reads a checkpoint instead of recomputing.

    Cost model: stage the persisted bytes through scratch (one read of
    the checkpoint) and republish the output region — no recomputation.
    """
    work = WorkSpec(
        op_class=OpClass.SCALAR,
        ops=output_size / 4096.0,  # metadata walking, not recompute
        scratch=RegionUsage(max(output_size, 64), touches=1.0),
        output=RegionUsage(output_size),
        scratch_puts=original.work.scratch_puts,
    )
    properties = TaskProperties(
        compute=original.properties.compute,
        confidential=original.properties.confidential,
        persistent=True,  # the restored output remains durable
        mem_latency=original.properties.mem_latency,
    )
    return Task(original.name, work=work, properties=properties)
