"""The Runtime System facade: submit jobs, run them, collect metrics.

:class:`RuntimeSystem` wires together the memory manager, cost model,
placement policy, scheduler, and handover manager, and executes
dataflow jobs on the simulated cluster:

* the scheduler maps tasks to compute devices *before* execution
  (deployment decision, §3 challenge 2);
* every region a task requests is placed by the declarative placement
  policy from the viewpoint of the devices that will touch it
  (Figure 3), with output regions placed for *both* the producer and
  the consumers so that handover can be zero-copy (Figure 4);
* when the last owner of a region drops, it is freed (RTS duty 3);
* tasks run as simulation processes; their behaviour is either the
  default derived from the :class:`~repro.dataflow.workspec.WorkSpec`
  or a user generator function receiving a :class:`TaskContext`.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.dataflow.graph import Job, Task
from repro.dataflow.workspec import RegionUsage
from repro.hardware.cluster import Cluster
from repro.hardware.spec import OpClass
from repro.memory.interfaces import AccessMode, AccessPattern, Accessor
from repro.memory.manager import MemoryManager
from repro.memory.properties import MemoryProperties
from repro.memory.region import MemoryRegion, RegionHandle, RegionLostError
from repro.memory.regions import RegionType, region_properties
from repro.runtime.costmodel import CostModel
from repro.runtime.placement import (
    DeclarativePlacement,
    PlacementPolicy,
    PlacementRequest,
)
from repro.obs.span import NOOP_SPAN
from repro.runtime.health import DeviceDegraded
from repro.runtime.scheduler import HeftScheduler, Scheduler
from repro.runtime.tenancy import DEFAULT_TENANT, Preempted, coerce_priority
from repro.runtime.transfer import HandoverManager
from repro.sim.events import Event, Interrupt
from repro import _compat


class TaskFailure(Exception):
    """A task's execution failed; carries the original cause."""


@dataclasses.dataclass
class TaskStats:
    name: str
    device: str = ""
    #: ``None`` until the corresponding lifecycle point is reached.  A
    #: task whose upstream fails never becomes ready or starts; its
    #: timestamps stay ``None`` instead of a meaningless 0.0.
    ready_at: typing.Optional[float] = None
    started_at: typing.Optional[float] = None
    finished_at: typing.Optional[float] = None
    #: How many times the task was (re)started; >1 means in-flight
    #: recovery retried it after an infrastructure failure.
    attempts: int = 0
    #: How many times the task was preempted by a higher-class job and
    #: re-queued (does not consume the recovery attempt budget).
    preemptions: int = 0
    #: The backoff the task's last retry actually slept (feeds the
    #: decorrelated-jitter schedule: next sleep ~ U(base, 3·previous)).
    last_backoff_ns: float = 0.0

    @property
    def started(self) -> bool:
        return self.started_at is not None

    @property
    def duration(self) -> float:
        """Execution time; 0.0 for tasks that never started."""
        if self.started_at is None or self.finished_at is None:
            return 0.0
        return self.finished_at - self.started_at

    @property
    def queue_delay(self) -> typing.Optional[float]:
        """Ready → start wait; ``None`` for tasks that never started."""
        if self.ready_at is None or self.started_at is None:
            return None
        return self.started_at - self.ready_at


@dataclasses.dataclass
class JobStats:
    job_name: str
    submitted_at: float = 0.0
    finished_at: float = 0.0
    assignment: typing.Dict[str, str] = dataclasses.field(default_factory=dict)
    tasks: typing.Dict[str, TaskStats] = dataclasses.field(default_factory=dict)
    zero_copy_handover: int = 0
    copy_handover: int = 0
    bytes_copied: float = 0.0
    regions_allocated: int = 0
    #: In-flight recovery activity (nonzero only with a RecoveryPolicy).
    task_retries: int = 0
    replacements: int = 0
    degraded_reads: int = 0
    error: typing.Optional[BaseException] = None
    #: Multi-tenancy: which tenant submitted the job, at which class,
    #: and how many times the whole job was preempted (victim side).
    tenant: str = DEFAULT_TENANT
    priority: str = ""
    preemptions: int = 0

    @property
    def makespan(self) -> float:
        if self.finished_at < self.submitted_at:
            return 0.0  # still in flight; a makespan is not defined yet
        return self.finished_at - self.submitted_at

    @property
    def ok(self) -> bool:
        return self.error is None


class TaskContext:
    """What a running task sees: its regions and simulation verbs.

    All memory-touching methods are generators and must be used with
    ``yield from`` inside the task function.
    """

    def __init__(self, execution: "_JobExecution", task: Task, device_name: str):
        self._execution = execution
        self._rts = execution.rts
        self.task = task
        self.compute = device_name
        #: This task's span (parent for phase spans); NOOP when disabled.
        self.span = NOOP_SPAN
        self.inputs: typing.List[RegionHandle] = []
        self._scratch: typing.Optional[MemoryRegion] = None
        self._output: typing.Optional[MemoryRegion] = None
        self._extra_regions: typing.List[MemoryRegion] = []
        #: Nominal (spec-sheet) cost of the work this attempt has done
        #: so far — what a retry would have to redo at healthy speed.
        #: Feeds the economics gate of the voluntary fail-slow aborts.
        self.attempt_nominal_ns = 0.0

    # -- identity / time ------------------------------------------------------

    @property
    def owner(self) -> str:
        return self.task.qualified_name

    @property
    def now(self) -> float:
        return self._rts.cluster.engine.now

    def log(self, message: str, **fields) -> None:
        """Emit a structured trace message attributed to this task."""
        self._rts.cluster.trace.emit(self.now, "task", message,
                                     task=self.owner, **fields)

    # -- regions ----------------------------------------------------------

    def input(self) -> RegionHandle:
        """The (single) input handle; raises if there is none."""
        if not self.inputs:
            raise TaskFailure(f"{self.owner} has no input region")
        return self.inputs[0]

    def _avoided_devices(self) -> typing.Tuple[str, ...]:
        """Devices this task fled in earlier attempts (fail-slow aborts
        or implicated failures).  Passed to placement as a soft avoid
        list: the monitor's flag can lag the abort by a detection
        window, and without this a retry is routinely placed straight
        back onto the device it just escaped."""
        failed_on = self._execution._failed_on.get(self.task.name, ())
        return tuple(sorted(failed_on))

    def _scratch_properties(self) -> MemoryProperties:
        """Table 2 Private Scratch defaults, tightened by the task card."""
        base = region_properties(RegionType.PRIVATE_SCRATCH)
        card = self.task.properties
        return dataclasses.replace(
            base,
            latency=card.mem_latency if card.mem_latency is not None else base.latency,
            confidential=card.confidential,
        )

    def private_scratch(self, size: typing.Optional[int] = None) -> RegionHandle:
        """Allocate (once) and return this task's Private Scratch."""
        if self._scratch is None:
            if size is None:
                size = self.task.work.scratch_size
            if size <= 0:
                raise TaskFailure(f"{self.owner}: no scratch size declared or given")
            props = self._scratch_properties()
            region = self._rts.placement.place(PlacementRequest(
                size=size, properties=props, owner=self.owner,
                observers=(self.compute,),
                name=f"{self.owner}#scratch",
                region_type=RegionType.PRIVATE_SCRATCH,
                usage=self.task.work.scratch,
                avoid=self._avoided_devices(),
            ))
            self._scratch = region
        return self._scratch.handle(self.owner)

    def output(self, size: typing.Optional[int] = None) -> RegionHandle:
        """Allocate (once) and return this task's output region.

        Placed for this device *and* all downstream consumers' devices,
        which is what makes zero-copy handover possible.
        """
        if self._output is None:
            if size is None:
                size = self.task.work.output_size
            if size <= 0:
                raise TaskFailure(f"{self.owner}: no output size declared or given")
            observers = [self.compute] + [
                self._execution.assignment[d.name] for d in self.task.downstream()
            ]
            props = self.task.properties.output_properties()
            if not self.task.properties.persistent:
                # Persistent media are slow by nature (Table 1); the
                # durability requirement overrides the speed defaults.
                props = props.merged_with(region_properties(RegionType.OUTPUT))
            region = self._rts.placement.place(PlacementRequest(
                size=size, properties=props, owner=self.owner,
                observers=tuple(dict.fromkeys(observers)),
                name=f"{self.owner}#out",
                region_type=RegionType.OUTPUT,
                usage=self.task.work.output,
                avoid=self._avoided_devices(),
            ))
            self._output = region
        return self._output.handle(self.owner)

    def request(
        self,
        region_type,
        size: int,
        name: typing.Optional[str] = None,
    ) -> RegionHandle:
        """Allocate a region of any named type, owned by this task.

        ``region_type`` may be a predefined
        :class:`~repro.memory.regions.RegionType`, a type returned by
        :func:`~repro.memory.regions.define_region_type`, or its name as
        a string.  The region is task-owned and freed automatically when
        the task finishes (like Private Scratch).
        """
        from repro.memory.regions import lookup_region_type

        if isinstance(region_type, str):
            region_type = lookup_region_type(region_type)
        props = region_properties(region_type)
        if self.task.properties.confidential and not props.confidential:
            props = dataclasses.replace(props, confidential=True)
        region = self._rts.placement.place(PlacementRequest(
            size=size, properties=props, owner=self.owner,
            observers=(self.compute,),
            name=name or f"{self.owner}#{region_type.value}",
            region_type=region_type,
        ))
        self._extra_regions.append(region)
        return region.handle(self.owner)

    def global_state(self) -> RegionHandle:
        """Handle to the job's Global State region (Table 2)."""
        region = self._execution.global_state
        if region is None:
            raise TaskFailure(
                f"job {self.task.job.name!r} declared no global state"
            )
        return region.handle(self._execution.job_owner)

    def publish(self, slot: str, size: typing.Optional[int] = None) -> RegionHandle:
        """Allocate a Global Scratch slot and make it visible to consumers."""
        return self._execution.publish_slot(self, slot, size)

    def consume(self, slot: str):
        """Generator: wait until ``slot`` is published, return its handle."""
        handle = yield from self._execution.consume_slot(self, slot)
        return handle

    # -- verbs ------------------------------------------------------------

    def read(
        self,
        handle: RegionHandle,
        nbytes: typing.Optional[int] = None,
        pattern: AccessPattern = AccessPattern.SEQUENTIAL,
        access_size: int = 64,
        mode: typing.Optional[AccessMode] = None,
    ):
        """Generator: read through the region's access interface."""
        duration = yield from self._touch(
            handle, nbytes, pattern, access_size, mode, is_write=False
        )
        return duration

    def write(
        self,
        handle: RegionHandle,
        nbytes: typing.Optional[int] = None,
        pattern: AccessPattern = AccessPattern.SEQUENTIAL,
        access_size: int = 64,
        mode: typing.Optional[AccessMode] = None,
    ):
        """Generator: write through the region's access interface."""
        duration = yield from self._touch(
            handle, nbytes, pattern, access_size, mode, is_write=True
        )
        return duration

    def _touch(self, handle, nbytes, pattern, access_size, mode, is_write):
        sp = self._rts.cluster.obs.span("profile", "memory_phase",
                                        parent=self.span)
        began = self.now
        accessor = Accessor(self._rts.cluster, handle, self.compute)
        region_size = handle.region.size
        remaining = region_size if nbytes is None else nbytes
        requested = remaining
        total = 0.0
        monitor = self._rts.health
        # With fail-slow detection on, large touches run in slices so
        # evidence lands — and mitigation can react — *mid-access*
        # instead of only at the end.  Same bytes at the same rates;
        # only the per-access latency term repeats per slice.
        sliced = (
            monitor is not None
            and getattr(monitor, "degradation", None) is not None
        )
        step = (
            max(1, region_size // self.TOUCH_SLICES)
            if sliced else region_size
        )
        # Larger-than-region touches wrap around (multiple passes).
        redirect = None
        while remaining > 0:
            if not is_write:
                # Re-check the path between slices: a device flagged
                # fail-slow mid-read stops hurting after one slow slice
                # when a healthy replica can serve the rest.
                target = self._read_redirect(handle.region)
                if target != redirect:
                    redirect = target
                    accessor = Accessor(
                        self._rts.cluster, handle, self.compute,
                        source_device=redirect,
                    )
                    if redirect is not None:
                        self._rts.cluster.obs.counter(
                            "hedge.read_around").inc()
                        self.log("read_around", region=handle.region.name,
                                 primary=handle.region.device.name,
                                 replica=redirect)
            chunk = min(remaining, step)
            op = accessor.write if is_write else accessor.read
            duration = yield from op(
                chunk, pattern=pattern, mode=mode, access_size=access_size
            )
            total += duration
            remaining -= chunk
            self.attempt_nominal_ns += accessor.last_expected_ns
            chunks_left = (remaining + step - 1) // step
            if (
                is_write and remaining > 0
                and self._abort_write_if_degraded(
                    handle.region, duration, accessor.last_expected_ns
                )
                and self._abort_pays_off(
                    duration * chunks_left,
                    accessor.last_expected_ns * chunks_left,
                )
            ):
                # Writes have no replica to redirect to — the escape
                # hatch is a voluntary abort: the retry re-places the
                # output region off the flagged device (placement
                # treats it as a last resort) and re-runs the attempt.
                if sp:
                    region = handle.region
                    sp.set(
                        task=self.owner, device=self.compute,
                        region=region.name, backing=region.device.name,
                        op="write", nbytes=requested, duration=total,
                        aborted=True,
                    )
                sp.close()
                raise DeviceDegraded(handle.region.device.name)
        if sp:
            region = handle.region
            sp.set(
                task=self.owner, device=self.compute,
                region=region.name, backing=region.device.name,
                rtype=region.region_type.value if region.region_type else "",
                op="write" if is_write else "read",
                nbytes=requested, duration=total,
                pattern=pattern.value, access_size=access_size,
            )
        sp.close()
        if self._execution.causal is not None:
            region = handle.region
            self._execution._causal_chain(
                self.task.name, "memory_phase", "transfer",
                began, self.now,
                task=self.owner, device=self.compute,
                op="write" if is_write else "read",
                nbytes=requested, region=region.name,
                backing=region.device.name,
            )
        return total

    #: Memory touches run in this many slices while fail-slow detection
    #: is on, so the detector gets evidence (and the read-around /
    #: write-abort mitigations a decision point) every slice instead of
    #: once per whole-region access.
    TOUCH_SLICES = 8

    def _retry_affordable(self) -> bool:
        """Whether recovery could actually pay for one more attempt.

        A voluntary fail-slow abort that recovery cannot afford (no
        policy, attempt cap reached, dry retry budget) would turn a
        slow-but-correct attempt into a job failure — so the escape
        hatches stay shut without headroom.
        """
        policy = self._rts.recovery
        if policy is None:
            return False
        stats = self._execution.stats.tasks.get(self.task.name)
        if stats is not None and stats.attempts >= policy.max_task_attempts:
            return False
        budget = self._execution.retry_budget
        if budget is not None and not budget.can_spend(self.now):
            return False
        return True

    def _abort_pays_off(
        self, projected_ns: float, nominal_remaining_ns: float
    ) -> bool:
        """Economics gate for voluntary aborts.

        Fleeing a flagged device is only worth it when riding out the
        *remaining* slices at the observed slow rate costs more than a
        whole fresh attempt at nominal speed — the work already done
        plus the remainder plus one retry backoff.  Without this gate a
        mildly slow device triggers aborts that spend more (and drain
        the retry budget that a genuinely pathological episode will
        need) than they save.
        """
        policy = self._rts.recovery
        retry_cost = (
            self.attempt_nominal_ns + nominal_remaining_ns
            + (policy.backoff_base_ns if policy is not None else 0.0)
        )
        return projected_ns > retry_cost

    def _abort_if_degraded(
        self, observed_ns: float, nominal_ns: float
    ) -> bool:
        """Whether this attempt should abandon its flagged compute device.

        True only when the mitigation stack can actually act on the
        evidence: detection flagged this device, *this* slice really ran
        slow (a stale flag over a since-restored device must not abort
        healthy work), recovery can afford the re-placement, and the
        task has not already fled this device once (a repeat abort
        would burn retry budget for nothing when no better candidate
        existed).
        """
        monitor = self._rts.health
        if monitor is None or getattr(monitor, "degradation", None) is None:
            return False
        if nominal_ns <= 0 or (
            observed_ns < monitor.degradation.degrade_ratio * nominal_ns
        ):
            return False
        if not monitor.is_degraded(self.compute):
            return False
        if not self._retry_affordable():
            return False
        failed_on = self._execution._failed_on.get(self.task.name, set())
        return self.compute not in failed_on

    def _abort_write_if_degraded(
        self, region, observed_ns: float, expected_ns: float
    ) -> bool:
        """Whether an in-flight write should flee its flagged backing.

        The write-side analogue of :meth:`_abort_if_degraded`: the
        evidence must have flagged the region's device (or its route),
        *this* slice must really have run slow against the cost model's
        nominal expectation, recovery must be able to afford the retry,
        and the task must not have fled this backing device already.
        """
        monitor = self._rts.health
        if monitor is None or getattr(monitor, "degradation", None) is None:
            return False
        if expected_ns <= 0 or (
            observed_ns < monitor.degradation.degrade_ratio * expected_ns
        ):
            return False
        if not self._rts.handover.path_degraded(
            region.device.name, self.compute
        ):
            return False
        if not self._retry_affordable():
            return False
        failed_on = self._execution._failed_on.get(self.task.name, set())
        return region.device.name not in failed_on

    def _read_redirect(self, region) -> typing.Optional[str]:
        """Replica device to serve reads from, or ``None`` to read in place.

        The hedged read-around: when evidence has flagged the region's
        primary path fail-slow and a backup replica of the same bytes
        sits on a device whose path is healthy, the remaining read
        passes are served from the replica — the mid-access analogue of
        the hedged handover copy, at zero extra data movement.  Engaged
        only with the full gray-failure stack (detection + hedge policy
        + backup store); otherwise reads always go to the primary.
        """
        handover = self._rts.handover
        if handover.hedge is None or handover.replica_source is None:
            return None
        if not handover.path_degraded(region.device.name, self.compute):
            return None
        replica = handover.replica_source(region)
        if replica is None or replica == region.device.name:
            return None
        monitor = self._rts.cluster.health_monitor
        if monitor.is_degraded(replica):
            return None
        # Only links *unique* to the replica route can veto: the
        # monitor blames every link on a slow route, so a flagged link
        # both paths share says nothing about which is faster — and a
        # shared slow hop costs the same either way.
        degraded_links = monitor.degraded_links()
        if degraded_links:
            topo = self._rts.cluster.topology
            try:
                primary_links = {
                    link.name
                    for link in topo.route(self.compute, region.device.name)
                }
                replica_links = {
                    link.name for link in topo.route(self.compute, replica)
                }
            except Exception:
                return None
            if any(
                name in degraded_links
                for name in replica_links - primary_links
            ):
                return None
        return replica

    def read_async(
        self,
        handle: RegionHandle,
        nbytes: typing.Optional[int] = None,
        pattern: AccessPattern = AccessPattern.SEQUENTIAL,
        access_size: int = 64,
    ):
        """Start a background read; returns an event to ``yield`` later.

        This is the paper's §2.2(3) interleaving: kick off the fetch,
        keep computing, then wait for the event when the data is needed::

            pending = ctx.read_async(ctx.input())
            yield from ctx.compute_ops(1e6)   # overlaps with the fetch
            yield pending
        """
        generator = self._touch(
            handle, nbytes, pattern, access_size, AccessMode.ASYNC,
            is_write=False,
        )
        return self._rts.cluster.engine.process(
            generator, name=f"{self.owner}#prefetch"
        )

    def write_async(
        self,
        handle: RegionHandle,
        nbytes: typing.Optional[int] = None,
        pattern: AccessPattern = AccessPattern.SEQUENTIAL,
        access_size: int = 64,
    ):
        """Start a background write; returns an event to ``yield`` later."""
        generator = self._touch(
            handle, nbytes, pattern, access_size, AccessMode.ASYNC,
            is_write=True,
        )
        return self._rts.cluster.engine.process(
            generator, name=f"{self.owner}#writeback"
        )

    #: Compute phases run as this many slices, each priced at the
    #: device's *current* speed — so a fault or restore landing
    #: mid-phase changes the remainder, the way real hardware behaves,
    #: and the detector gets evidence per slice instead of per phase.
    COMPUTE_SLICES = 8

    def compute_ops(self, ops: float, op_class: typing.Optional[OpClass] = None):
        """Generator: burn ``ops`` operations on this task's device.

        When latency evidence flags this device fail-slow mid-phase
        (and the recovery machinery can still move the task), the
        attempt aborts with :class:`~repro.runtime.health.DeviceDegraded`
        rather than riding the slow device to the end — the retry
        re-places it onto a healthy peer, budget permitting.
        """
        if op_class is None:
            op_class = self.task.work.op_class
        sp = self._rts.cluster.obs.span("profile", "compute_phase",
                                        parent=self.span)
        device = self._rts.cluster.compute[self.compute]
        began = self.now
        monitor = self._rts.health
        slices = self.COMPUTE_SLICES if ops > 0 else 1
        duration = 0.0
        for i in range(slices):
            slice_ops = ops / slices
            slice_duration = device.compute_time(op_class, slice_ops)
            yield self._rts.cluster.engine.timeout(slice_duration)
            duration += slice_duration
            nominal = device.nominal_compute_time(op_class, slice_ops)
            self.attempt_nominal_ns += nominal
            if monitor is not None and slice_ops > 0:
                # Evidence for the fail-slow detector: physical duration
                # vs the spec-sheet estimate (no-op with detection off).
                monitor.observe_latency(
                    self.compute, slice_duration, nominal)
            slices_left = slices - (i + 1)
            if slices_left > 0 and self._abort_if_degraded(
                slice_duration, nominal
            ) and self._abort_pays_off(
                slice_duration * slices_left, nominal * slices_left
            ):
                if sp:
                    sp.set(task=self.owner, device=self.compute,
                           op=op_class.value, ops=ops, duration=duration,
                           aborted=True)
                sp.close()
                raise DeviceDegraded(self.compute)
        if sp:
            sp.set(task=self.owner, device=self.compute,
                   op=op_class.value, ops=ops, duration=duration)
        sp.close()
        if self._execution.causal is not None:
            self._execution._causal_chain(
                self.task.name, "compute_phase", "compute",
                began, self.now,
                task=self.owner, device=self.compute,
                op=op_class.value, ops=ops,
            )
        return duration

    def sleep(self, ns: float):
        """Generator: idle for ``ns`` simulated nanoseconds."""
        yield self._rts.cluster.engine.timeout(ns)


def _preemption_cause(exc: BaseException) -> typing.Optional[Preempted]:
    """The Preempted cause if ``exc`` is a preemption, else None."""
    if isinstance(exc, Preempted):
        return exc
    if isinstance(exc, Interrupt) and isinstance(exc.cause, Preempted):
        return exc.cause
    return None


class _JobExecution:
    """One running job: mailboxes, per-task processes, completion event."""

    def __init__(
        self,
        rts: "RuntimeSystem",
        job: Job,
        tenant: typing.Optional[str] = None,
        priority=None,
    ):
        job.validate()
        self.rts = rts
        self.job = job
        self.job_owner = f"job:{job.name}#{job.id}"
        # Tenancy: explicit argument > job-level annotation > default.
        self.tenant = tenant or getattr(job, "tenant", None) or DEFAULT_TENANT
        if priority is None:
            priority = getattr(job, "priority", None)
        self.priority = coerce_priority(priority) if priority is not None else None
        self.stats = JobStats(
            job_name=job.name, submitted_at=rts.cluster.engine.now,
            tenant=self.tenant,
            priority=self.priority.name.lower() if self.priority else "",
        )
        # Root of this job's span tree (explicit close: the job scope
        # crosses simulation processes).  No-op when "job" is disabled.
        self.span = rts.cluster.obs.begin_span(
            "job", "run", job=job.name, tenant=self.tenant
        )
        self.assignment = rts.scheduler.assign(job, rts.cluster, rts.costmodel)
        self.stats.assignment = dict(self.assignment)
        # Causal DAG for critical-path attribution (None when the
        # "causal" trace category is off; every call site guards on it).
        self.causal = rts.cluster.obs.causal.job_begin(
            self.job_owner, job.name, self.stats.submitted_at
        )
        if self.causal is not None:
            self.causal.fields["tenant"] = self.tenant
        #: task name -> live attempt process (set only while the task
        #: holds a compute slot; the window preemption may interrupt).
        self._attempt_procs: typing.Dict[str, typing.Any] = {}
        #: task name -> id of the task's latest causal node (chain head).
        self._cnodes: typing.Dict[str, int] = {}
        #: consumer task name -> handover nodes that delivered its inputs.
        self._delivered: typing.Dict[str, typing.List[int]] = {}
        #: global-scratch slot -> publisher's chain node at publish time.
        self._slot_nodes: typing.Dict[str, int] = {}
        if self.causal is not None:
            est = getattr(rts.scheduler, "last_estimate", None)
            if est is not None and est.get("job") == job.name:
                self.causal.fields["est_makespan"] = est["makespan"]

        engine = rts.cluster.engine
        self.done: Event = engine.event()
        self._task_done: typing.Dict[str, Event] = {
            name: engine.event() for name in job.tasks
        }
        #: task -> list of input region handles delivered by upstreams
        self._inboxes: typing.Dict[str, typing.List[RegionHandle]] = {
            name: [] for name in job.tasks
        }
        self._expected_inputs: typing.Dict[str, int] = {}
        #: task -> devices it already failed on (avoided when re-placing)
        self._failed_on: typing.Dict[str, typing.Set[str]] = {}
        #: global scratch slots: name -> (event, region)
        self._slots: typing.Dict[str, typing.List] = {
            slot: [engine.event(), None] for slot in job.global_scratch_slots()
        }
        self.global_state: typing.Optional[MemoryRegion] = None
        self._handover_base = (
            rts.handover.stats.zero_copy,
            rts.handover.stats.copies,
            rts.handover.stats.bytes_copied,
        )
        self._regions_base = rts.placement.placements
        #: Set once the job's backups were released; a concurrent backup
        #: that lands after this point re-releases itself (see
        #: :meth:`_follow_backup`).
        self._backups_released = False
        #: Per-job retry token bucket (None = unlimited, the legacy shape).
        self.retry_budget = (
            rts.recovery.make_retry_budget() if rts.recovery is not None else None
        )
        #: Seeded per-job stream for decorrelated retry jitter: co-failed
        #: tasks draw different delays, so one storm's retries fan out
        #: instead of colliding on the same wake tick.
        self._retry_rng = rts.cluster.streams.stream(
            f"retry-jitter:{self.job_owner}"
        )
        self._start()

    # -- startup -----------------------------------------------------------

    def _start(self) -> None:
        if self.job.global_state_size > 0:
            observers = tuple(dict.fromkeys(self.assignment.values()))
            self.global_state = self.rts.placement.place(PlacementRequest(
                size=self.job.global_state_size,
                properties=region_properties(RegionType.GLOBAL_STATE),
                owner=self.job_owner,
                observers=observers,
                name=f"{self.job.name}#state",
                region_type=RegionType.GLOBAL_STATE,
            ))
        engine = self.rts.cluster.engine
        for task in self.job.tasks.values():
            upstream_with_output = [
                u for u in task.upstream() if u.work.output is not None
            ]
            self._expected_inputs[task.name] = len(upstream_with_output)
            engine.process(self._run_task(task), name=task.qualified_name)
        engine.process(self._finalize(), name=f"{self.job.name}#finalize")

    # -- global scratch slots -------------------------------------------------

    def publish_slot(
        self, ctx: TaskContext, slot: str, size: typing.Optional[int]
    ) -> RegionHandle:
        if slot not in self._slots:
            raise TaskFailure(f"slot {slot!r} was not declared by any task")
        event, existing = self._slots[slot]
        if existing is not None:
            if existing.alive:
                if slot in ctx.task.work.scratch_puts:
                    # A retried producer re-publishing its own slot is
                    # idempotent; a second *distinct* publisher is a bug.
                    return existing.handle(self.job_owner)
                raise TaskFailure(f"slot {slot!r} already published")
            # The published region was lost to a fault: publish afresh.
            self._slots[slot][1] = None
        if size is None:
            size = self.job.global_scratch_slots()[slot]
        region = self.rts.placement.place(PlacementRequest(
            size=size,
            properties=region_properties(RegionType.GLOBAL_SCRATCH),
            owner=self.job_owner,
            observers=tuple(dict.fromkeys(self.assignment.values())),
            name=f"{self.job.name}#{slot}",
            region_type=RegionType.GLOBAL_SCRATCH,
            usage=ctx.task.work.scratch_puts.get(slot),
        ))
        self._slots[slot][1] = region
        if not event.triggered:
            event.succeed(region)
        if self.causal is not None:
            publisher = self._cnodes.get(ctx.task.name)
            if publisher is not None:
                self._slot_nodes[slot] = publisher
        return region.handle(self.job_owner)

    def consume_slot(self, ctx: TaskContext, slot: str):
        if slot not in self._slots:
            raise TaskFailure(f"unknown global scratch slot {slot!r}")
        event, region = self._slots[slot]
        if region is None:
            waited_from = self.rts.cluster.engine.now
            yield event
            # Re-read: the slot may have been re-published since the
            # event first fired (fault recovery replaces lost regions).
            region = self._slots[slot][1]
            if self.causal is not None:
                publisher = self._slot_nodes.get(slot)
                self._causal_chain(
                    ctx.task.name, "slot_wait", "dependency_wait",
                    waited_from, self.rts.cluster.engine.now,
                    extra_parents=(
                        () if publisher is None
                        else ((publisher, "data_dep"),)
                    ),
                    task=ctx.owner, device=ctx.compute, slot=slot,
                )
        return region.handle(self.job_owner)

    # -- causal emission ---------------------------------------------------

    def _causal_chain(
        self,
        task_name: str,
        kind: str,
        bucket: typing.Optional[str],
        begin: float,
        end: float,
        extra_parents: typing.Iterable = (),
        chain_kind: str = "seq",
        **fields,
    ) -> typing.Optional[int]:
        """Append a node to ``task_name``'s causal chain.  No-op (None)
        when causal tracing is off or the graph is saturated."""
        if self.causal is None:
            return None
        parents = []
        chain = self._cnodes.get(task_name)
        if chain is not None:
            parents.append((chain, chain_kind))
        parents.extend(extra_parents)
        nid = self.causal.add_node(kind, bucket, begin, end,
                                   parents=parents, **fields)
        if nid is not None:
            self._cnodes[task_name] = nid
        return nid

    def _chain_end(self, task_name: str, default: float) -> float:
        """End time of the task's latest causal node (clamped to now)."""
        chain = self._cnodes.get(task_name)
        if self.causal is None or chain is None:
            return default
        return min(self.causal.nodes[chain].end, default)

    # -- preemption ----------------------------------------------------------

    def preempt(self, by: str = "") -> int:
        """Interrupt every task attempt currently holding a compute slot.

        Called by the admission layer when a higher-class arrival needs
        the slots this (``BEST_EFFORT``) job occupies.  Preempted tasks
        release their slot, scratch, and output through the normal
        attempt-failure unwind, then re-queue behind the preemptor;
        tasks still waiting on dependencies are untouched (they and the
        preempted tasks' not-yet-started successors simply keep waiting
        on the done-events).  Returns the number of tasks interrupted
        (0 = nothing was running, the caller should pick another
        victim).
        """
        interrupted = 0
        for name, process in list(self._attempt_procs.items()):
            if process is not None and process.is_alive:
                process.interrupt(Preempted(by))
                interrupted += 1
        if interrupted:
            self.stats.preemptions += 1
            obs = self.rts.cluster.obs
            obs.counter("preemption.jobs").inc()
            obs.event(
                "recovery", "job_preempted", job=self.job.name,
                tenant=self.tenant, by=by, tasks=interrupted,
            )
        return interrupted

    # -- task execution ------------------------------------------------------

    def _run_task(self, task: Task):
        engine = self.rts.cluster.engine
        obs = self.rts.cluster.obs
        spawned = engine.now
        stats = TaskStats(name=task.name, device=self.assignment[task.name])
        self.stats.tasks[task.name] = stats
        policy = self.rts.recovery
        try:
            # 1. Wait for every upstream task (data and control edges).
            upstream_events = [self._task_done[u.name] for u in task.upstream()]
            if upstream_events:
                yield engine.all_of(upstream_events)
            stats.ready_at = engine.now
            if self.causal is not None:
                # Data edges come from the handover nodes that delivered
                # our inputs; control-only upstreams contribute their
                # chain heads.
                parents = [
                    (nid, "data_dep")
                    for nid in self._delivered.get(task.name, ())
                ]
                for up in task.upstream():
                    if up.work.output is None:
                        up_node = self._cnodes.get(up.name)
                        if up_node is not None:
                            parents.append((up_node, "data_dep"))
                self._causal_chain(
                    task.name, "dep_wait", "dependency_wait",
                    spawned, engine.now, extra_parents=parents,
                    task=task.qualified_name,
                )

            # 2. Run attempts.  Recoverable infrastructure failures are
            # retried with backoff, re-placement onto surviving devices,
            # and degraded reads of lost inputs from backups; anything
            # else (or an exhausted budget) falls through to the job-level
            # failure path below.  The repair itself runs inside the
            # loop: a fault landing mid-restore burns an attempt and is
            # retried too (with the dead device replaced by then).
            if policy is not None:
                monitor = self.rts.cluster.health_monitor
                if (
                    monitor is not None
                    and getattr(monitor, "degradation", None) is not None
                    and monitor.is_degraded(self.assignment[task.name])
                ):
                    # Degraded-last applies at dispatch time too: the
                    # assignment was made at submit, and evidence that
                    # arrived while we waited on upstream tasks should
                    # move us off a since-flagged device *before* we
                    # pay a slow attempt to find out.
                    self._replace(task)
            repair_cause: typing.Optional[BaseException] = None
            requeue_cause: typing.Optional[BaseException] = None
            while True:
                if requeue_cause is None:
                    # A preemption re-queue is not a fresh attempt: it
                    # must not consume the recovery attempt budget.
                    stats.attempts += 1
                try:
                    if repair_cause is not None:
                        yield from self._prepare_retry(task, stats, repair_cause)
                        repair_cause = None
                    if requeue_cause is not None:
                        yield from self._prepare_requeue(
                            task, stats, requeue_cause
                        )
                        requeue_cause = None
                    yield from self._attempt(task, stats)
                    break
                except BaseException as exc:  # noqa: BLE001
                    if (
                        _preemption_cause(exc) is not None
                        and stats.preemptions < self.rts.max_task_preemptions
                    ):
                        # Preemption is policy, not failure: re-queue
                        # even with no RecoveryPolicy configured.  The
                        # per-task bound is a livelock backstop; the
                        # driver already bounds preemptions per job.
                        stats.preemptions += 1
                        requeue_cause = exc
                        continue
                    if (
                        policy is None
                        or stats.attempts >= policy.max_task_attempts
                        or not policy.recoverable(exc)
                        # Last in the chain: tokens are only spent on
                        # failures that would otherwise retry.
                        or not self._budget_allows(task)
                    ):
                        raise
                    repair_cause = exc
            self._task_done[task.name].succeed(stats)
        except BaseException as exc:  # noqa: BLE001 - report any task failure
            # Only tasks that actually ran get a finish time; a task whose
            # upstream failed never started, and its timestamps stay None.
            if stats.started_at is not None:
                stats.finished_at = engine.now
            obs.counter("tasks.failed").inc()
            if self.causal is not None and task.name in self._cnodes:
                self._causal_chain(
                    task.name, "task_failed", "recovery_retry",
                    self._chain_end(task.name, engine.now), engine.now,
                    chain_kind="retry",
                    task=task.qualified_name,
                    device=self.assignment.get(task.name, ""),
                    error=type(exc).__name__, attempt=stats.attempts,
                )
            if not self._task_done[task.name].triggered:
                self._task_done[task.name].fail(TaskFailure(
                    f"task {task.qualified_name} failed: {exc!r}"
                ))
                self._task_done[task.name].defuse()
            if not self.done.triggered:
                # The first failure ends the job: stamp the finish time
                # here, because _finalize's all_of fails and returns early
                # (a failed job used to report a negative makespan).
                self.stats.error = exc
                self.stats.finished_at = engine.now
                if self.span:
                    self.span.set(
                        ok=False, error=repr(exc),
                        tasks=len(self.stats.tasks),
                        zero_copy=self.stats.zero_copy_handover,
                        copies=self.stats.copy_handover,
                        bytes_copied=self.stats.bytes_copied,
                    )
                self.span.close()
                obs.counter("jobs.failed").inc()
                if self.causal is not None:
                    failed = self._cnodes.get(task.name)
                    obs.causal.job_finish(
                        self.causal, engine.now, ok=False,
                        parents=() if failed is None else (failed,),
                    )
                obs.slo.record(self.job.name, self.stats.makespan, ok=False)
                self.done.fail(exc)
                self.done.defuse()
            return

    def _attempt(self, task: Task, stats: TaskStats):
        """One try at running ``task`` end-to-end (slot, behaviour,
        epilogue).  Raises on failure after releasing everything the
        attempt allocated, so a retry starts from a clean slate."""
        engine = self.rts.cluster.engine
        obs = self.rts.cluster.obs
        monitor = self.rts.cluster.health_monitor
        device = self.rts.cluster.compute[self.assignment[task.name]]
        stats.device = device.name
        process = engine.active_process
        watched = monitor is not None and process is not None
        if watched:
            monitor.watch(device.name, process)
        slot_request = device.acquire_slot()
        try:
            yield slot_request
        except BaseException:
            if watched:
                monitor.unwatch(device.name, process)
            device.cancel_slot(slot_request)
            raise
        stats.started_at = engine.now
        if process is not None:
            # Holding a slot makes this attempt a preemption target;
            # the registration window closes when the slot is released
            # (the epilogue's handovers are never interrupted).
            self._attempt_procs[task.name] = process
        if self.causal is not None:
            begin = self._chain_end(
                task.name,
                stats.ready_at if stats.ready_at is not None else engine.now,
            )
            extra = []
            fields = {}
            release = obs.causal.last_slot_release(device.name)
            if release is not None and begin < engine.now:
                rel_key, rel_node, rel_task = release
                if rel_key == self.job_owner:
                    # Same-job hand-off: a real queue edge.
                    extra.append((rel_node, "queue"))
                else:
                    # Cross-job hand-off: annotate only, so per-job
                    # graphs stay self-contained.
                    fields["blocked_by"] = f"{rel_key}/{rel_task}"
            self._causal_chain(
                task.name, "queue_wait", "queue_wait",
                min(begin, engine.now), engine.now, extra_parents=extra,
                task=task.qualified_name, device=device.name,
                attempt=stats.attempts, **fields,
            )
        task_span = obs.begin_span(
            "task", "run", parent=self.span,
            task=task.qualified_name, device=device.name,
            attempt=stats.attempts,
        )
        occupancy = obs.timeline(f"device.occupancy/{device.name}")
        occupancy.adjust(engine.now, +1)
        ctx = TaskContext(self, task, device.name)
        ctx.span = task_span
        ctx.inputs = list(self._inboxes[task.name])
        try:
            behaviour = task.fn if task.fn is not None else _default_behaviour
            yield from behaviour(ctx)
            device.tasks_completed += 1
        except BaseException as exc:  # noqa: BLE001
            if task_span:
                task_span.set(error=repr(exc))
            task_span.close()
            self._release_attempt(ctx)
            raise
        finally:
            self._attempt_procs.pop(task.name, None)
            if watched:
                monitor.unwatch(device.name, process)
            device.busy_time += engine.now - stats.started_at
            device.release_slot(slot_request)
            occupancy.adjust(engine.now, -1)
        stats.finished_at = engine.now
        if task_span:
            task_span.set(queue_delay=stats.queue_delay)
        task_span.close()
        if self.causal is not None:
            done_node = self._causal_chain(
                task.name, "task_done", None, engine.now, engine.now,
                task=task.qualified_name, device=device.name,
            )
            if done_node is not None:
                obs.causal.note_slot_release(
                    device.name, self.job_owner, done_node,
                    task.qualified_name,
                )

        # Epilogue: hand outputs over, drop owned regions.
        try:
            yield from self._epilogue(task, ctx)
        except BaseException:
            self._release_attempt(ctx)
            raise

    def _release_attempt(self, ctx: TaskContext) -> None:
        """Free regions a failed attempt allocated (scratch, output,
        ad-hoc requests).  Inputs are kept: the next attempt re-reads
        them (or repairs them from backups if they were lost)."""
        regions = [ctx._scratch, ctx._output] + list(ctx._extra_regions)
        for region in regions:
            if (
                region is not None
                and region.alive
                and region.ownership.is_owner(ctx.owner)
            ):
                self.rts.memory.drop_owner(region, ctx.owner)

    def _budget_allows(self, task: Task) -> bool:
        """Spend one retry token; a dry bucket ends recovery for good.

        The budget is per *job*, deadline-aware, and token-bucketed
        (see :class:`~repro.runtime.health.RetryBudget`): a degradation
        storm that keeps failing attempts drains the bucket and the job
        fails fast instead of amplifying into a retry storm.
        """
        if self.retry_budget is None:
            return True
        rts = self.rts
        if self.retry_budget.try_spend(rts.cluster.engine.now):
            return True
        rts.cluster.obs.counter("recovery.budget_denied").inc()
        rts.cluster.obs.event(
            "recovery", "budget_denied", job=self.job.name,
            task=task.qualified_name, spent=self.retry_budget.spent,
        )
        rts.cluster.trace.emit(
            rts.cluster.engine.now, "recovery", "budget_denied",
            task=task.qualified_name, spent=self.retry_budget.spent,
        )
        return False

    def _prepare_retry(self, task: Task, stats: TaskStats, exc: BaseException):
        """Between attempts: back off, move off bad devices, repair
        lost inputs.  Raises (ending recovery) when the job's global
        state is gone or a lost input has no backup."""
        rts = self.rts
        engine = rts.cluster.engine
        rts.cluster.obs.counter("recovery.task_retries").inc()
        self.stats.task_retries += 1
        failed_device = self.assignment[task.name]
        recovery_begin = self._chain_end(task.name, engine.now)
        degraded_base = self.stats.degraded_reads
        rts.cluster.trace.emit(
            engine.now, "recovery", "task_retry",
            task=task.qualified_name, attempt=stats.attempts,
            device=self.assignment[task.name], error=type(exc).__name__,
        )
        if isinstance(exc, DeviceDegraded):
            # The abort names the slow device itself — for a write
            # abort that is the *memory* backing, not the task's
            # compute, and pinning the right one keeps a healthy
            # compute assignment in place.
            self._failed_on.setdefault(task.name, set()).add(exc.device)
        elif self._device_implicated(task, exc):
            self._failed_on.setdefault(task.name, set()).add(
                self.assignment[task.name]
            )
        delay = rts.recovery.jittered_backoff_ns(
            stats.attempts, self._retry_rng, stats.last_backoff_ns
        )
        stats.last_backoff_ns = delay
        yield engine.timeout(delay)
        if self.global_state is not None and not self.global_state.alive:
            raise TaskFailure(
                f"job {self.job.name!r} lost its Global State region"
            ) from exc
        self._replace(task)
        # A dead device poisons this task's successors too: the output is
        # placed for *their* devices and the handover targets them.  They
        # cannot have started yet (they wait on this task's done-event),
        # so they are safe to move off dead devices here.
        for downstream in task.downstream():
            self._replace(downstream)
        yield from self._repair_inputs(task)
        if self.causal is not None:
            # The recovery interval starts where the doomed attempt's
            # last recorded node ended: it absorbs the in-flight time the
            # failure wasted, the backoff, and the input repair.
            fields = dict(
                attempt=stats.attempts, error=type(exc).__name__,
                device=failed_device,
                degraded_reads=self.stats.degraded_reads - degraded_base,
            )
            fault = rts.cluster.obs.causal.last_fault(failed_device)
            if fault is not None:
                fields["cause"] = fault["kind"]
                fields["cause_target"] = fault["target"]
            if self.assignment[task.name] != failed_device:
                fields["replaced_by"] = self.assignment[task.name]
            self._causal_chain(
                task.name, "recovery", "recovery_retry",
                min(recovery_begin, engine.now), engine.now,
                chain_kind="retry", task=task.qualified_name, **fields,
            )

    def _prepare_requeue(self, task: Task, stats: TaskStats, exc: BaseException):
        """Between a preemption and the re-attempt: back off briefly.

        Unlike :meth:`_prepare_retry` there is nothing to repair — the
        device is healthy, the attempt's scratch/output were released
        by the normal unwind, and the inputs are still live.  The
        backoff exists so the preemptor's slot requests land ahead of
        ours in the device's FIFO queue.
        """
        rts = self.rts
        engine = rts.cluster.engine
        cause = _preemption_cause(exc)
        rts.cluster.obs.counter("preemption.task_requeues").inc()
        begin = self._chain_end(task.name, engine.now)
        rts.cluster.trace.emit(
            engine.now, "recovery", "task_preempted",
            task=task.qualified_name, device=self.assignment[task.name],
            by=cause.by if cause is not None else "",
        )
        yield engine.timeout(rts.preemption_backoff_ns)
        if self.causal is not None:
            self._causal_chain(
                task.name, "preempted", "preemption",
                min(begin, engine.now), engine.now, chain_kind="retry",
                task=task.qualified_name,
                device=self.assignment[task.name],
                by=cause.by if cause is not None else "",
                preemption=stats.preemptions,
            )

    def _device_implicated(self, task: Task, exc: BaseException) -> bool:
        from repro.runtime.health import DeviceDown
        from repro.sim.events import Interrupt

        if isinstance(exc, (DeviceDown, DeviceDegraded)):
            return True
        if isinstance(exc, Interrupt) and isinstance(exc.cause, DeviceDown):
            return True
        return self.rts.cluster.compute[self.assignment[task.name]].failed

    def _replace(self, task: Task) -> None:
        """Move the task off a dead/unhealthy/blacklisted device onto the
        cheapest surviving candidate (no-op while the current one is fine)."""
        rts = self.rts
        cluster = rts.cluster
        monitor = cluster.health_monitor
        current = self.assignment[task.name]
        avoid = self._failed_on.get(task.name, set())
        device = cluster.compute.get(current)
        flagged = (
            monitor is not None
            and getattr(monitor, "degradation", None) is not None
            and monitor.is_degraded(current)
        )
        if (
            device is not None
            and not device.failed
            and current not in avoid
            and not flagged
            and (monitor is None or monitor.can_use(current))
        ):
            return
        candidates = Scheduler.candidates(task, cluster)
        preferred = [d for d in candidates if d.name not in avoid] or candidates
        if monitor is not None and hasattr(monitor, "is_degraded"):
            # A re-placed task should land on a device the evidence
            # trusts; flagged peers stay last-resort candidates.
            fresh = [d for d in preferred if not monitor.is_degraded(d.name)]
            preferred = fresh or preferred

        def estimate(d):
            try:
                return HeftScheduler._exec_estimate(task, d.name, rts.costmodel)
            except Exception:  # noqa: BLE001 - unreachable memory etc.
                return float("inf")

        best = min(preferred, key=estimate)
        if best.name == current:
            return
        self.assignment[task.name] = best.name
        self.stats.assignment[task.name] = best.name
        cluster.obs.counter("recovery.replacements").inc()
        self.stats.replacements += 1
        cluster.trace.emit(
            cluster.engine.now, "recovery", "replace",
            task=task.qualified_name, src=current, dst=best.name,
        )

    def _repair_inputs(self, task: Task):
        """Re-materialize lost input regions from the backup store
        (degraded read); raises :class:`TaskFailure` when impossible."""
        inbox = self._inboxes[task.name]
        backups = self.rts.backups
        for index, handle in enumerate(list(inbox)):
            region = handle.region
            if region.alive:
                continue
            owner = task.qualified_name
            restored = None
            if backups is not None:
                restored = yield from backups.restore(
                    region, owner=owner,
                    observers=(self.assignment[task.name],),
                    placement=self.rts.placement,
                )
            if restored is None:
                raise TaskFailure(
                    f"task {task.qualified_name} lost input {region.name!r} "
                    "and no backup copy is available"
                )
            inbox[index] = restored.handle(owner)
            self.rts.cluster.obs.counter("recovery.degraded_reads").inc()
            self.stats.degraded_reads += 1
            self.rts.cluster.trace.emit(
                self.rts.cluster.engine.now, "recovery", "degraded_read",
                task=task.qualified_name, region=region.name,
                device=restored.device.name,
            )

    def task_succeeded(self, name: str) -> bool:
        """Whether the named task completed successfully (public API for
        resilience layers harvesting checkpoints)."""
        event = self._task_done.get(name)
        return bool(event is not None and event.triggered and event.ok)

    def _follow_backup(self, proc, delivered):
        """Simulation generator: re-key a finished concurrent backup
        onto the regions the consumers actually received.

        If the job was already torn down by the time the copy lands,
        the protection is moot — release it again so the store holds
        no orphaned copies."""
        entry = yield proc
        backups = self.rts.backups
        if entry is None or backups is None:
            return
        backups.register_delivered(entry, delivered)
        if self._backups_released:
            backups.release_job(self.job_owner)

    def _epilogue(self, task: Task, ctx: TaskContext):
        # Hand the output over first: if the handover fails, the inputs
        # below are still intact and a retried attempt can re-run the
        # task (dropping them first would leave nothing to retry from).
        output = ctx._output
        downstream = task.downstream()
        if output is not None and downstream:
            engine = self.rts.cluster.engine
            handover_begin = engine.now
            report = [] if self.causal is not None else None
            receivers = [
                (d.qualified_name, self.assignment[d.name]) for d in downstream
            ]
            backup_proc = None
            if self.rts.backups is not None:
                # The backup copy streams *concurrently* with delivery
                # instead of serializing a full extra transfer into the
                # critical path.  Protection — and the hedge/read-around
                # replica — becomes available the moment the copy lands;
                # until then transfers simply run unhedged.  Best-effort
                # either way: a copy whose source died mid-stream is
                # discarded by the store, not registered.
                backup_proc = engine.process(
                    self.rts.backups.backup_delivery(
                        [output], self.job_owner
                    ),
                    name=f"{task.qualified_name}#backup",
                )
            if len(receivers) == 1:
                owner, compute = receivers[0]
                region = yield from self.rts.handover.hand_over(
                    output, ctx.owner, owner, compute, report=report
                )
                delivered = {owner: region}
            else:
                delivered = yield from self.rts.handover.share_out(
                    output, ctx.owner, receivers, report=report
                )
            if backup_proc is not None:
                unique = {id(r): r for r in delivered.values()}
                engine.process(
                    self._follow_backup(backup_proc, list(unique.values())),
                    name=f"{task.qualified_name}#backup-register",
                )
            # A fault may have wiped a delivered region while the
            # epilogue was still in flight.  Fail THIS attempt (the
            # producer can simply re-run and re-deliver) instead of
            # handing downstream a dead input it cannot recover alone.
            dead = [r for r in delivered.values() if not r.alive]
            if dead:
                raise RegionLostError(
                    f"delivery of {output.name!r} was lost before "
                    f"{task.qualified_name} finished handing it over"
                )
            if self.causal is not None:
                copies = report or []
                handover_node = self._causal_chain(
                    task.name, "handover",
                    "transfer" if copies else "ownership_stall",
                    handover_begin, engine.now,
                    task=task.qualified_name, device=ctx.compute,
                    zero_copy=not copies, copies=copies,
                    nbytes=output.size, receivers=len(downstream),
                )
                if handover_node is not None:
                    for d in downstream:
                        self._delivered.setdefault(d.name, []).append(
                            handover_node
                        )
            for d in downstream:
                region = delivered[d.qualified_name]
                self._inboxes[d.name].append(region.handle(d.qualified_name))
        elif output is not None:
            # Sink output: belongs to the job until the job completes.
            self.rts.memory.transfer_ownership(output, ctx.owner, self.job_owner)

        # Drop scratch and any ad-hoc task-owned regions.
        if ctx._scratch is not None and ctx._scratch.alive:
            self.rts.memory.drop_owner(ctx._scratch, ctx.owner)
        for region in ctx._extra_regions:
            if region.alive and region.ownership.is_owner(ctx.owner):
                self.rts.memory.drop_owner(region, ctx.owner)
        # Drop our claim on inputs (frees them once all consumers did).
        for handle in ctx.inputs:
            if handle.region.alive and handle.region.ownership.is_owner(ctx.owner):
                self.rts.memory.drop_owner(handle.region, ctx.owner)

    def abort(self) -> None:
        """Release every region still owned by this job or its tasks.

        Called by resilience layers after a failed run so a retry starts
        from a clean pool (the RTS's normal last-owner-drop path never
        fires for tasks that crashed before consuming their inputs).
        """
        owners = {t.qualified_name for t in self.job.tasks.values()}
        owners.add(self.job_owner)
        for region in list(self.rts.memory.live_regions()):
            for owner in owners & region.ownership.owners:
                if region.alive and not region.ownership.released:
                    region.ownership.drop(owner)
        if self.rts.backups is not None:
            self._backups_released = True
            self.rts.backups.release_job(self.job_owner)

    def _finalize(self):
        engine = self.rts.cluster.engine
        try:
            yield engine.all_of(list(self._task_done.values()))
        except BaseException:
            return  # failure already recorded on self.done
        # Free job-owned regions: global state, slots, sink outputs.
        for region in list(self.rts.memory.live_regions()):
            if region.ownership.is_owner(self.job_owner):
                self.rts.memory.drop_owner(region, self.job_owner)
        if self.rts.backups is not None:
            self._backups_released = True
            self.rts.backups.release_job(self.job_owner)
        self.stats.finished_at = engine.now
        zc, cp, bc = self._handover_base
        self.stats.zero_copy_handover = self.rts.handover.stats.zero_copy - zc
        self.stats.copy_handover = self.rts.handover.stats.copies - cp
        self.stats.bytes_copied = self.rts.handover.stats.bytes_copied - bc
        self.stats.regions_allocated = self.rts.placement.placements - self._regions_base
        obs = self.rts.cluster.obs
        if self.span:
            self.span.set(
                ok=True, tasks=len(self.stats.tasks),
                zero_copy=self.stats.zero_copy_handover,
                copies=self.stats.copy_handover,
                bytes_copied=self.stats.bytes_copied,
            )
        self.span.close()
        obs.counter("jobs.completed").inc()
        if self.causal is not None:
            # Every task's chain head is a candidate finish-parent; the
            # critical-path walk picks whichever actually ended last.
            obs.causal.job_finish(
                self.causal, engine.now, ok=True,
                parents=list(self._cnodes.values()),
            )
        obs.slo.record(self.job.name, self.stats.makespan, ok=True)
        if not self.done.triggered:
            self.done.succeed(self.stats)


def _default_behaviour(ctx: TaskContext):
    """The behaviour synthesized from a task's WorkSpec.

    Phases (sequential, mirroring the cost model): read inputs, read
    consumed global-scratch slots, touch private scratch, compute, touch
    global state, write output, publish global-scratch slots.
    """
    work = ctx.task.work

    if work.input_usage is not None:
        for handle in ctx.inputs:
            yield from ctx.read(
                handle,
                nbytes=int(handle.region.size * work.input_usage.touches),
                pattern=work.input_usage.pattern,
                access_size=work.input_usage.access_size,
            )

    for slot in work.scratch_gets:
        handle = yield from ctx.consume(slot)
        yield from ctx.read(handle)

    if work.scratch is not None and work.scratch.size > 0:
        scratch = ctx.private_scratch()
        touched = work.scratch.touched_bytes
        yield from ctx.write(
            scratch, nbytes=touched // 2,
            pattern=work.scratch.pattern, access_size=work.scratch.access_size,
        )
        yield from ctx.read(
            scratch, nbytes=touched - touched // 2,
            pattern=work.scratch.pattern, access_size=work.scratch.access_size,
        )

    if work.ops > 0:
        yield from ctx.compute_ops(work.ops)

    if work.state_usage is not None and work.state_usage.touched_bytes > 0:
        state = ctx.global_state()
        yield from ctx.write(
            state, nbytes=work.state_usage.touched_bytes,
            pattern=work.state_usage.pattern,
            access_size=work.state_usage.access_size,
        )

    if work.output is not None and work.output.size > 0:
        out = ctx.output()
        yield from ctx.write(
            out, pattern=work.output.pattern, access_size=work.output.access_size
        )

    for slot, usage in work.scratch_puts.items():
        handle = ctx.publish(slot, usage.size)
        yield from ctx.write(
            handle, nbytes=usage.size, pattern=usage.pattern,
            access_size=usage.access_size,
        )


class RuntimeSystem:
    """Public facade: a runtime system bound to one cluster."""

    #: How long a preempted task waits before re-queueing, so the
    #: preemptor's slot requests land first in the device FIFO.
    preemption_backoff_ns: float = 10_000.0
    #: Livelock backstop: after this many preemptions a task treats the
    #: next one as a plain failure (the admission layer bounds
    #: preemptions per *job* well below this).
    max_task_preemptions: int = 8

    def __init__(
        self,
        cluster: Cluster,
        scheduler: typing.Optional[Scheduler] = None,
        placement: typing.Optional[PlacementPolicy] = None,
        memory: typing.Optional[MemoryManager] = None,
        health=None,
        recovery=None,
        backups=None,
        hedge=None,
    ):
        self.cluster = cluster
        self.memory = memory if memory is not None else MemoryManager(cluster)
        self.costmodel = CostModel(cluster)
        self.placement = (
            placement
            if placement is not None
            else DeclarativePlacement(cluster, self.memory, self.costmodel)
        )
        self.scheduler = scheduler if scheduler is not None else HeftScheduler()
        #: Health/recovery plumbing (all optional; None = the pre-health
        #: behaviour where any infrastructure failure fails the job).
        self.health = (
            health if health is not None
            else getattr(cluster, "health_monitor", None)
        )
        self.recovery = recovery
        #: Optional :class:`~repro.runtime.transfer.HedgePolicy`: with a
        #: backup store attached, handover copies race a backup replica
        #: after an evidence-based delay (gray-failure mitigation).
        self.hedge = hedge
        self.handover = HandoverManager(
            cluster, self.memory, self.costmodel, self.placement,
            transfer_retries=(
                recovery.transfer_retries if recovery is not None else 0
            ),
            transfer_timeout_ns=(
                recovery.transfer_timeout_ns if recovery is not None else None
            ),
            hedge=hedge,
        )
        # Through the property setter so the handover's hedge replica
        # source stays wired even when callers attach the store later
        # (``rts.backups = OutputBackupStore(...)`` is a common idiom).
        self.backups = backups
        self.executions: typing.List[_JobExecution] = []
        if self.health is not None:
            # Health transitions change which offers exist; the cached
            # cost model must not keep quoting dead devices.
            self.health.on_change(self.costmodel.invalidate)
        cluster.obs.registry.add_collector(self._collect_runtime_metrics)
        # Continuous-telemetry watchers: per-window job throughput and
        # the in-flight level, derived from counters the hot paths
        # already maintain (no extra work per job event).
        obs = cluster.obs
        telem = obs.telemetry
        telem.watch(
            "jobs.completed",
            lambda: obs.counter("jobs.completed").value, kind="rate",
        )
        telem.watch(
            "jobs.failed",
            lambda: obs.counter("jobs.failed").value, kind="rate",
        )
        telem.watch(
            "rts.inflight",
            lambda: (
                obs.counter("jobs.submitted").value
                - obs.counter("jobs.completed").value
                - obs.counter("jobs.failed").value
            ),
            kind="level",
        )

    @property
    def backups(self):
        """The attached :class:`~repro.ft.backups.OutputBackupStore`."""
        return self._backups

    @backups.setter
    def backups(self, store) -> None:
        self._backups = store
        self.handover.replica_source = (
            store.replica_device
            if store is not None and hasattr(store, "replica_device")
            else None
        )

    def _collect_runtime_metrics(self):
        """Runtime-layer readings for the obs registry snapshot (the
        subsystems already count these; no hot-path double counting)."""
        yield "handover.zero_copy", self.handover.stats.zero_copy
        yield "handover.copies", self.handover.stats.copies
        yield "handover.bytes_copied", self.handover.stats.bytes_copied
        yield "handover.hedged_copies", self.handover.stats.hedged_copies
        yield "placement.placements", self.placement.placements
        yield "placement.rejections", self.placement.rejections
        if self.health is not None and self.health.degradation is not None:
            yield "health.degraded_now", len(self.health.degraded_devices())
            yield "health.degraded_links_now", len(self.health.degraded_links())

    def _submit(
        self,
        job: Job,
        *,
        tenant: typing.Optional[str] = None,
        priority=None,
    ) -> _JobExecution:
        """Canonical submission: validate, schedule, and start a job.

        Internal — :class:`repro.api.Session` and the admission layer
        land here; external callers go through the Session facade.
        """
        self.cluster.obs.counter("jobs.submitted").inc()
        execution = _JobExecution(self, job, tenant=tenant, priority=priority)
        self.executions.append(execution)
        return execution

    def submit(self, job: Job) -> _JobExecution:
        """Deprecated: submit through ``repro.api.Session`` instead."""
        _compat.warn_once(
            "RuntimeSystem.submit",
            "repro.RuntimeSystem.submit() is deprecated; use "
            "repro.api.connect(...).submit(job) so admission, tenancy, "
            "and QoS apply",
        )
        return self._submit(job)

    def plan(self, job: Job):
        """Dry-run: the assignment, placements, and makespan the runtime
        *would* produce for ``job`` — no allocation, no execution.  See
        :mod:`repro.runtime.planner`."""
        from repro.runtime.planner import plan_job

        return plan_job(self, job)

    def run(self, until: typing.Optional[float] = None) -> None:
        """Advance the simulation (until a time, or until idle)."""
        self.cluster.engine.run(until=until)

    def run_job(self, job: Job) -> JobStats:
        """Deprecated: use ``repro.api.Session.run(job)`` instead."""
        _compat.warn_once(
            "RuntimeSystem.run_job",
            "repro.RuntimeSystem.run_job() is deprecated; use "
            "repro.api.connect(...).run(job) (the Session facade)",
        )
        execution = self._submit(job)
        return self.cluster.engine.run(until=execution.done)

    def run_jobs(self, jobs: typing.Sequence[Job]) -> typing.List[JobStats]:
        """Deprecated: use ``repro.api.Session.run(*jobs)`` instead."""
        _compat.warn_once(
            "RuntimeSystem.run_jobs",
            "repro.RuntimeSystem.run_jobs() is deprecated; use "
            "repro.api.connect(...).run(*jobs) (the Session facade)",
        )
        executions = [self._submit(job) for job in jobs]
        self.cluster.engine.run(until=self.cluster.engine.all_of(
            [e.done for e in executions]
        ))
        return [e.stats for e in executions]
