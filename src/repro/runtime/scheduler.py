"""Resource-aware task scheduling (RTS duty 4, paper §2.3).

The default :class:`HeftScheduler` is a HEFT-style list scheduler with
the paper's twist: the communication cost of an edge drops to the
(constant, tiny) ownership-transfer cost whenever the downstream device
can directly address the region the upstream task's output will land on
— i.e. the zero-copy handover of Figure 4 is visible to the optimizer,
not just to the data plane.

:class:`RoundRobinScheduler` and :class:`RandomScheduler` are the
ablation baselines (bench C6).
"""

from __future__ import annotations

import typing

from repro.dataflow.graph import Job, Task
from repro.hardware.cluster import Cluster
from repro.hardware.compute import ComputeDevice
from repro.runtime.costmodel import OWNERSHIP_TRANSFER_NS, CostModel


class SchedulingError(Exception):
    """No feasible assignment exists."""


Assignment = typing.Dict[str, str]  # task name -> compute device name


class Scheduler:
    """Interface: map every task of a job to a compute device."""

    def assign(self, job: Job, cluster: Cluster, costmodel: CostModel) -> Assignment:
        """Map every task of the job to a compute device."""
        raise NotImplementedError

    # -- shared helpers ----------------------------------------------------

    @staticmethod
    def candidates(
        task: Task,
        cluster: Cluster,
        allowed: typing.Optional[typing.Set[str]] = None,
    ) -> typing.List[ComputeDevice]:
        """Compute devices that may run ``task`` (kind + op-class filter,
        optionally restricted to a coherence domain).  A health monitor,
        when attached, rules out SUSPECT/DOWN/DRAINING and blacklisted
        devices — unless that would leave nothing to schedule on, in
        which case the health filter is waived rather than deadlocking."""
        devices = cluster.compute_devices()
        monitor = getattr(cluster, "health_monitor", None)
        if monitor is not None:
            healthy = [d for d in devices if monitor.can_use(d.name)]
            devices = healthy or devices
        if allowed is not None:
            devices = [d for d in devices if d.name in allowed]
        pool = getattr(task.properties, "device_pool", None)
        if pool is not None and pool in cluster.device_pools:
            members = set(cluster.device_pools[pool])
            pooled = [d for d in devices if d.name in members]
            if not pooled:
                raise SchedulingError(
                    f"no device in pool {pool!r} can run task "
                    f"{task.qualified_name!r} (pool members: "
                    f"{sorted(members)})"
                )
            devices = pooled
        if task.properties.compute is not None:
            devices = [d for d in devices if d.kind == task.properties.compute]
        if task.work.ops > 0:
            devices = [d for d in devices if d.supports(task.work.op_class)]
        if not devices:
            raise SchedulingError(
                f"no compute device can run task {task.qualified_name!r} "
                f"(kind={task.properties.compute}, op={task.work.op_class}"
                + (", constrained to the job's Global State coherence domain"
                   if allowed is not None else "")
                + ")"
            )
        if monitor is not None and hasattr(monitor, "is_degraded"):
            # Devices observed fail-slow are a last resort: schedule
            # around them while any non-degraded *feasible* device
            # exists.  This runs after the kind/op filters so a fresh
            # device that can't run the task never starves it.
            fresh = [d for d in devices if not monitor.is_degraded(d.name)]
            devices = fresh or devices
        return devices

    @staticmethod
    def state_domain(
        job: Job, cluster: Cluster, costmodel: CostModel
    ) -> typing.Optional[typing.Set[str]]:
        """The compute devices a job with Global State may use.

        Table 2 requires the Global State region to be coherent and
        synchronously addressable by *every* task.  On architectures
        without a shared coherence domain (Figure 1a) that constrains
        scheduling: we pick the memory device whose coherent+sync
        reach covers the most compute devices and restrict the job to
        that set.  Returns None when the job declares no global state.
        """
        if job.global_state_size <= 0:
            return None
        best: typing.Set[str] = set()
        for memory in cluster.memory_devices():
            members = {
                compute.name
                for compute in cluster.compute_devices()
                if (offer := costmodel.offered(compute.name, memory)).coherent
                and offer.sync
            }
            if len(members) > len(best):
                best = members
        if not best:
            raise SchedulingError(
                f"job {job.name!r} declares Global State but no memory "
                "device is coherently addressable from any compute device"
            )
        return best


class HeftScheduler(Scheduler):
    """Heterogeneous-Earliest-Finish-Time list scheduling."""

    def __init__(self):
        #: Predictions of the most recent ``assign()`` — the job name,
        #: its estimated makespan, and per-task estimated finish times.
        #: Causal attribution stamps these onto the job graph so reports
        #: can compare predicted vs. actual critical paths.
        self.last_estimate: typing.Optional[dict] = None

    def assign(self, job: Job, cluster: Cluster, costmodel: CostModel) -> Assignment:
        """HEFT list scheduling with handover-aware edge costs."""
        job.validate()
        tasks = job.topological_order()
        allowed = self.state_domain(job, cluster, costmodel)
        candidates = {
            t.name: self.candidates(t, cluster, allowed) for t in tasks
        }
        # Large DAGs repeat a handful of task shapes across hundreds of
        # tasks; estimate each (shape, device) pair once per assign().
        # The shape tuple captures every WorkSpec field the estimate
        # reads (WorkSpec itself carries a dict, so it can't be a key).
        est_memo: typing.Dict[tuple, float] = {}
        exec_time: typing.Dict[str, typing.Dict[str, float]] = {}
        for t in tasks:
            work = t.work
            input_bytes = sum(u.work.output_size for u in t.upstream())
            shape = (
                work.op_class, work.ops, work.input_usage, work.output,
                work.scratch, work.state_usage, input_bytes,
            )
            times: typing.Dict[str, float] = {}
            for d in candidates[t.name]:
                key = (shape, d.name)
                estimate = est_memo.get(key)
                if estimate is None:
                    estimate = self._exec_estimate(t, d.name, costmodel)
                    est_memo[key] = estimate
                times[d.name] = estimate
            exec_time[t.name] = times

        rank = self._upward_ranks(job, cluster, costmodel, exec_time)
        order = sorted(tasks, key=lambda t: -rank[t.name])

        assignment: Assignment = {}
        finish: typing.Dict[str, float] = {}
        # Per-device list of slot-available times (length = slot count).
        device_slots = {
            d.name: [0.0] * d.slots for d in cluster.compute_devices()
        }

        # Edge costs depend only on (payload size, src device, dst
        # device); the candidate loop re-asks the same triples for
        # every sibling sharing a predecessor.
        edge_memo: typing.Dict[tuple, float] = {}
        for task in order:
            best_device, best_eft, best_start = None, float("inf"), 0.0
            for device in candidates[task.name]:
                ready = 0.0
                for pred in task.upstream():
                    if pred.name not in assignment:
                        continue  # pred ranks lower; conservative zero
                    ekey = (
                        pred.work.output_size,
                        assignment[pred.name],
                        device.name,
                    )
                    comm = edge_memo.get(ekey)
                    if comm is None:
                        comm = self._edge_cost(
                            pred, assignment[pred.name], device.name,
                            cluster, costmodel,
                        )
                        edge_memo[ekey] = comm
                    ready = max(ready, finish[pred.name] + comm)
                slots = device_slots[device.name]
                slot_index = min(range(len(slots)), key=lambda i: slots[i])
                start = max(ready, slots[slot_index])
                eft = start + exec_time[task.name][device.name]
                if eft < best_eft:
                    best_device, best_eft, best_start = device, eft, start
            if best_device is None or best_eft == float("inf"):
                raise SchedulingError(f"task {task.qualified_name!r} is unschedulable")
            assignment[task.name] = best_device.name
            finish[task.name] = best_eft
            slots = device_slots[best_device.name]
            slot_index = min(range(len(slots)), key=lambda i: slots[i])
            slots[slot_index] = best_eft
        est_makespan = max(finish.values()) if finish else 0.0
        self.last_estimate = {
            "job": job.name,
            "makespan": est_makespan,
            "finish": dict(finish),
        }
        trace = cluster.trace
        if trace.wants("sched"):
            trace.emit(
                cluster.engine.now, "sched", "assign",
                job=job.name, tasks=len(assignment),
                devices=len(set(assignment.values())),
                est_makespan=est_makespan,
            )
        return assignment

    # -- estimates ----------------------------------------------------------

    @staticmethod
    def _exec_estimate(task: Task, device_name: str, costmodel: CostModel) -> float:
        scratch_device = costmodel.best_scratch_device(device_name)

        def memory_for(role: str):
            return scratch_device

        input_bytes = sum(u.work.output_size for u in task.upstream())
        return costmodel.task_time_estimate(
            task, device_name, memory_for, input_bytes=input_bytes
        )

    def _upward_ranks(
        self,
        job: Job,
        cluster: Cluster,
        costmodel: CostModel,
        exec_time: typing.Dict[str, typing.Dict[str, float]],
    ) -> typing.Dict[str, float]:
        mean_exec = {
            name: sum(v for v in times.values() if v < float("inf"))
            / max(1, sum(1 for v in times.values() if v < float("inf")))
            for name, times in exec_time.items()
        }
        # Rough fleet-average bandwidth for the ranking phase only;
        # constant across the whole DAG, so compute it once.
        bandwidths = [d.spec.bandwidth for d in cluster.memory_devices()]
        mean_bw = sum(bandwidths) / max(1, len(bandwidths))
        rank: typing.Dict[str, float] = {}
        for task in reversed(job.topological_order()):
            downstream_cost = 0.0
            if task.work.output_size:
                comm = self._mean_edge_cost(task, mean_bw)
                for succ in task.downstream():
                    downstream_cost = max(
                        downstream_cost, comm + rank[succ.name]
                    )
            else:
                for succ in task.downstream():
                    downstream_cost = max(downstream_cost, rank[succ.name])
            rank[task.name] = mean_exec[task.name] + downstream_cost
        return rank

    @staticmethod
    def _mean_edge_cost(task: Task, mean_bw: float) -> float:
        nbytes = task.work.output_size
        if nbytes == 0:
            return 0.0
        return nbytes / max(mean_bw, 1e-9)

    @staticmethod
    def _edge_cost(
        pred: Task,
        pred_device: str,
        device: str,
        cluster: Cluster,
        costmodel: CostModel,
    ) -> float:
        """Edge cost under the ownership model: a metadata update when a
        shared-addressable placement exists, a physical copy otherwise."""
        nbytes = pred.work.output_size
        if nbytes == 0:
            return 0.0
        if pred_device == device:
            return OWNERSHIP_TRANSFER_NS
        topo = cluster.topology
        for mem in cluster.memory_devices():
            if topo.addressable(pred_device, mem.name) and topo.addressable(
                device, mem.name
            ):
                return OWNERSHIP_TRANSFER_NS
        src = costmodel.best_scratch_device(pred_device)
        dst = costmodel.best_scratch_device(device)
        if src is None or dst is None:
            return float("inf")
        return costmodel.transfer_time(src, dst, nbytes)


class RoundRobinScheduler(Scheduler):
    """Baseline: cycle through feasible devices, ignoring all costs."""

    def __init__(self):
        self._cursor = 0

    def assign(self, job: Job, cluster: Cluster, costmodel: CostModel) -> Assignment:
        """Cycle tasks through feasible devices, ignoring costs."""
        job.validate()
        allowed = self.state_domain(job, cluster, costmodel)
        assignment: Assignment = {}
        for task in job.topological_order():
            devices = self.candidates(task, cluster, allowed)
            assignment[task.name] = devices[self._cursor % len(devices)].name
            self._cursor += 1
        return assignment


class RandomScheduler(Scheduler):
    """Baseline: seeded-random feasible device per task."""

    def __init__(self, stream_name: str = "random-scheduler"):
        self.stream_name = stream_name

    def assign(self, job: Job, cluster: Cluster, costmodel: CostModel) -> Assignment:
        """Seeded-random feasible device per task (baseline)."""
        job.validate()
        allowed = self.state_domain(job, cluster, costmodel)
        rng = cluster.streams.stream(self.stream_name)
        assignment: Assignment = {}
        for task in job.topological_order():
            devices = self.candidates(task, cluster, allowed)
            assignment[task.name] = devices[int(rng.integers(0, len(devices)))].name
        return assignment


class FixedScheduler(Scheduler):
    """Explicit developer-chosen mapping (the traditional model)."""

    def __init__(self, mapping: Assignment):
        self.mapping = dict(mapping)

    def assign(self, job: Job, cluster: Cluster, costmodel: CostModel) -> Assignment:
        job.validate()
        missing = [t for t in job.tasks if t not in self.mapping]
        if missing:
            raise SchedulingError(f"fixed mapping lacks tasks: {missing}")
        for task_name, device_name in self.mapping.items():
            if task_name not in job.tasks:
                continue
            if device_name not in [d.name for d in cluster.compute_devices()]:
                raise SchedulingError(f"unknown/failed device {device_name!r}")
        return {t: self.mapping[t] for t in job.tasks}
