"""Multi-tenant QoS: tenants, priority classes, quotas (§3 Challenge 5).

The paper's RTS must "serve thousands of jobs in parallel" and
"optimize for concurrently running jobs"; a shared disaggregated rack
without per-application policy hands the pool to whichever tenant is
greediest.  This module is the policy vocabulary the admission layer
(:class:`~repro.runtime.admission.RackDriver`) enforces:

* :class:`Tenant` — a named principal with a weighted-fair share
  (start-time fair queueing weight), a :class:`PriorityClass`, and an
  optional :class:`TenantQuota`;
* :class:`TenantQuota` — caps over estimated in-flight pool memory
  bytes, compute-device-time (a debt-limited token bucket earning
  ``compute_share`` device-ns per wall-ns), and concurrent jobs.  A
  tenant with an SLO policy on workload ``tenant:<name>`` may overdraw
  the compute bucket by ``burst_ns`` scaled by its *remaining SLO error
  budget* — a tenant that is meeting its SLO earns burst headroom, one
  that is burning budget loses it;
* :class:`Preempted` — the interrupt cause delivered into a running
  ``BEST_EFFORT`` task when a higher class arrival takes its slot.

Nothing here touches the simulator; the driver owns clock access and
enforcement so this vocabulary stays import-cycle-free.
"""

from __future__ import annotations

import dataclasses
import enum
import typing

#: Tenant jobs with no explicit tenant land here.
DEFAULT_TENANT = "default"


class PriorityClass(enum.IntEnum):
    """Strict service classes; lower value is served first.

    Between classes the scheduler is strictly prioritized (an
    ``INTERACTIVE`` arrival is always picked before queued ``BATCH``
    work); *within* a class, tenants share by weighted-fair queueing.
    Only ``BEST_EFFORT`` jobs may be preempted.
    """

    INTERACTIVE = 0
    BATCH = 1
    BEST_EFFORT = 2


def coerce_priority(
    value: typing.Union["PriorityClass", str, int],
) -> PriorityClass:
    """Normalize a user-facing priority spelling to a PriorityClass.

    Accepts the enum itself, its name in any case (``"interactive"``,
    ``"BEST_EFFORT"``, ``"best-effort"``), or its integer value.
    """
    if isinstance(value, PriorityClass):
        return value
    if isinstance(value, str):
        key = value.strip().upper().replace("-", "_").replace(" ", "_")
        try:
            return PriorityClass[key]
        except KeyError:
            raise ValueError(
                f"unknown priority {value!r}; expected one of "
                f"{[p.name for p in PriorityClass]}"
            ) from None
    if isinstance(value, int):
        try:
            return PriorityClass(value)
        except ValueError:
            raise ValueError(
                f"unknown priority value {value!r}; expected "
                f"{[int(p) for p in PriorityClass]}"
            ) from None
    raise ValueError(f"cannot interpret {value!r} as a priority class")


class Preempted(Exception):
    """A task was interrupted to yield its compute slot to a higher
    class arrival.  Carried as the ``cause`` of a
    :class:`~repro.sim.events.Interrupt`; the RTS re-queues the task
    (it does not count against the failure-recovery attempt budget)."""

    def __init__(self, by: str = ""):
        super().__init__(by)
        #: Name of the admitted job that took the slot.
        self.by = by


@dataclasses.dataclass(frozen=True)
class TenantQuota:
    """Admission-time resource caps for one tenant (None = unlimited)."""

    #: Cap on the tenant's estimated in-flight pool-memory footprint
    #: (sum of :func:`estimate_job_footprint` over its running jobs).
    memory_bytes: typing.Optional[float] = None
    #: Compute-device-time share: the tenant earns this many device-ns
    #: of credit per simulated ns and pays actual task device-occupancy
    #: when jobs finish.  Admission requires a non-negative balance
    #: (plus any SLO-funded burst), so sustained usage converges to the
    #: share while short debts amortize over time.
    compute_share: typing.Optional[float] = None
    #: Cap on concurrently admitted jobs.
    max_running: typing.Optional[int] = None
    #: Maximum SLO-funded overdraft of the compute bucket, in device-ns.
    #: The live overdraft is ``burst_ns * budget_remaining`` of the
    #: tenant's ``tenant:<name>`` SLO workload (zero without a policy
    #: or once the error budget is spent).
    burst_ns: float = 0.0
    #: How much unused compute credit may be banked, in device-ns
    #: (0 = use-it-or-lose-it; the share still amortizes debt).
    bucket_cap_ns: float = 0.0

    def __post_init__(self):
        if self.memory_bytes is not None and self.memory_bytes <= 0:
            raise ValueError(f"memory_bytes must be > 0: {self.memory_bytes}")
        if self.compute_share is not None and self.compute_share <= 0:
            raise ValueError(
                f"compute_share must be > 0: {self.compute_share}"
            )
        if self.max_running is not None and self.max_running < 1:
            raise ValueError(f"max_running must be >= 1: {self.max_running}")
        if self.burst_ns < 0:
            raise ValueError(f"burst_ns must be >= 0: {self.burst_ns}")
        if self.bucket_cap_ns < 0:
            raise ValueError(
                f"bucket_cap_ns must be >= 0: {self.bucket_cap_ns}"
            )


class Tenant:
    """One principal sharing the rack: identity, policy, live state."""

    def __init__(
        self,
        name: str,
        weight: float = 1.0,
        priority: PriorityClass = PriorityClass.BATCH,
        quota: typing.Optional[TenantQuota] = None,
    ):
        if not name:
            raise ValueError("tenant name may not be empty")
        if weight <= 0:
            raise ValueError(f"tenant weight must be > 0: {weight}")
        self.name = name
        self.weight = float(weight)
        self.priority = coerce_priority(priority)
        self.quota = quota if quota is not None else TenantQuota()
        # -- weighted-fair-queueing state (owned by the driver) --------
        #: Finish tag of the tenant's most recently enqueued job; the
        #: next job's start tag is max(virtual time, this).
        self.virtual_finish = 0.0
        # -- compute token bucket --------------------------------------
        self.bucket_ns = 0.0
        self._bucket_stamp = 0.0
        # -- live admission state --------------------------------------
        self.running = 0
        self.in_flight_bytes = 0.0
        # -- accounting ------------------------------------------------
        self.submitted = 0
        self.admitted = 0
        self.completed = 0
        self.failed = 0
        self.shed = 0
        #: Times a job of this tenant was preempted (victim side).
        self.preempted = 0
        #: Admissions this tenant gained by preempting someone.
        self.preemptions_won = 0
        #: Times the tenant's queue head was deferred by a quota.
        self.quota_deferrals = 0
        #: Compute-device-ns consumed by this tenant's finished jobs.
        self.served_ns = 0.0
        self.queue_wait_ns = 0.0

    def refill(self, now: float) -> None:
        """Lazily accrue compute credit up to ``now`` (no-op without a
        compute_share quota)."""
        share = self.quota.compute_share
        if share is None:
            return
        dt = now - self._bucket_stamp
        if dt > 0:
            self.bucket_ns = min(
                self.bucket_ns + dt * share, self.quota.bucket_cap_ns
            )
        self._bucket_stamp = max(self._bucket_stamp, now)

    def spend(self, device_ns: float) -> None:
        """Debit consumed compute-device time against the bucket."""
        if self.quota.compute_share is not None and device_ns > 0:
            self.bucket_ns -= device_ns

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Tenant({self.name!r}, weight={self.weight}, "
            f"priority={self.priority.name}, running={self.running})"
        )


class TenantRegistry:
    """All tenants known to one rack; auto-registers ``default``.

    ``get`` auto-creates unknown tenants with default policy so
    single-tenant callers never have to think about tenancy; ``register``
    is the explicit path and rejects duplicates.
    """

    def __init__(self):
        self._tenants: typing.Dict[str, Tenant] = {}
        self.register(DEFAULT_TENANT)

    def register(
        self,
        name: str,
        *,
        weight: float = 1.0,
        priority: typing.Union[PriorityClass, str, int] = PriorityClass.BATCH,
        quota: typing.Optional[TenantQuota] = None,
    ) -> Tenant:
        """Create and return a tenant; raises on a duplicate name."""
        if name in self._tenants:
            raise ValueError(f"tenant {name!r} is already registered")
        tenant = Tenant(
            name, weight=weight, priority=coerce_priority(priority),
            quota=quota,
        )
        self._tenants[name] = tenant
        return tenant

    def get(self, name: typing.Optional[str]) -> Tenant:
        """The named tenant, auto-registered with defaults if unknown."""
        key = name or DEFAULT_TENANT
        tenant = self._tenants.get(key)
        if tenant is None:
            tenant = self._tenants[key] = Tenant(key)
        return tenant

    def __contains__(self, name: str) -> bool:
        return name in self._tenants

    def __len__(self) -> int:
        return len(self._tenants)

    def __iter__(self) -> typing.Iterator[Tenant]:
        """Tenants in name order (deterministic scheduling scans)."""
        for name in sorted(self._tenants):
            yield self._tenants[name]

    def names(self) -> typing.List[str]:
        """Registered tenant names, sorted."""
        return sorted(self._tenants)


def estimate_job_footprint(job) -> float:
    """Estimated peak pool-memory bytes a job can hold in flight.

    Sums the declared global state, every task's scratch and output,
    and all global-scratch slot sizes — a deliberate over-estimate
    (assumes everything live at once) so memory quotas fail safe.
    Inputs are not counted: they are the upstream's output, already
    charged once.
    """
    total = float(getattr(job, "global_state_size", 0) or 0)
    for task in getattr(job, "tasks", {}).values():
        work = task.work
        if work.scratch is not None:
            total += work.scratch.size
        if work.output is not None:
            total += work.output.size
        for usage in work.scratch_puts.values():
            total += usage.size
    return total


__all__ = [
    "DEFAULT_TENANT",
    "Preempted",
    "PriorityClass",
    "Tenant",
    "TenantQuota",
    "TenantRegistry",
    "coerce_priority",
    "estimate_job_footprint",
]
