"""Dry-run planning: what *would* the runtime do with this job?

Declarative systems owe their users an explanation (the paper's
Challenge 8: the runtime "hides performance-relevant details").  The
planner answers without executing anything: given a job, it reports the
scheduler's assignment, the device every region would land on, and a
critical-path makespan estimate — no allocations, no simulation time,
no side effects.

Estimates come from the same cost model the scheduler uses, so the plan
is exactly the optimizer's view; the simulator remains the ground truth
(contention makes real runs slower).
"""

from __future__ import annotations

import dataclasses
import typing

from repro.dataflow.graph import Job, Task
from repro.memory.regions import RegionType, region_properties
from repro.runtime.costmodel import OWNERSHIP_TRANSFER_NS
from repro.runtime.placement import PlacementRequest
from repro.metrics.report import Table, format_bytes, format_ns

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.rts import RuntimeSystem


@dataclasses.dataclass(frozen=True)
class PlannedRegion:
    role: str
    size: int
    device: str
    properties: str


@dataclasses.dataclass
class TaskPlan:
    name: str
    device: str
    est_start: float
    est_finish: float
    regions: typing.List[PlannedRegion]

    @property
    def est_duration(self) -> float:
        return self.est_finish - self.est_start


@dataclasses.dataclass
class JobPlan:
    job_name: str
    assignment: typing.Dict[str, str]
    tasks: typing.Dict[str, TaskPlan]
    predicted_makespan: float

    def critical_path(self) -> typing.List[str]:
        """The serial spine of the planned schedule, by estimated finish."""
        ordered = sorted(self.tasks.values(), key=lambda t: t.est_finish)
        spine, horizon = [], -1.0
        for plan in ordered:
            if plan.est_start >= horizon - 1e-9:
                spine.append(plan.name)
                horizon = plan.est_finish
        return spine

    def render(self) -> str:
        """The plan as an aligned text table."""
        table = Table(
            ["task", "device", "est start", "est duration", "regions"],
            title=f"Plan for job {self.job_name!r} "
                  f"(predicted makespan {format_ns(self.predicted_makespan)})",
        )
        for plan in sorted(self.tasks.values(), key=lambda t: t.est_start):
            regions = "; ".join(
                f"{r.role}->{r.device} ({format_bytes(r.size)})"
                for r in plan.regions
            )
            table.add_row(plan.name, plan.device, format_ns(plan.est_start),
                          format_ns(plan.est_duration), regions or "-")
        return table.render()


def plan_job(rts: "RuntimeSystem", job: Job) -> JobPlan:
    """Produce the runtime's plan for ``job`` without running it."""
    job.validate()
    assignment = rts.scheduler.assign(job, rts.cluster, rts.costmodel)

    region_plans: typing.Dict[str, typing.List[PlannedRegion]] = {}
    device_for: typing.Dict[typing.Tuple[str, str], str] = {}

    def preview(task: Task, role: str, region_type, size, observers, usage):
        if size <= 0:
            return
        properties = _properties_for(task, region_type)
        request = PlacementRequest(
            size=size, properties=properties, owner="plan",
            observers=tuple(dict.fromkeys(observers)),
            region_type=region_type, usage=usage,
        )
        # choose_device inspects; it never allocates.
        device = rts.placement.choose_device(request)
        region_plans.setdefault(task.name, []).append(PlannedRegion(
            role=role, size=size, device=device.name,
            properties=properties.describe(),
        ))
        device_for[(task.name, role)] = device.name

    for task in job.topological_order():
        compute = assignment[task.name]
        if task.work.scratch is not None:
            preview(task, "scratch", RegionType.PRIVATE_SCRATCH,
                    task.work.scratch.size, [compute], task.work.scratch)
        if task.work.output is not None:
            downstream = [assignment[d.name] for d in task.downstream()]
            preview(task, "output", RegionType.OUTPUT,
                    task.work.output.size, [compute] + downstream,
                    task.work.output)

    # Critical-path estimate over the DAG with the planned devices.
    finish: typing.Dict[str, float] = {}
    plans: typing.Dict[str, TaskPlan] = {}
    for task in job.topological_order():
        compute = assignment[task.name]
        start = 0.0
        for upstream in task.upstream():
            comm = OWNERSHIP_TRANSFER_NS if upstream.work.output else 0.0
            start = max(start, finish[upstream.name] + comm)

        def memory_for(role: str, task=task, compute=compute):
            key = (task.name, "scratch" if role in ("scratch", "state") else role)
            name = device_for.get(key)
            if name is None:
                return rts.costmodel.best_scratch_device(compute)
            return rts.cluster.memory[name]

        input_bytes = sum(u.work.output_size for u in task.upstream())
        duration = rts.costmodel.task_time_estimate(
            task, compute, memory_for, input_bytes=input_bytes
        )
        finish[task.name] = start + duration
        plans[task.name] = TaskPlan(
            name=task.name, device=compute,
            est_start=start, est_finish=start + duration,
            regions=region_plans.get(task.name, []),
        )

    return JobPlan(
        job_name=job.name,
        assignment=assignment,
        tasks=plans,
        predicted_makespan=max(finish.values()) if finish else 0.0,
    )


def _properties_for(task: Task, region_type):
    import dataclasses as dc

    if region_type is RegionType.PRIVATE_SCRATCH:
        base = region_properties(RegionType.PRIVATE_SCRATCH)
        card = task.properties
        return dc.replace(
            base,
            latency=card.mem_latency if card.mem_latency is not None
            else base.latency,
            confidential=card.confidential,
        )
    properties = task.properties.output_properties()
    if not task.properties.persistent:
        properties = properties.merged_with(region_properties(RegionType.OUTPUT))
    return properties
