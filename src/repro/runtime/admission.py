"""Multi-tenant rack driving: arrivals, admission, utilization.

The paper's RTS must serve "thousands of jobs in parallel" (§2.1) and
"optimize for concurrently running jobs" (§3).  :class:`RackDriver`
turns the runtime into that shared service: jobs arrive on a trace
(see :mod:`repro.workloads.arrivals`), an admission gate bounds
concurrency and keeps memory headroom, queued jobs start in arrival
order, and the driver samples cluster utilization while running — the
quantities the Figure 1 economics argument is about.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.runtime.rts import JobStats, RuntimeSystem
from repro.sim.trace import MetricRecorder


@dataclasses.dataclass
class AdmittedJob:
    name: str
    arrived_at: float
    admitted_at: float = 0.0
    stats: typing.Optional[JobStats] = None
    shed: bool = False  # rejected by the surviving-capacity watermark

    @property
    def queue_wait(self) -> float:
        return self.admitted_at - self.arrived_at

    @property
    def completed(self) -> bool:
        return self.stats is not None and self.stats.ok


@dataclasses.dataclass
class RackStats:
    jobs: typing.List[AdmittedJob] = dataclasses.field(default_factory=list)
    memory_utilization: typing.Optional[MetricRecorder] = None
    peak_concurrency: int = 0

    @property
    def completed(self) -> int:
        return sum(1 for j in self.jobs if j.completed)

    @property
    def shed(self) -> int:
        return sum(1 for j in self.jobs if j.shed)

    @property
    def mean_queue_wait(self) -> float:
        done = [j for j in self.jobs if j.stats is not None]
        if not done:
            return 0.0
        return sum(j.queue_wait for j in done) / len(done)

    @property
    def mean_makespan(self) -> float:
        done = [j for j in self.jobs if j.stats is not None]
        if not done:
            return 0.0
        return sum(j.stats.makespan for j in done) / len(done)

    def mean_memory_utilization(self, until: float) -> float:
        """Time-weighted mean pool utilization over the sampled window."""
        if self.memory_utilization is None:
            return 0.0
        return self.memory_utilization.time_weighted_mean(until)


class RackDriver:
    """Runs a job-arrival trace through one runtime with admission."""

    def __init__(
        self,
        rts: RuntimeSystem,
        max_concurrent: int = 8,
        memory_headroom: float = 0.05,
        sample_interval_ns: float = 100_000.0,
        shed_below_capacity_fraction: float = 0.0,
    ):
        if max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")
        if not 0.0 <= memory_headroom < 1.0:
            raise ValueError("memory_headroom must be in [0, 1)")
        if not 0.0 <= shed_below_capacity_fraction <= 1.0:
            raise ValueError("shed_below_capacity_fraction must be in [0, 1]")
        self.rts = rts
        self.max_concurrent = max_concurrent
        self.memory_headroom = memory_headroom
        self.sample_interval_ns = sample_interval_ns
        #: Reject (shed) queued jobs while the *surviving* memory
        #: capacity — devices that are up and usable per the health
        #: monitor — is below this fraction of the rack's total.  0
        #: disables shedding (the pre-recovery behaviour).
        self.shed_below_capacity_fraction = shed_below_capacity_fraction
        self._running = 0
        self._queue: typing.List[typing.Tuple[AdmittedJob, typing.Callable]] = []
        self.stats = RackStats(memory_utilization=MetricRecorder())
        self._sampling = True
        obs = rts.cluster.obs
        self._obs = obs
        self._running_tl = obs.timeline("rack.running")
        self._queued_tl = obs.timeline("rack.queued")

    # -- admission gate ------------------------------------------------------

    def _gate_open(self) -> bool:
        if self._running >= self.max_concurrent:
            return False
        capacity = sum(d.capacity for d in self.rts.cluster.memory.values())
        used = sum(d.used for d in self.rts.cluster.memory.values())
        return used <= capacity * (1.0 - self.memory_headroom)

    def _surviving_capacity_fraction(self) -> float:
        """Fraction of total memory capacity on usable devices."""
        cluster = self.rts.cluster
        monitor = getattr(cluster, "health_monitor", None)
        total = 0.0
        alive = 0.0
        for device in cluster.memory.values():
            total += device.capacity
            if device.failed:
                continue
            if monitor is not None and not monitor.can_use(device.name):
                continue
            alive += device.capacity
        return alive / total if total else 1.0

    def _shed_queue(self) -> None:
        """Reject every queued job (the rack cannot serve them safely)."""
        engine = self.rts.cluster.engine
        while self._queue:
            admitted, _factory = self._queue.pop(0)
            admitted.shed = True
            self._queued_tl.adjust(engine.now, -1)
            self._obs.counter("rack.shed").inc()
            self._obs.event("admission", "shed", job=admitted.name)

    def _pump(self) -> None:
        """Admit queued jobs while the gate is open (arrival order)."""
        engine = self.rts.cluster.engine
        if (
            self.shed_below_capacity_fraction > 0.0
            and self._queue
            and self._surviving_capacity_fraction()
            < self.shed_below_capacity_fraction
        ):
            self._shed_queue()
            return
        while self._queue and self._gate_open():
            admitted, factory = self._queue.pop(0)
            admitted.admitted_at = engine.now
            self._running += 1
            self.stats.peak_concurrency = max(
                self.stats.peak_concurrency, self._running
            )
            self._queued_tl.adjust(engine.now, -1)
            self._running_tl.adjust(engine.now, +1)
            self._obs.counter("rack.admitted").inc()
            self._obs.event("admission", "admit",
                            job=admitted.name, wait=admitted.queue_wait)
            execution = self.rts.submit(factory())
            graph = getattr(execution, "causal", None)
            if graph is not None:
                # The admission wait happened *before* submit, so it
                # lies outside the makespan; record it as a detached
                # annotation node plus a job-level field.
                graph.admission_wait_ns = admitted.queue_wait
                graph.add_node(
                    "admission_wait", "admission_backoff",
                    admitted.arrived_at, admitted.admitted_at,
                    detached=True, job=admitted.name,
                )
            execution.done.add_callback(
                lambda event, job=admitted: self._on_done(job, event)
            )

    def _on_done(self, admitted: AdmittedJob, event) -> None:
        self._running -= 1
        engine = self.rts.cluster.engine
        self._running_tl.adjust(engine.now, -1)
        self._obs.event("admission", "done",
                        job=admitted.name, ok=bool(event._ok))
        # End-to-end latency (arrival -> finish) includes the admission
        # queue; tracked per workload next to the RTS's makespan SLO.
        self._obs.slo.record(
            f"{admitted.name}@e2e", engine.now - admitted.arrived_at,
            ok=bool(event._ok),
        )
        if event._ok:
            admitted.stats = event._value
        else:
            event.defuse()
        self._pump()

    # -- trace execution ---------------------------------------------------

    def run_trace(
        self,
        arrivals: typing.Sequence[typing.Tuple[float, str, typing.Callable]],
    ) -> RackStats:
        """Run ``(time, name, job_factory)`` arrivals to completion.

        Returns the rack statistics; the simulation clock ends when the
        last admitted job finishes.
        """
        engine = self.rts.cluster.engine
        ordered = sorted(arrivals, key=lambda a: a[0])

        def arrival_process():
            for time, name, factory in ordered:
                if time > engine.now:
                    yield engine.timeout(time - engine.now)
                admitted = AdmittedJob(name=name, arrived_at=engine.now)
                self.stats.jobs.append(admitted)
                self._queue.append((admitted, factory))
                self._queued_tl.adjust(engine.now, +1)
                self._pump()

        def sampler():
            capacity = sum(d.capacity for d in self.rts.cluster.memory.values())
            while self._sampling:
                used = sum(d.used for d in self.rts.cluster.memory.values())
                self.stats.memory_utilization.record(
                    engine.now, used / capacity if capacity else 0.0
                )
                yield engine.timeout(self.sample_interval_ns)

        engine.process(arrival_process(), name="rack-arrivals")
        sampler_proc = engine.process(sampler(), name="rack-sampler")
        # Run until only the sampler keeps the queue alive.
        while True:
            engine.run(until=engine.now + self.sample_interval_ns)
            drained = (
                not self._queue
                and self._running == 0
                and len(self.stats.jobs) == len(ordered)
            )
            if drained:
                break
        self._sampling = False
        sampler_proc.kill()
        engine.run()
        return self.stats
