"""Multi-tenant rack driving: arrivals, weighted-fair admission, QoS.

The paper's RTS must serve "thousands of jobs in parallel" (§2.1) and
"optimize for concurrently running jobs" (§3 Challenge 5).
:class:`RackDriver` turns the runtime into that shared service — and,
since PR 5, a *fair* one: arrivals are queued per tenant and admitted
by start-time fair queueing (strict priority between
:class:`~repro.runtime.tenancy.PriorityClass` levels, weighted-fair
within a level), per-tenant quotas over pool memory and
compute-device-time gate admission (with SLO-error-budget-funded burst
credits), and a gate-blocked higher-class arrival may preempt a
running ``BEST_EFFORT`` job through the RTS's re-queue machinery.

``policy="fifo"`` keeps the original single-queue arrival-order gate
(the baseline the tenancy claim test measures against).
"""

from __future__ import annotations

import dataclasses
import itertools
import typing

from repro.runtime.rts import JobStats, RuntimeSystem
from repro.runtime.tenancy import (
    DEFAULT_TENANT,
    PriorityClass,
    Tenant,
    TenantRegistry,
    coerce_priority,
    estimate_job_footprint,
)
from repro.sim.trace import MetricRecorder
from repro import _compat

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dataflow.graph import Job


@dataclasses.dataclass
class AdmittedJob:
    name: str
    arrived_at: float
    admitted_at: float = 0.0
    stats: typing.Optional[JobStats] = None
    shed: bool = False  # rejected by a watermark or an impossible quota
    tenant: str = DEFAULT_TENANT
    priority: PriorityClass = PriorityClass.BATCH
    #: Position in the admission order (None while queued/shed).
    admission_index: typing.Optional[int] = None
    finished_at: typing.Optional[float] = None
    #: Times this job was preempted after admission (victim side).
    preemptions: int = 0
    #: The running _JobExecution once admitted (stats survive failure).
    execution: typing.Any = dataclasses.field(
        default=None, repr=False, compare=False
    )

    @property
    def queue_wait(self) -> float:
        return self.admitted_at - self.arrived_at

    @property
    def completed(self) -> bool:
        return self.stats is not None and self.stats.ok

    @property
    def e2e_latency(self) -> typing.Optional[float]:
        """Arrival -> finish latency; None while queued or after shed."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.arrived_at


@dataclasses.dataclass
class RackStats:
    jobs: typing.List[AdmittedJob] = dataclasses.field(default_factory=list)
    memory_utilization: typing.Optional[MetricRecorder] = None
    peak_concurrency: int = 0
    preemptions: int = 0

    @property
    def completed(self) -> int:
        return sum(1 for j in self.jobs if j.completed)

    @property
    def shed(self) -> int:
        return sum(1 for j in self.jobs if j.shed)

    @property
    def mean_queue_wait(self) -> float:
        done = [j for j in self.jobs if j.stats is not None]
        if not done:
            return 0.0
        return sum(j.queue_wait for j in done) / len(done)

    @property
    def mean_makespan(self) -> float:
        done = [j for j in self.jobs if j.stats is not None]
        if not done:
            return 0.0
        return sum(j.stats.makespan for j in done) / len(done)

    def mean_memory_utilization(self, until: float) -> float:
        """Time-weighted mean pool utilization over the sampled window."""
        if self.memory_utilization is None:
            return 0.0
        return self.memory_utilization.time_weighted_mean(until)

    def by_tenant(self, tenant: str) -> typing.List[AdmittedJob]:
        """This tenant's jobs, in arrival order."""
        return [j for j in self.jobs if j.tenant == tenant]


@dataclasses.dataclass
class _QueueEntry:
    """One queued arrival with its fair-queueing tags."""

    admitted: AdmittedJob
    #: A Job, or a zero-argument factory built at admission time.
    source: typing.Any
    start_tag: float
    finish_tag: float
    seq: int
    job: typing.Optional["Job"] = None
    footprint: typing.Optional[float] = None

    def materialize(self) -> "Job":
        if self.job is None:
            source = self.source
            self.job = source if hasattr(source, "tasks") else source()
        return self.job


class RackDriver:
    """Runs a job-arrival stream through one runtime with QoS admission."""

    def __init__(
        self,
        rts: RuntimeSystem,
        max_concurrent: int = 8,
        memory_headroom: float = 0.05,
        sample_interval_ns: float = 100_000.0,
        shed_below_capacity_fraction: float = 0.0,
        tenants: typing.Optional[TenantRegistry] = None,
        policy: str = "wfq",
        enable_preemption: bool = True,
        max_preemptions_per_job: int = 2,
        preempt_overcommit: int = 1,
        quota_retry_ns: float = 50_000.0,
    ):
        if max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")
        if not 0.0 <= memory_headroom < 1.0:
            raise ValueError("memory_headroom must be in [0, 1)")
        if not 0.0 <= shed_below_capacity_fraction <= 1.0:
            raise ValueError("shed_below_capacity_fraction must be in [0, 1]")
        if policy not in ("wfq", "fifo"):
            raise ValueError(f"unknown admission policy {policy!r}")
        if max_preemptions_per_job < 0:
            raise ValueError("max_preemptions_per_job must be >= 0")
        if preempt_overcommit < 0:
            raise ValueError("preempt_overcommit must be >= 0")
        if quota_retry_ns <= 0:
            raise ValueError("quota_retry_ns must be > 0")
        self.rts = rts
        self.max_concurrent = max_concurrent
        self.memory_headroom = memory_headroom
        self.sample_interval_ns = sample_interval_ns
        #: Reject (shed) queued jobs while the *surviving* memory
        #: capacity — devices that are up and usable per the health
        #: monitor — is below this fraction of the rack's total.  0
        #: disables shedding (the pre-recovery behaviour).
        self.shed_below_capacity_fraction = shed_below_capacity_fraction
        self.tenants = tenants if tenants is not None else TenantRegistry()
        #: "wfq" (priority classes + start-time fair queueing + quotas
        #: + preemption) or "fifo" (the single-gate arrival-order
        #: baseline; quotas still apply, preemption never fires).
        self.policy = policy
        self.enable_preemption = enable_preemption
        #: A job preempted this many times is never chosen as a victim
        #: again (livelock bound — it eventually finishes).
        self.max_preemptions_per_job = max_preemptions_per_job
        #: How many preempt-admissions may run *above* max_concurrent
        #: at once (the victim's slots free only after its tasks
        #: unwind, so the preemptor briefly overcommits the gate).
        self.preempt_overcommit = preempt_overcommit
        #: Re-pump period while the queue is blocked purely by a
        #: time-refilling compute quota (nothing running to wake us).
        self.quota_retry_ns = quota_retry_ns
        self._running = 0
        #: tenant name -> FIFO of queued entries (WFQ picks between
        #: queue heads; in "fifo" mode the global min seq wins, which
        #: is exactly arrival order).
        self._queues: typing.Dict[str, typing.List[_QueueEntry]] = {}
        self._seq = itertools.count()
        self._admission_seq = itertools.count()
        #: System virtual time (start tag of the last dispatched job).
        self._vtime = 0.0
        #: Admitted-and-running jobs, in admission order (victim scan).
        self._active: typing.List[AdmittedJob] = []
        self._retry_scheduled = False
        self.stats = RackStats(memory_utilization=MetricRecorder())
        self._sampling = True
        obs = rts.cluster.obs
        self._obs = obs
        self._running_tl = obs.timeline("rack.running")
        self._queued_tl = obs.timeline("rack.queued")
        obs.registry.add_collector(self._collect_tenant_metrics)
        # Continuous telemetry: per-window running/queued levels fold
        # from the timelines the admission paths already record.
        obs.telemetry.watch_timeline(self._running_tl)
        obs.telemetry.watch_timeline(self._queued_tl)

    # -- admission gate ------------------------------------------------------

    def _gate_open(self) -> bool:
        if self._running >= self.max_concurrent:
            return False
        capacity = sum(d.capacity for d in self.rts.cluster.memory.values())
        used = sum(d.used for d in self.rts.cluster.memory.values())
        return used <= capacity * (1.0 - self.memory_headroom)

    def _surviving_capacity_fraction(self) -> float:
        """Fraction of total memory capacity on usable devices."""
        cluster = self.rts.cluster
        monitor = getattr(cluster, "health_monitor", None)
        total = 0.0
        alive = 0.0
        for device in cluster.memory.values():
            total += device.capacity
            if device.failed:
                continue
            if monitor is not None and not monitor.can_use(device.name):
                continue
            alive += device.capacity
        return alive / total if total else 1.0

    def _queued_count(self) -> int:
        return sum(len(q) for q in self._queues.values())

    @property
    def queued_count(self) -> int:
        """Jobs waiting in the admission queues right now."""
        return self._queued_count()

    @property
    def running_count(self) -> int:
        """Jobs admitted and not yet finished."""
        return self._running

    def _reject(self, entry: _QueueEntry, reason: str) -> None:
        """Shed one queued entry (watermark or impossible quota)."""
        engine = self.rts.cluster.engine
        entry.admitted.shed = True
        tenant = self.tenants.get(entry.admitted.tenant)
        tenant.shed += 1
        self._queued_tl.adjust(engine.now, -1)
        self._obs.counter("rack.shed").inc()
        self._obs.counter(f"tenant.shed/{tenant.name}").inc()
        self._obs.event("admission", "shed", job=entry.admitted.name,
                        tenant=tenant.name, reason=reason)

    def _shed_queue(self) -> None:
        """Reject every queued job (the rack cannot serve them safely)."""
        for name in sorted(self._queues):
            queue = self._queues[name]
            while queue:
                self._reject(queue.pop(0), reason="capacity_watermark")

    # -- tenancy: quotas and fair queueing -----------------------------------

    def _burst_credit_ns(self, tenant: Tenant) -> float:
        """SLO-funded compute overdraft: ``burst_ns`` scaled by the
        remaining error budget of the ``tenant:<name>`` workload."""
        if tenant.quota.burst_ns <= 0:
            return 0.0
        workload = f"tenant:{tenant.name}"
        slo = self._obs.slo
        if workload not in slo:
            return 0.0
        remaining = slo[workload].budget_remaining
        if remaining is None or remaining <= 0:
            return 0.0
        return tenant.quota.burst_ns * min(remaining, 1.0)

    def _eligible(self, tenant: Tenant, entry: _QueueEntry) -> bool:
        """May this tenant's queue head be admitted right now?"""
        quota = tenant.quota
        now = self.rts.cluster.engine.now
        if quota.max_running is not None and tenant.running >= quota.max_running:
            tenant.quota_deferrals += 1
            return False
        if quota.memory_bytes is not None:
            if entry.footprint is None:
                entry.footprint = estimate_job_footprint(entry.materialize())
            if tenant.in_flight_bytes + entry.footprint > quota.memory_bytes:
                tenant.quota_deferrals += 1
                return False
        if quota.compute_share is not None:
            tenant.refill(now)
            if tenant.bucket_ns < -self._burst_credit_ns(tenant):
                tenant.quota_deferrals += 1
                return False
        return True

    def _prune_impossible(self) -> None:
        """Shed queue heads that can *never* satisfy their memory quota
        (footprint alone exceeds the cap) so they don't wedge the
        tenant's queue forever."""
        for name in sorted(self._queues):
            queue = self._queues[name]
            tenant = self.tenants.get(name)
            cap = tenant.quota.memory_bytes
            if cap is None:
                continue
            while queue:
                entry = queue[0]
                if entry.footprint is None:
                    entry.footprint = estimate_job_footprint(
                        entry.materialize()
                    )
                if entry.footprint > cap:
                    self._reject(queue.pop(0), reason="memory_quota")
                else:
                    break

    def _next_entry(
        self,
    ) -> typing.Optional[typing.Tuple[Tenant, _QueueEntry]]:
        """The eligible queue head the policy would admit next.

        WFQ: strict priority class first, then lowest start tag
        (weighted-fair within the class), then arrival order.  FIFO:
        lowest arrival sequence over all tenants — global arrival
        order.
        """
        best = None
        best_key = None
        for name in sorted(self._queues):
            queue = self._queues[name]
            if not queue:
                continue
            tenant = self.tenants.get(name)
            entry = queue[0]
            if not self._eligible(tenant, entry):
                continue
            if self.policy == "fifo":
                key = (entry.seq,)
            else:
                key = (
                    int(entry.admitted.priority), entry.start_tag, entry.seq,
                )
            if best_key is None or key < best_key:
                best, best_key = (tenant, entry), key
        return best

    # -- preemption ----------------------------------------------------------

    def _try_preempt_for(self, entry: _QueueEntry) -> bool:
        """Free a slot for a gate-blocked higher-class arrival by
        preempting the most recently admitted BEST_EFFORT job (bounded
        per victim and by the overcommit window).  True on success."""
        if self.policy != "wfq" or not self.enable_preemption:
            return False
        if entry.admitted.priority >= PriorityClass.BEST_EFFORT:
            return False
        if self._running - self.max_concurrent >= self.preempt_overcommit:
            return False
        for victim in reversed(self._active):
            if victim.priority != PriorityClass.BEST_EFFORT:
                continue
            if victim.preemptions >= self.max_preemptions_per_job:
                continue
            if victim.execution is None:
                continue
            interrupted = victim.execution.preempt(by=entry.admitted.name)
            if interrupted == 0:
                continue  # nothing of it holds a slot; next victim
            victim.preemptions += 1
            self.stats.preemptions += 1
            victim_tenant = self.tenants.get(victim.tenant)
            victim_tenant.preempted += 1
            self.tenants.get(entry.admitted.tenant).preemptions_won += 1
            self._obs.counter("rack.preemptions").inc()
            self._obs.counter(f"tenant.preempted/{victim_tenant.name}").inc()
            self._obs.counter(
                f"tenant.preemptions_won/{entry.admitted.tenant}"
            ).inc()
            self._obs.event(
                "admission", "preempt", victim=victim.name,
                victim_tenant=victim.tenant, by=entry.admitted.name,
                tenant=entry.admitted.tenant, tasks=interrupted,
            )
            return True
        return False

    # -- the pump ------------------------------------------------------------

    def _pump(self) -> None:
        """Admit queued jobs while the policy and the gate allow it."""
        if (
            self.shed_below_capacity_fraction > 0.0
            and self._queued_count()
            and self._surviving_capacity_fraction()
            < self.shed_below_capacity_fraction
        ):
            self._shed_queue()
            return
        self._prune_impossible()
        while True:
            pick = self._next_entry()
            if pick is None:
                break
            tenant, entry = pick
            if self._gate_open():
                self._admit(tenant, entry)
                continue
            if self._try_preempt_for(entry):
                # The victim's slots free only once its tasks unwind;
                # admit now and ride the overcommit window.
                self._admit(tenant, entry, via_preemption=True)
                continue
            break
        self._maybe_schedule_quota_retry()

    def _admit(
        self, tenant: Tenant, entry: _QueueEntry, via_preemption: bool = False
    ) -> None:
        engine = self.rts.cluster.engine
        queue = self._queues[tenant.name]
        assert queue and queue[0] is entry
        queue.pop(0)
        admitted = entry.admitted
        admitted.admitted_at = engine.now
        admitted.admission_index = next(self._admission_seq)
        if self.policy == "wfq":
            self._vtime = max(self._vtime, entry.start_tag)
        self._running += 1
        self.stats.peak_concurrency = max(
            self.stats.peak_concurrency, self._running
        )
        tenant.running += 1
        tenant.admitted += 1
        tenant.queue_wait_ns += admitted.queue_wait
        if entry.footprint is not None:
            tenant.in_flight_bytes += entry.footprint
        self._queued_tl.adjust(engine.now, -1)
        self._running_tl.adjust(engine.now, +1)
        self._obs.counter("rack.admitted").inc()
        self._obs.counter(f"tenant.admitted/{tenant.name}").inc()
        self._obs.event("admission", "admit",
                        job=admitted.name, tenant=tenant.name,
                        priority=admitted.priority.name.lower(),
                        wait=admitted.queue_wait, preempted=via_preemption)
        execution = self.rts._submit(
            entry.materialize(), tenant=tenant.name,
            priority=admitted.priority,
        )
        admitted.execution = execution
        self._active.append(admitted)
        graph = getattr(execution, "causal", None)
        if graph is not None:
            # The admission wait happened *before* submit, so it
            # lies outside the makespan; record it as a detached
            # annotation node plus a job-level field.
            graph.admission_wait_ns = admitted.queue_wait
            graph.add_node(
                "admission_wait", "admission_backoff",
                admitted.arrived_at, admitted.admitted_at,
                detached=True, job=admitted.name, tenant=tenant.name,
            )
        execution.done.add_callback(
            lambda event, job=admitted, e=entry: self._on_done(job, e, event)
        )

    def _on_done(
        self, admitted: AdmittedJob, entry: _QueueEntry, event
    ) -> None:
        self._running -= 1
        engine = self.rts.cluster.engine
        admitted.finished_at = engine.now
        if admitted in self._active:
            self._active.remove(admitted)
        tenant = self.tenants.get(admitted.tenant)
        tenant.running -= 1
        if entry.footprint is not None:
            tenant.in_flight_bytes = max(
                0.0, tenant.in_flight_bytes - entry.footprint
            )
        # Charge actual compute-device occupancy against the tenant's
        # bucket and fairness accounting (failures still consumed it).
        execution = admitted.execution
        compute_ns = 0.0
        if execution is not None:
            compute_ns = sum(
                ts.duration for ts in execution.stats.tasks.values()
            )
        tenant.refill(engine.now)
        tenant.spend(compute_ns)
        tenant.served_ns += compute_ns
        self._running_tl.adjust(engine.now, -1)
        self._obs.event("admission", "done",
                        job=admitted.name, tenant=tenant.name,
                        ok=bool(event._ok))
        # End-to-end latency (arrival -> finish) includes the admission
        # queue; tracked per workload next to the RTS's makespan SLO,
        # and per tenant (the QoS claim the tenancy layer is about).
        e2e = engine.now - admitted.arrived_at
        self._obs.slo.record(f"{admitted.name}@e2e", e2e, ok=bool(event._ok))
        self._obs.slo.record(f"tenant:{tenant.name}", e2e, ok=bool(event._ok))
        if event._ok:
            admitted.stats = event._value
            tenant.completed += 1
        else:
            event.defuse()
            tenant.failed += 1
        self._pump()

    def _maybe_schedule_quota_retry(self) -> None:
        """Re-pump on a timer while admission is blocked *only* by a
        time-refilling compute bucket (no completion will wake us)."""
        if self._retry_scheduled or not self._queued_count():
            return
        if not self._gate_open():
            return  # a completion (or preemption unwind) re-pumps
        if not any(
            self.tenants.get(name).quota.compute_share is not None
            for name, queue in self._queues.items() if queue
        ):
            return
        engine = self.rts.cluster.engine

        def retry():
            yield engine.timeout(self.quota_retry_ns)
            self._retry_scheduled = False
            self._pump()

        self._retry_scheduled = True
        engine.process(retry(), name="rack-quota-retry")

    # -- submission ----------------------------------------------------------

    def submit_job(
        self,
        name: str,
        source,
        *,
        tenant: typing.Optional[str] = None,
        priority=None,
        cost: float = 1.0,
    ) -> AdmittedJob:
        """Queue one job (a Job or a zero-arg factory) at the current
        simulation time; returns its admission handle.

        ``cost`` is the job's weight-normalized fair-queueing charge
        (1.0 = one "ticket"; bigger jobs may be charged more so the
        byte/second shares stay proportional).
        """
        if cost <= 0:
            raise ValueError(f"cost must be > 0: {cost}")
        engine = self.rts.cluster.engine
        job_obj = source if hasattr(source, "tasks") else None
        tenant_name = tenant or (
            getattr(job_obj, "tenant", None) if job_obj is not None else None
        )
        state = self.tenants.get(tenant_name)
        if priority is None and job_obj is not None:
            priority = getattr(job_obj, "priority", None)
        prio = coerce_priority(priority) if priority is not None else state.priority
        admitted = AdmittedJob(
            name=name, arrived_at=engine.now, tenant=state.name, priority=prio,
        )
        self.stats.jobs.append(admitted)
        state.submitted += 1
        start = max(self._vtime, state.virtual_finish)
        finish = start + cost / state.weight
        state.virtual_finish = finish
        entry = _QueueEntry(
            admitted=admitted, source=source,
            start_tag=start, finish_tag=finish, seq=next(self._seq),
            job=job_obj,
        )
        self._queues.setdefault(state.name, []).append(entry)
        self._queued_tl.adjust(engine.now, +1)
        self._obs.counter(f"tenant.submitted/{state.name}").inc()
        self._pump()
        return admitted

    # -- trace execution ---------------------------------------------------

    def run_trace(self, arrivals) -> RackStats:
        """Deprecated: use ``repro.api.Session.run_trace`` instead."""
        _compat.warn_once(
            "RackDriver.run_trace",
            "repro.RackDriver.run_trace() is deprecated; use "
            "repro.api.connect(...).run_trace(arrivals) (the Session "
            "facade)",
        )
        return self._run_trace(arrivals)

    def _run_trace(
        self,
        arrivals: typing.Sequence[tuple],
    ) -> RackStats:
        """Run ``(time, name, job_factory[, tenant[, priority]])``
        arrivals to completion.

        Returns the rack statistics; the simulation clock ends when the
        last admitted job finishes.
        """
        engine = self.rts.cluster.engine
        ordered = sorted(arrivals, key=lambda a: a[0])

        def arrival_process():
            for arrival in ordered:
                time, name, factory = arrival[0], arrival[1], arrival[2]
                tenant = arrival[3] if len(arrival) > 3 else None
                priority = arrival[4] if len(arrival) > 4 else None
                if time > engine.now:
                    yield engine.timeout(time - engine.now)
                self.submit_job(
                    name, factory, tenant=tenant, priority=priority
                )

        def sampler():
            capacity = sum(d.capacity for d in self.rts.cluster.memory.values())
            telem = self._obs.telemetry
            while self._sampling:
                used = sum(d.used for d in self.rts.cluster.memory.values())
                util = used / capacity if capacity else 0.0
                self.stats.memory_utilization.record(engine.now, util)
                telem.record_level("rack.memory_util", engine.now, util)
                # The sampler is the rack's telemetry cadence: fold
                # every watcher and sweep the burn-rate rules.
                telem.poll(engine.now)
                yield engine.timeout(self.sample_interval_ns)

        engine.process(arrival_process(), name="rack-arrivals")
        sampler_proc = engine.process(sampler(), name="rack-sampler")
        # Run until only the sampler keeps the queue alive.
        while True:
            engine.run(until=engine.now + self.sample_interval_ns)
            drained = (
                not self._queued_count()
                and self._running == 0
                and len(self.stats.jobs) == len(ordered)
            )
            if drained:
                break
        self._sampling = False
        sampler_proc.kill()
        engine.run()
        # End-of-trace: one final fold so the last partial window and
        # any still-open alert spans land in the export.
        self._obs.telemetry.finalize(engine.now)
        return self.stats

    # -- per-tenant observability --------------------------------------------

    def _collect_tenant_metrics(self):
        """Per-tenant share/quota gauges for the obs registry snapshot."""
        total_served = sum(t.served_ns for t in self.tenants) or 0.0
        for tenant in self.tenants:
            name = tenant.name
            yield f"tenant.weight/{name}", tenant.weight
            yield f"tenant.running/{name}", float(tenant.running)
            yield f"tenant.served_ns/{name}", tenant.served_ns
            if total_served > 0:
                yield (
                    f"tenant.share/{name}", tenant.served_ns / total_served
                )
            if tenant.quota.compute_share is not None:
                yield f"tenant.bucket_ns/{name}", tenant.bucket_ns
            if tenant.quota.memory_bytes is not None:
                yield (
                    f"tenant.in_flight_bytes/{name}", tenant.in_flight_bytes
                )

    def tenant_report(self) -> typing.Dict[str, dict]:
        """Per-tenant accounting summary (claim tests and dashboards)."""
        total_served = sum(t.served_ns for t in self.tenants)
        report = {}
        for tenant in self.tenants:
            report[tenant.name] = {
                "weight": tenant.weight,
                "priority": tenant.priority.name.lower(),
                "submitted": tenant.submitted,
                "admitted": tenant.admitted,
                "completed": tenant.completed,
                "failed": tenant.failed,
                "shed": tenant.shed,
                "preempted": tenant.preempted,
                "preemptions_won": tenant.preemptions_won,
                "quota_deferrals": tenant.quota_deferrals,
                "served_ns": tenant.served_ns,
                "share": (
                    tenant.served_ns / total_served if total_served else 0.0
                ),
                "mean_queue_wait": (
                    tenant.queue_wait_ns / tenant.admitted
                    if tenant.admitted else 0.0
                ),
            }
        return report
