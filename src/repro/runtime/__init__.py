"""The runtime system (RTS) — the paper's core contribution (§2.3).

The RTS is responsible for

1. determining at runtime which physical memory device best fits each
   task's declared requirements (:mod:`repro.runtime.placement`, driven
   by :mod:`repro.runtime.costmodel`),
2. allocating the Memory Regions tasks request,
3. de-allocating regions after the last owning task finishes
   (ownership bookkeeping in :mod:`repro.memory`), and
4. resource-aware task scheduling (:mod:`repro.runtime.scheduler`).

Data moves between tasks by **ownership transfer** whenever the
downstream compute device can address the region, and by physical copy
only when it cannot (:mod:`repro.runtime.transfer` — Figure 4).
:class:`~repro.runtime.rts.RuntimeSystem` is the public facade.

Failures in flight are the RTS's problem too (§3, Challenge 8(3)):
:mod:`repro.runtime.health` tracks per-device health from the fault
injector, feeds it to placement and scheduling, and drives graceful
drains; :class:`~repro.runtime.rts.RuntimeSystem` retries individual
tasks (with re-placement and degraded reads from
:class:`~repro.ft.backups.OutputBackupStore`) before
:class:`~repro.runtime.resilience.ResilientRuntime` escalates to a
checkpoint-pruned job re-execution.
"""

from repro.runtime.costmodel import CostModel
from repro.runtime.placement import (
    DeclarativePlacement,
    EncryptingPlacement,
    NaivePlacement,
    PlacementPolicy,
    PlacementRequest,
    StaticKindPlacement,
)
from repro.runtime.scheduler import (
    HeftScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    Scheduler,
    SchedulingError,
)
from repro.runtime.health import (
    DegradationPolicy,
    DeviceDown,
    HealthMonitor,
    HealthState,
    HealthStats,
    LatencyScorecard,
    RecoveryPolicy,
    RetryBudget,
)
from repro.runtime.transfer import HandoverManager, HandoverStats, HedgePolicy
from repro.runtime.rts import JobStats, RuntimeSystem, TaskContext
from repro.runtime.resilience import (
    JobAbandoned,
    ResilienceStats,
    ResilientRuntime,
    prune_with_checkpoints,
)
from repro.runtime.tenancy import (
    Preempted,
    PriorityClass,
    Tenant,
    TenantQuota,
    TenantRegistry,
    estimate_job_footprint,
)
from repro.runtime.admission import AdmittedJob, RackDriver, RackStats
from repro.runtime.calibration import CalibratedCostModel, ObservationStats
from repro.runtime.planner import JobPlan, PlannedRegion, TaskPlan, plan_job
from repro.runtime import baselines

__all__ = [
    "AdmittedJob",
    "CalibratedCostModel",
    "CostModel",
    "DeclarativePlacement",
    "DegradationPolicy",
    "DeviceDown",
    "EncryptingPlacement",
    "HandoverManager",
    "HandoverStats",
    "HealthMonitor",
    "HealthState",
    "HealthStats",
    "HedgePolicy",
    "HeftScheduler",
    "JobAbandoned",
    "JobPlan",
    "JobStats",
    "LatencyScorecard",
    "NaivePlacement",
    "ObservationStats",
    "PlacementPolicy",
    "PlacementRequest",
    "PlannedRegion",
    "Preempted",
    "PriorityClass",
    "RackDriver",
    "RackStats",
    "RandomScheduler",
    "RecoveryPolicy",
    "ResilienceStats",
    "ResilientRuntime",
    "RetryBudget",
    "RoundRobinScheduler",
    "RuntimeSystem",
    "Scheduler",
    "SchedulingError",
    "StaticKindPlacement",
    "TaskContext",
    "TaskPlan",
    "Tenant",
    "TenantQuota",
    "TenantRegistry",
    "baselines",
    "estimate_job_footprint",
    "plan_job",
    "prune_with_checkpoints",
]
