"""Structured tracing and metric recording.

The paper's Challenge 8 asks how to debug and profile dataflow
applications across abstraction layers; this module is our answer at the
simulation level: every subsystem emits typed :class:`TraceEvent` records
into a shared :class:`TraceLog`, and :class:`MetricRecorder` aggregates
time-weighted statistics (utilization, queue lengths, ...).
"""

from __future__ import annotations

import dataclasses
import typing


@dataclasses.dataclass(frozen=True)
class TraceEvent:
    """One structured trace record."""

    time: float
    category: str
    name: str
    fields: typing.Mapping[str, object] = dataclasses.field(default_factory=dict)

    def __str__(self) -> str:
        fields = " ".join(f"{k}={v}" for k, v in self.fields.items())
        return f"[{self.time:14.1f}ns] {self.category:<12} {self.name:<24} {fields}"


class TraceLog:
    """An append-only log of :class:`TraceEvent` records.

    Categories can be filtered at emission time to keep long simulations
    cheap: ``TraceLog(enabled={"scheduler", "placement"})``.
    """

    def __init__(self, enabled: typing.Optional[typing.Iterable[str]] = None):
        self.events: list = []
        self.enabled = set(enabled) if enabled is not None else None

    def emit(self, time: float, category: str, name: str, **fields) -> None:
        """Append one trace record (dropped if its category is filtered)."""
        if self.enabled is not None and category not in self.enabled:
            return
        self.events.append(TraceEvent(time, category, name, fields))

    def by_category(self, category: str) -> list:
        """All recorded events of one category."""
        return [e for e in self.events if e.category == category]

    def by_name(self, name: str) -> list:
        """All recorded events with one event name."""
        return [e for e in self.events if e.name == name]

    def clear(self) -> None:
        """Discard all recorded events."""
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)


class MetricRecorder:
    """Time-weighted statistics over a piecewise-constant signal.

    Record level changes with :meth:`record`; query the time-weighted
    mean/max afterwards.  Used for utilization and occupancy metrics.
    """

    def __init__(self, initial: float = 0.0, start_time: float = 0.0):
        self._level = float(initial)
        self._last_time = float(start_time)
        self._weighted_sum = 0.0
        self._elapsed = 0.0
        self._max = float(initial)
        self._min = float(initial)
        self.samples = 0

    @property
    def level(self) -> float:
        return self._level

    @property
    def maximum(self) -> float:
        return self._max

    @property
    def minimum(self) -> float:
        return self._min

    def record(self, time: float, level: float) -> None:
        """The signal changes to ``level`` at ``time``."""
        if time < self._last_time:
            raise ValueError(
                f"time went backwards: {time} < {self._last_time}"
            )
        dt = time - self._last_time
        self._weighted_sum += self._level * dt
        self._elapsed += dt
        self._last_time = time
        self._level = float(level)
        self._max = max(self._max, self._level)
        self._min = min(self._min, self._level)
        self.samples += 1

    def adjust(self, time: float, delta: float) -> None:
        """Shift the signal by ``delta`` at ``time`` (occupancy counting)."""
        self.record(time, self._level + delta)

    def time_weighted_mean(self, until: typing.Optional[float] = None) -> float:
        """Time-weighted mean of the signal up to ``until`` (or last record)."""
        weighted = self._weighted_sum
        elapsed = self._elapsed
        if until is not None:
            if until < self._last_time:
                raise ValueError(f"until={until} precedes last record")
            dt = until - self._last_time
            weighted += self._level * dt
            elapsed += dt
        if elapsed == 0:
            return self._level
        return weighted / elapsed
