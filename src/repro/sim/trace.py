"""Structured tracing and metric recording.

The paper's Challenge 8 asks how to debug and profile dataflow
applications across abstraction layers; this module is our answer at the
simulation level: every subsystem emits typed :class:`TraceEvent` records
into a shared :class:`TraceLog`, and :class:`MetricRecorder` aggregates
time-weighted statistics (utilization, queue lengths, ...).

The log is **bounded**: events land in per-category ring buffers so a
week-long soak run cannot eat the host's memory.  When a ring wraps, the
oldest events are discarded and counted in :attr:`TraceLog.dropped` —
observability degrades gracefully instead of OOMing the harness.  The
higher-level observability facade (:mod:`repro.obs`) builds spans,
metric registries, and exporters on top of this backend.
"""

from __future__ import annotations

import collections
import dataclasses
import typing
from itertools import count

#: Default per-category ring capacity.  Bounded but generous: short
#: benchmark runs retain everything, soak runs wrap and count drops.
DEFAULT_CAPACITY = 65536


@dataclasses.dataclass(frozen=True)
class TraceEvent:
    """One structured trace record.

    Instant events carry only ``time``.  Span-complete events (emitted
    by :class:`repro.obs.Span`) additionally carry ``begin`` (the span's
    start time) and ``span_id``/``parent_id`` linking the span tree
    (job → task → region/phase → device).
    """

    time: float
    category: str
    name: str
    fields: typing.Mapping[str, object] = dataclasses.field(default_factory=dict)
    #: Global emission sequence number (total order across categories).
    seq: int = 0
    #: Span start time; ``None`` for instant events.
    begin: typing.Optional[float] = None
    span_id: int = 0
    parent_id: int = 0

    @property
    def duration(self) -> float:
        """Span duration (0.0 for instant events)."""
        if self.begin is None:
            return 0.0
        return self.time - self.begin

    @property
    def is_span(self) -> bool:
        return self.begin is not None

    def __str__(self) -> str:
        fields = " ".join(f"{k}={v}" for k, v in self.fields.items())
        return f"[{self.time:14.1f}ns] {self.category:<12} {self.name:<24} {fields}"


class _Ring:
    """One category's bounded event buffer with a drop counter."""

    __slots__ = ("buffer", "capacity", "dropped")

    def __init__(self, capacity: int):
        self.buffer: typing.Deque[TraceEvent] = collections.deque(maxlen=capacity)
        self.capacity = capacity
        self.dropped = 0

    def append(self, event: TraceEvent) -> None:
        if len(self.buffer) == self.capacity:
            self.dropped += 1
        self.buffer.append(event)

    def recap(self, capacity: int) -> None:
        """Change the capacity, discarding the oldest overflow."""
        if capacity == self.capacity:
            return
        old = self.buffer
        overflow = max(0, len(old) - capacity)
        self.dropped += overflow
        self.buffer = collections.deque(old, maxlen=capacity)
        self.capacity = capacity


class TraceLog:
    """A bounded, queryable log of :class:`TraceEvent` records.

    Categories can be filtered at emission time to keep long simulations
    cheap: ``TraceLog(enabled={"scheduler", "placement"})``.  Each
    category is retained in its own ring buffer of ``capacity`` events;
    wrapped-over events are counted in :attr:`dropped` rather than kept,
    so memory stays bounded no matter how long the run.
    """

    def __init__(
        self,
        enabled: typing.Optional[typing.Iterable[str]] = None,
        capacity: int = DEFAULT_CAPACITY,
        category_capacity: typing.Optional[typing.Mapping[str, int]] = None,
    ):
        if capacity < 1:
            raise ValueError(f"ring capacity must be >= 1, got {capacity}")
        self.enabled = set(enabled) if enabled is not None else None
        self.capacity = capacity
        self._category_capacity = dict(category_capacity or {})
        self._rings: typing.Dict[str, _Ring] = {}
        self._seq = count()

    # -- emission ---------------------------------------------------------

    def wants(self, category: str) -> bool:
        """Would an event of this category be recorded right now?

        Hot call sites check this *before* building field dicts so the
        disabled path costs one set lookup and nothing else.
        """
        return self.enabled is None or category in self.enabled

    def emit(self, time: float, category: str, name: str, **fields) -> None:
        """Append one instant trace record (dropped if filtered)."""
        if self.enabled is not None and category not in self.enabled:
            return
        self._append(TraceEvent(time, category, name, fields,
                                seq=next(self._seq)))

    def emit_span(
        self,
        time: float,
        category: str,
        name: str,
        fields: typing.Mapping[str, object],
        begin: float,
        span_id: int,
        parent_id: int = 0,
    ) -> None:
        """Append one span-complete record (used by :mod:`repro.obs`)."""
        if self.enabled is not None and category not in self.enabled:
            return
        self._append(TraceEvent(time, category, name, fields,
                                seq=next(self._seq), begin=begin,
                                span_id=span_id, parent_id=parent_id))

    def _append(self, event: TraceEvent) -> None:
        ring = self._rings.get(event.category)
        if ring is None:
            ring = self._rings[event.category] = _Ring(
                self._category_capacity.get(event.category, self.capacity)
            )
        ring.append(event)

    # -- capacity management ----------------------------------------------

    def set_capacity(
        self, capacity: int, category: typing.Optional[str] = None
    ) -> None:
        """Re-cap one category's ring (or all rings and the default)."""
        if capacity < 1:
            raise ValueError(f"ring capacity must be >= 1, got {capacity}")
        if category is not None:
            self._category_capacity[category] = capacity
            if category in self._rings:
                self._rings[category].recap(capacity)
            return
        self.capacity = capacity
        for name, ring in self._rings.items():
            ring.recap(self._category_capacity.get(name, capacity))

    # -- accounting -------------------------------------------------------

    @property
    def dropped(self) -> int:
        """Total events discarded by ring wrap-around (all categories)."""
        return sum(ring.dropped for ring in self._rings.values())

    @property
    def dropped_by_category(self) -> typing.Dict[str, int]:
        """Per-category wrap-around drop counts (zero entries omitted)."""
        return {
            name: ring.dropped
            for name, ring in self._rings.items()
            if ring.dropped
        }

    def categories(self) -> typing.List[str]:
        """Categories that have recorded at least one event."""
        return [name for name, ring in self._rings.items() if ring.buffer]

    def retained(self, category: str) -> int:
        """Events currently held for one category."""
        ring = self._rings.get(category)
        return len(ring.buffer) if ring is not None else 0

    # -- queries ----------------------------------------------------------

    @property
    def events(self) -> typing.List[TraceEvent]:
        """All retained events in emission order."""
        merged = [e for ring in self._rings.values() for e in ring.buffer]
        merged.sort(key=lambda e: e.seq)
        return merged

    def by_category(self, category: str) -> typing.List[TraceEvent]:
        """All retained events of one category."""
        ring = self._rings.get(category)
        return list(ring.buffer) if ring is not None else []

    def by_name(self, name: str) -> typing.List[TraceEvent]:
        """All retained events with one event name."""
        return [e for e in self.events if e.name == name]

    def clear(self) -> None:
        """Discard all retained events (drop counters reset too)."""
        self._rings.clear()

    def __len__(self) -> int:
        return sum(len(ring.buffer) for ring in self._rings.values())

    def __iter__(self):
        return iter(self.events)


class MetricRecorder:
    """Time-weighted statistics over a piecewise-constant signal.

    Record level changes with :meth:`record`; query the time-weighted
    mean/max afterwards.  Used for utilization and occupancy metrics.
    """

    def __init__(self, initial: float = 0.0, start_time: float = 0.0):
        self._level = float(initial)
        self._last_time = float(start_time)
        self._weighted_sum = 0.0
        self._elapsed = 0.0
        self._max = float(initial)
        self._min = float(initial)
        self.samples = 0

    @property
    def level(self) -> float:
        return self._level

    @property
    def maximum(self) -> float:
        return self._max

    @property
    def minimum(self) -> float:
        return self._min

    def record(self, time: float, level: float) -> None:
        """The signal changes to ``level`` at ``time``."""
        if time < self._last_time:
            raise ValueError(
                f"time went backwards: {time} < {self._last_time}"
            )
        dt = time - self._last_time
        self._weighted_sum += self._level * dt
        self._elapsed += dt
        self._last_time = time
        self._level = float(level)
        self._max = max(self._max, self._level)
        self._min = min(self._min, self._level)
        self.samples += 1

    def adjust(self, time: float, delta: float) -> None:
        """Shift the signal by ``delta`` at ``time`` (occupancy counting)."""
        self.record(time, self._level + delta)

    def time_weighted_mean(self, until: typing.Optional[float] = None) -> float:
        """Time-weighted mean of the signal up to ``until`` (or last record)."""
        weighted = self._weighted_sum
        elapsed = self._elapsed
        if until is not None:
            if until < self._last_time:
                raise ValueError(f"until={until} precedes last record")
            dt = until - self._last_time
            weighted += self._level * dt
            elapsed += dt
        if elapsed == 0:
            return self._level
        return weighted / elapsed
