"""Fault injection for the simulated fabric.

The paper's Challenge 8 lists the failures that a disaggregated runtime
must survive: network errors, corrupted memory, planned and unplanned
node faults.  :class:`FaultInjector` schedules such events against a
running simulation, either from an explicit script (deterministic tests)
or from seeded stochastic processes (soak benchmarks).

Components register handlers per :class:`FaultKind`; the injector is
deliberately ignorant of what a "node" is so it can be reused at any
layer (links, memory devices, compute devices, whole nodes).
"""

from __future__ import annotations

import dataclasses
import enum
import typing

from repro.sim.engine import Engine
from repro.sim.rand import RandomStreams
from repro.sim.trace import TraceLog


class FaultKind(enum.Enum):
    """The failure classes the paper enumerates (§3, Challenge 8)."""

    NODE_CRASH = "node_crash"  # unplanned node loss
    NODE_RESTART = "node_restart"  # planned maintenance / kernel update
    NODE_REBOOT = "node_reboot"  # the power-cycle instant of a restart
    LINK_DOWN = "link_down"  # network error
    LINK_UP = "link_up"  # network repair
    LINK_DEGRADED = "link_degraded"  # fail-slow: link loses bandwidth, stays up
    LINK_RESTORED = "link_restored"  # degraded link back to nominal speed
    DEVICE_SLOW = "device_slow"  # fail-slow: device compute/access slowdown
    DEVICE_RESTORED = "device_restored"  # slow device back to nominal speed
    MEMORY_CORRUPTION = "memory_corruption"  # bit flips / corrupted region
    POWER_OUTAGE = "power_outage"  # volatile contents lost


#: Gray-failure pairs: the restore kind that undoes each degradation.
RESTORE_OF = {
    FaultKind.LINK_DEGRADED: FaultKind.LINK_RESTORED,
    FaultKind.DEVICE_SLOW: FaultKind.DEVICE_RESTORED,
}


@dataclasses.dataclass(frozen=True)
class FaultEvent:
    """A fault occurrence delivered to handlers."""

    time: float
    kind: FaultKind
    target: str
    detail: typing.Mapping[str, object] = dataclasses.field(default_factory=dict)


class FaultInjector:
    """Schedules faults and dispatches them to registered handlers."""

    def __init__(
        self,
        engine: Engine,
        streams: typing.Optional[RandomStreams] = None,
        trace: typing.Optional[TraceLog] = None,
    ):
        self.engine = engine
        self.streams = streams or RandomStreams(0)
        self.trace = trace
        self._handlers: dict = {}  # FaultKind -> list[callable]
        self.history: list = []

    def on(self, kind: FaultKind, handler: typing.Callable[[FaultEvent], None]) -> None:
        """Register ``handler`` to be called for every fault of ``kind``."""
        self._handlers.setdefault(kind, []).append(handler)

    def inject_at(
        self, time: float, kind: FaultKind, target: str, **detail
    ) -> None:
        """Schedule a single fault at absolute simulated ``time``."""
        if time < self.engine.now:
            raise ValueError(f"cannot inject fault in the past ({time} < {self.engine.now})")
        event = self.engine.event()
        event.add_callback(lambda _e: self._fire(kind, target, detail))
        event.succeed(None, delay=time - self.engine.now)

    def inject_now(self, kind: FaultKind, target: str, **detail) -> FaultEvent:
        """Deliver a fault synchronously at the current time."""
        return self._fire(kind, target, detail)

    def schedule_poisson(
        self,
        kind: FaultKind,
        targets: typing.Sequence[str],
        rate_per_ns: float,
        horizon: float,
        stream: str = "faults",
    ) -> int:
        """Schedule memoryless faults over ``targets`` until ``horizon``.

        Returns the number of scheduled faults.  Targets are drawn
        uniformly; inter-arrival times are exponential with the given
        rate.  Deterministic for a fixed root seed.
        """
        if rate_per_ns <= 0:
            raise ValueError(f"rate must be positive, got {rate_per_ns}")
        if not targets:
            raise ValueError("no targets to inject faults into")
        rng = self.streams.stream(stream)
        t = self.engine.now
        n = 0
        while True:
            t += float(rng.exponential(1.0 / rate_per_ns))
            if t >= horizon:
                break
            target = targets[int(rng.integers(0, len(targets)))]
            self.inject_at(t, kind, target)
            n += 1
        return n

    def schedule_degradations(
        self,
        kind: FaultKind,
        targets: typing.Sequence[str],
        rate_per_ns: float,
        horizon: float,
        duration_ns: float,
        factor: float = 0.1,
        stream: str = "degradations",
    ) -> int:
        """Schedule a fail-slow *storm*: degrade/restore pairs over ``targets``.

        Each episode fires ``kind`` (``LINK_DEGRADED`` or ``DEVICE_SLOW``)
        with ``detail["factor"]`` — the *speed multiplier* while degraded
        (0.1 = ten times slower) — and the matching ``*_RESTORED`` fault
        ``duration_ns`` later.  Episode start times are Poisson with the
        given rate; targets are drawn uniformly.  Deterministic for a
        fixed root seed.  Returns the number of scheduled episodes.
        """
        try:
            restore = RESTORE_OF[kind]
        except KeyError:
            raise ValueError(
                f"{kind} is not a degradation kind; pick one of "
                f"{sorted(k.value for k in RESTORE_OF)}"
            ) from None
        if rate_per_ns <= 0:
            raise ValueError(f"rate must be positive, got {rate_per_ns}")
        if duration_ns <= 0:
            raise ValueError(f"duration must be positive, got {duration_ns}")
        if not 0.0 < factor <= 1.0:
            raise ValueError(f"factor must be in (0, 1], got {factor}")
        if not targets:
            raise ValueError("no targets to degrade")
        rng = self.streams.stream(stream)
        t = self.engine.now
        n = 0
        while True:
            t += float(rng.exponential(1.0 / rate_per_ns))
            if t >= horizon:
                break
            target = targets[int(rng.integers(0, len(targets)))]
            self.inject_at(t, kind, target, factor=factor)
            self.inject_at(t + duration_ns, restore, target)
            n += 1
        return n

    def _fire(self, kind: FaultKind, target: str, detail: dict) -> FaultEvent:
        fault = FaultEvent(self.engine.now, kind, target, dict(detail))
        self.history.append(fault)
        if self.trace is not None:
            self.trace.emit(self.engine.now, "fault", kind.value, target=target, **detail)
        for handler in self._handlers.get(kind, []):
            handler(fault)
        return fault
