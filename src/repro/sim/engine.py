"""The discrete-event simulation engine.

The engine owns the simulated clock (nanoseconds, ``float``) and an event
queue ordered by ``(time, priority, sequence)``.  ``sequence`` makes the
ordering of simultaneous events deterministic: two runs with the same
seed produce byte-identical traces.

Two interchangeable scheduler backends implement the queue (DESIGN.md
§5.2).  The default is a **calendar queue** (R. Brown, CACM '88): an
array of time buckets whose width adapts to the observed event density,
giving O(1) amortized enqueue/dequeue in the DES steady state where a
binary heap pays O(log n).  ``Engine(scheduler="heap")`` keeps the
original single ``heapq``; both backends produce the *identical* event
ordering (the conformance suite in ``tests/sim/test_engine_scheduler.py``
drives them through the same scenarios and asserts equal traces), so the
choice is purely a performance knob.
"""

from __future__ import annotations

import heapq
import math
import typing
from itertools import count

from repro.sim.events import AllOf, AnyOf, Event, Process, Timeout

#: Priority for urgent events (interrupts) — processed before normal ones.
URGENT = -1
#: Default priority.
NORMAL = 0

_INF = float("inf")


class EmptySchedule(Exception):
    """Raised by :meth:`Engine.step` when no events remain."""


class _HeapScheduler:
    """The reference backend: one binary heap ordered by the entry tuple."""

    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap: typing.List[tuple] = []

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, entry: tuple) -> None:
        heapq.heappush(self._heap, entry)

    def peek_entry(self) -> typing.Optional[tuple]:
        heap = self._heap
        return heap[0] if heap else None

    def pop(self) -> tuple:
        return heapq.heappop(self._heap)


class _CalendarScheduler:
    """Calendar queue: buckets of width ``_width`` ns, rotated cyclically.

    An entry ``(t, prio, seq, event)`` lives in bucket
    ``int(t / width) % nbuckets``; the *virtual* bucket index
    ``int(t / width)`` also encodes the rotation ("year"), so one bucket
    holds at most one window's entries per year and eligibility is the
    exact integer test ``int(t / width) == current_window`` — the same
    expression placement uses, so no float-boundary disagreement can
    reorder events.  Each bucket is itself a small binary heap, so a
    same-timestamp burst (e.g. thousands of zero-delay events) costs
    O(log k) per operation instead of an O(k) rescan per pop, and the
    current window's minimum is simply the bucket root (deterministic
    total order, same as the global heap); empty
    windows advance the cursor, and a full fruitless rotation rebuilds
    the calendar with a width re-derived from the live entries, landing
    the cursor on the global minimum (sparse regions and stale-width
    regimes both cost one O(n) rebuild, not one scan per empty window
    forever).  The bucket count doubles/halves
    when occupancy leaves [1/4, 4] entries per bucket and the width is
    re-derived from the live entries' span, keeping ~O(1) scans under
    the steady-state density the simulator actually produces.
    """

    __slots__ = ("_buckets", "_nb", "_width", "_inv", "_vb", "_count",
                 "_inf_entries", "_min", "_sw", "_sp")

    MIN_BUCKETS = 16
    #: Re-derive the width when the trailing SCAN_PERIOD peeks averaged
    #: more than SCAN_LIMIT windows each — the signal that the width no
    #: longer matches the live event density (occupancy thresholds
    #: cannot catch this: the entry count can sit dead stable while
    #: every scan walks dozens of stale-width windows).
    SCAN_PERIOD = 512
    SCAN_LIMIT = 6

    def __init__(self) -> None:
        self._nb = self.MIN_BUCKETS
        self._buckets: typing.List[list] = [[] for _ in range(self._nb)]
        self._width = 1.0
        self._inv = 1.0
        self._vb = 0          # current virtual window index
        self._count = 0       # finite-time entries across all buckets
        self._inf_entries: typing.List[tuple] = []  # t == +inf parking
        #: Cached (entry, holding list) of the scheduled minimum, or None.
        self._min: typing.Optional[tuple] = None
        self._sw = 0          # windows walked over the trailing peeks
        self._sp = 0          # peeks in the current sampling period

    def __len__(self) -> int:
        return self._count + len(self._inf_entries)

    def push(self, entry: tuple) -> None:
        t = entry[0]
        if t == _INF:
            heapq.heappush(self._inf_entries, entry)
            m = self._min
            if m is not None and entry < m[0]:
                # Only possible when the cached min is itself infinite
                # (URGENT beats NORMAL at t == inf); without this the
                # cache would return the old root while pop() removes
                # the new one — one entry processed twice, one lost.
                self._min = (entry, self._inf_entries)
            return
        if self._count > 4 * self._nb:
            self._resize(2 * self._nb)
        self._count += 1
        w = int(t * self._inv)
        if w < self._vb:
            # peek() may have parked _vb on a far-future window (e.g.
            # run(until=...) peeked past the horizon and broke without
            # popping); a later push at an earlier — still legal,
            # t >= now — time must drag the cursor back or every scan
            # would start beyond this entry and skip it.
            self._vb = w
        bucket = self._buckets[w % self._nb]
        heapq.heappush(bucket, entry)
        m = self._min
        if m is not None and entry < m[0]:
            # entry beats the global min, so it is also its bucket's
            # new root — (entry, bucket) stays a valid (root, holder).
            self._min = (entry, bucket)

    def _resize(self, nb: int) -> None:
        entries = [e for b in self._buckets for e in b]
        if entries:
            tmin = min(e[0] for e in entries)
            tmax = max(e[0] for e in entries)
            span = tmax - tmin
            if span > 0.0:
                # Aim for ~2 entries per window; clamp the width so
                # int(t / width) stays far from float overflow.
                width = max(2.0 * span / len(entries),
                            math.ulp(tmax) * 4.0)
                self._width = width
                self._inv = 1.0 / width
        self._nb = nb
        self._buckets = [[] for _ in range(nb)]
        inv = self._inv
        for e in entries:
            self._buckets[int(e[0] * inv) % nb].append(e)
        for b in self._buckets:
            if len(b) > 1:
                heapq.heapify(b)
        if entries:
            self._vb = int(tmin * inv)
        self._min = None

    def peek_entry(self) -> typing.Optional[tuple]:
        m = self._min
        if m is not None:
            return m[0]
        if self._count == 0:
            if self._inf_entries:
                best = self._inf_entries[0]
                self._min = (best, self._inf_entries)
                return best
            return None
        # Every entry's window is >= _vb (peeks commit _vb only after a
        # scan proves no earlier window holds an entry; pushes drag _vb
        # back when they land below it; resize parks _vb on the
        # minimum).  A bucket's heap root is its smallest entry, so a
        # current-window entry — smaller than any later-year entry in
        # the same bucket — is the root whenever one exists: checking
        # the root alone is exact, O(1) per bucket.
        for attempt in (0, 1):
            buckets = self._buckets
            nb = self._nb
            inv = self._inv
            vb = self._vb
            found = None
            walked = nb
            for w in range(nb):
                bucket = buckets[vb % nb]
                if bucket:
                    best = bucket[0]
                    if int(best[0] * inv) == vb:
                        found = (best, bucket)
                        walked = w + 1
                        break
                vb += 1
            if found is None:
                # A full rotation found nothing current: the next event
                # lies in a sparse region far ahead.  Rebuild (below);
                # the retry cannot miss — the rebuild parks the cursor
                # on the global minimum's window.
                if attempt:
                    raise AssertionError("calendar queue lost an entry")
            else:
                self._sw += walked
                self._sp += 1
                if self._sp >= self.SCAN_PERIOD:
                    drifted = self._sw > self.SCAN_LIMIT * self._sp
                    self._sw = 0
                    self._sp = 0
                    if drifted and attempt == 0:
                        # Scans walk many windows per event: the width
                        # no longer matches the live density (it is only
                        # derived at resize time — e.g. while every
                        # entry sat at t=0 during setup).  Rebuild with
                        # a re-derived width and find the min again.
                        self._resize(self._nb)
                        continue
                self._vb = vb
                self._min = found
                return found[0]
            self._resize(self._nb)
        raise AssertionError("unreachable")

    def pop(self) -> tuple:
        m = self._min
        if m is None:
            self.peek_entry()
            m = self._min
        entry, holder = m
        heapq.heappop(holder)
        self._min = None
        if holder is not self._inf_entries:
            self._count -= 1
            if self._count < self._nb // 4 and self._nb > self.MIN_BUCKETS:
                self._resize(self._nb // 2)
        return entry


_SCHEDULERS = {"calendar": _CalendarScheduler, "heap": _HeapScheduler}


class Engine:
    """Discrete-event simulation engine with a nanosecond clock."""

    def __init__(self, start: float = 0.0, scheduler: str = "calendar"):
        self._now = float(start)
        try:
            self._sched = _SCHEDULERS[scheduler]()
        except KeyError:
            raise ValueError(
                f"unknown scheduler {scheduler!r}; "
                f"choose from {sorted(_SCHEDULERS)}"
            ) from None
        self.scheduler = scheduler
        self._seq = count()
        self._active_process: typing.Optional[Process] = None
        #: Lifetime count of processed events (observability; plain int
        #: so the hot loop pays one increment, nothing more).
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulated time in nanoseconds."""
        return self._now

    @property
    def queue_depth(self) -> int:
        """Events currently scheduled and not yet processed."""
        return len(self._sched)

    @property
    def active_process(self) -> typing.Optional[Process]:
        return self._active_process

    # -- scheduling ----------------------------------------------------

    def schedule(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        """Queue ``event`` to be processed ``delay`` ns from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        self._sched.push((self._now + delay, priority, next(self._seq), event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        entry = self._sched.peek_entry()
        return entry[0] if entry is not None else _INF

    def step(self) -> None:
        """Process the next event, advancing the clock."""
        if not len(self._sched):
            raise EmptySchedule()
        self._now, _, _, event = self._sched.pop()
        self.events_processed += 1
        event._process()

    def run(self, until: typing.Optional[typing.Union[float, Event]] = None):
        """Run the simulation.

        ``until`` may be ``None`` (run until the queue drains), a time in
        nanoseconds, or an :class:`Event` (run until it is processed and
        return its value, re-raising its exception on failure).
        """
        stop_event: typing.Optional[Event] = None
        stop_time = float("inf")
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise ValueError(f"until={stop_time} lies in the past (now={self._now})")

        while len(self._sched):
            if stop_event is not None and stop_event.processed:
                break
            if self.peek() > stop_time:
                self._now = stop_time
                break
            self.step()

        if stop_event is not None:
            if not stop_event.triggered:
                raise RuntimeError(
                    "run(until=event) finished but the event never triggered"
                )
            if not stop_event.ok:
                raise stop_event.value  # type: ignore[misc]
            return stop_event.value
        if until is not None and self._now < stop_time and not len(self._sched):
            # Queue drained before the requested horizon; land exactly on it.
            self._now = stop_time
        return None

    # -- factories -----------------------------------------------------

    def event(self) -> Event:
        """Create a fresh untriggered event bound to this engine."""
        return Event(self)

    def timeout(self, delay: float, value: object = None) -> Timeout:
        """Create an event that fires ``delay`` ns from now."""
        return Timeout(self, delay, value)

    def process(self, generator, name: str = "") -> Process:
        """Start ``generator`` as a simulation process."""
        return Process(self, generator, name=name)

    def all_of(self, events) -> AllOf:
        """Composite event: fires when all child events have fired."""
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        """Composite event: fires when the first child event fires."""
        return AnyOf(self, events)

    def __repr__(self) -> str:
        return (
            f"<Engine now={self._now} queued={len(self._sched)} "
            f"scheduler={self.scheduler}>"
        )
