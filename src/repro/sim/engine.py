"""The discrete-event simulation engine.

The engine owns the simulated clock (nanoseconds, ``float``) and an event
queue ordered by ``(time, priority, sequence)``.  ``sequence`` makes the
ordering of simultaneous events deterministic: two runs with the same
seed produce byte-identical traces.
"""

from __future__ import annotations

import heapq
import typing
from itertools import count

from repro.sim.events import AllOf, AnyOf, Event, Process, Timeout

#: Priority for urgent events (interrupts) — processed before normal ones.
URGENT = -1
#: Default priority.
NORMAL = 0


class EmptySchedule(Exception):
    """Raised by :meth:`Engine.step` when no events remain."""


class Engine:
    """Discrete-event simulation engine with a nanosecond clock."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._queue: list = []
        self._seq = count()
        self._active_process: typing.Optional[Process] = None
        #: Lifetime count of processed events (observability; plain int
        #: so the hot loop pays one increment, nothing more).
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulated time in nanoseconds."""
        return self._now

    @property
    def queue_depth(self) -> int:
        """Events currently scheduled and not yet processed."""
        return len(self._queue)

    @property
    def active_process(self) -> typing.Optional[Process]:
        return self._active_process

    # -- scheduling ----------------------------------------------------

    def schedule(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        """Queue ``event`` to be processed ``delay`` ns from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(self._queue, (self._now + delay, priority, next(self._seq), event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the next event, advancing the clock."""
        if not self._queue:
            raise EmptySchedule()
        self._now, _, _, event = heapq.heappop(self._queue)
        self.events_processed += 1
        event._process()

    def run(self, until: typing.Optional[typing.Union[float, Event]] = None):
        """Run the simulation.

        ``until`` may be ``None`` (run until the queue drains), a time in
        nanoseconds, or an :class:`Event` (run until it is processed and
        return its value, re-raising its exception on failure).
        """
        stop_event: typing.Optional[Event] = None
        stop_time = float("inf")
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise ValueError(f"until={stop_time} lies in the past (now={self._now})")

        while self._queue:
            if stop_event is not None and stop_event.processed:
                break
            if self.peek() > stop_time:
                self._now = stop_time
                break
            self.step()

        if stop_event is not None:
            if not stop_event.triggered:
                raise RuntimeError(
                    "run(until=event) finished but the event never triggered"
                )
            if not stop_event.ok:
                raise stop_event.value  # type: ignore[misc]
            return stop_event.value
        if until is not None and self._now < stop_time and not self._queue:
            # Queue drained before the requested horizon; land exactly on it.
            self._now = stop_time
        return None

    # -- factories -----------------------------------------------------

    def event(self) -> Event:
        """Create a fresh untriggered event bound to this engine."""
        return Event(self)

    def timeout(self, delay: float, value: object = None) -> Timeout:
        """Create an event that fires ``delay`` ns from now."""
        return Timeout(self, delay, value)

    def process(self, generator, name: str = "") -> Process:
        """Start ``generator`` as a simulation process."""
        return Process(self, generator, name=name)

    def all_of(self, events) -> AllOf:
        """Composite event: fires when all child events have fired."""
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        """Composite event: fires when the first child event fires."""
        return AnyOf(self, events)

    def __repr__(self) -> str:
        return f"<Engine now={self._now} queued={len(self._queue)}>"
