"""Event primitives for the discrete-event kernel.

An :class:`Event` is a one-shot condition that processes can wait on.  It
moves through three states: *pending* (created, not yet triggered),
*triggered* (scheduled on the engine's queue with a value), and
*processed* (its callbacks ran).  Events may succeed with a value or fail
with an exception; failures propagate into the waiting generator via
``throw`` so that simulation code can use ordinary ``try/except``.
"""

from __future__ import annotations

import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Engine

PENDING = object()


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it."""

    def __init__(self, cause: object = None):
        super().__init__(cause)
        self.cause = cause


class ProcessKilled(Exception):
    """Raised inside a process when the engine forcefully kills it."""


class Event:
    """A one-shot condition with callbacks.

    Callbacks are callables taking the event itself; they run when the
    engine processes the triggered event.
    """

    def __init__(self, engine: "Engine"):
        self.engine = engine
        self.callbacks: typing.Optional[list] = []
        self._value: object = PENDING
        self._ok: typing.Optional[bool] = None

    @property
    def triggered(self) -> bool:
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if self._ok is None:
            raise RuntimeError("event has not been triggered yet")
        return self._ok

    @property
    def value(self):
        if self._value is PENDING:
            raise RuntimeError("event has not been triggered yet")
        return self._value

    def succeed(self, value: object = None, delay: float = 0.0) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.engine.schedule(self, delay=delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event as failed with ``exception``."""
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        self.engine.schedule(self, delay=delay)
        return self

    def add_callback(self, callback) -> None:
        """Run ``callback(event)`` when this event is processed."""
        if self.callbacks is None:
            raise RuntimeError(f"{self!r} has already been processed")
        self.callbacks.append(callback)

    def remove_callback(self, callback) -> None:
        """Deregister a pending callback (no-op if absent)."""
        if self.callbacks is not None and callback in self.callbacks:
            self.callbacks.remove(callback)

    def _process(self) -> None:
        """Run all callbacks.  Called by the engine exactly once."""
        callbacks, self.callbacks = self.callbacks, None
        for callback in callbacks:
            callback(self)
        if self._ok is False and not getattr(self, "_defused", False):
            # An unhandled failure would otherwise vanish silently.
            raise self._value  # type: ignore[misc]

    def defuse(self) -> None:
        """Mark a failed event as handled so the engine will not re-raise."""
        self._defused = True

    def __repr__(self) -> str:
        state = "pending"
        if self.processed:
            state = "processed"
        elif self.triggered:
            state = "triggered"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers after a fixed simulated delay."""

    def __init__(self, engine: "Engine", delay: float, value: object = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(engine)
        self.delay = delay
        self._ok = True
        self._value = value
        engine.schedule(self, delay=delay)


class Process(Event):
    """A running simulation process wrapping a generator.

    The process itself is an event that triggers when the generator
    returns (successfully, with its return value) or raises (failed).
    Other processes can therefore ``yield proc`` to join it.
    """

    def __init__(self, engine: "Engine", generator, name: str = ""):
        super().__init__(engine)
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self._target: typing.Optional[Event] = None
        # Kick off the process at the current simulation time.
        initial = Event(engine)
        initial._ok = True
        initial._value = None
        initial.add_callback(self._resume)
        engine.schedule(initial)

    @property
    def is_alive(self) -> bool:
        return self._value is PENDING

    @property
    def target(self) -> typing.Optional[Event]:
        """The event this process is currently waiting on, if any."""
        return self._target

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            return
        trigger = Event(self.engine)
        trigger._ok = False
        trigger._value = Interrupt(cause)
        trigger._defused = True
        trigger.add_callback(self._resume)
        self.engine.schedule(trigger, priority=-1)

    def kill(self) -> None:
        """Terminate the process, raising :class:`ProcessKilled` inside it."""
        if not self.is_alive:
            return
        trigger = Event(self.engine)
        trigger._ok = False
        trigger._value = ProcessKilled()
        trigger._defused = True
        trigger.add_callback(self._resume)
        self.engine.schedule(trigger, priority=-1)

    def _resume(self, trigger: Event) -> None:
        if not self.is_alive:
            return
        # Detach from the event we were waiting on (interrupt path).
        if self._target is not None and self._target is not trigger:
            self._target.remove_callback(self._resume)
        self._target = None

        self.engine._active_process = self
        try:
            while True:
                if trigger._ok:
                    try:
                        yielded = self._generator.send(trigger._value)
                    except StopIteration as stop:
                        self._finish(True, stop.value)
                        return
                else:
                    trigger.defuse()
                    try:
                        yielded = self._generator.throw(trigger._value)
                    except StopIteration as stop:
                        self._finish(True, stop.value)
                        return
                    except BaseException as exc:
                        if isinstance(trigger._value, ProcessKilled) and isinstance(
                            exc, ProcessKilled
                        ):
                            self._finish(True, None)
                            return
                        self._finish(False, exc)
                        return

                if not isinstance(yielded, Event):
                    error = RuntimeError(
                        f"process {self.name!r} yielded non-event {yielded!r}"
                    )
                    self._generator.throw(error)
                    raise error
                if yielded.callbacks is None:
                    # Already fully processed: resume immediately in-loop.
                    trigger = yielded
                    continue
                yielded.add_callback(self._resume)
                self._target = yielded
                return
        except StopIteration as stop:  # raised by generator cleanup paths
            self._finish(True, stop.value)
        except BaseException as exc:
            if isinstance(exc, RuntimeError):
                raise
            self._finish(False, exc)
        finally:
            self.engine._active_process = None

    def _finish(self, ok: bool, value) -> None:
        self.engine._active_process = None
        if ok:
            self.succeed(value)
        else:
            self.fail(value)

    def __repr__(self) -> str:
        return f"<Process {self.name!r} {'alive' if self.is_alive else 'done'}>"


class _Condition(Event):
    """Base for AllOf/AnyOf composite events."""

    def __init__(self, engine: "Engine", events: typing.Sequence[Event]):
        super().__init__(engine)
        self.events = list(events)
        for event in self.events:
            if event.engine is not engine:
                raise ValueError("all events must belong to the same engine")
        self._done = 0
        if not self.events:
            self.succeed(self._collect())
            return
        for event in self.events:
            if event.processed:
                self._check(event)
            else:
                event.add_callback(self._check)

    def _collect(self) -> dict:
        return {
            i: event._value
            for i, event in enumerate(self.events)
            if event.processed and event._ok
        }

    def _check(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Condition):
    """Triggers when all child events have triggered (fails on first failure)."""

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event.defuse()
            self.fail(event._value)
            return
        self._done += 1
        if self._done == len(self.events):
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Triggers when the first child event triggers."""

    def _check(self, event: Event) -> None:
        if self.triggered:
            # A loser of the race failing after the condition already
            # triggered was abandoned by the waiter; defuse it so the
            # engine does not re-raise on behalf of nobody.
            if not event._ok:
                event.defuse()
            return
        if not event._ok:
            event.defuse()
            self.fail(event._value)
            return
        self.succeed(self._collect())
